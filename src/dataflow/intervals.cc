#include "src/dataflow/intervals.h"

#include <algorithm>
#include <deque>

#include "src/lang/ir_walk.h"
#include "src/support/fault_injection.h"

namespace dataflow {
namespace {

bool IsInf(int64_t v) { return v == Interval::kMin || v == Interval::kMax; }

// --- Direction-aware saturating bound arithmetic ------------------------------
//
// The sentinel encoding is positional: kMin means -infinity only in a *lower*
// bound and kMax means +infinity only in an *upper* bound; on the opposite
// side each is the genuine extreme constant (Const(INT64_MIN) is the interval
// [kMin, kMin] whose hi really is INT64_MIN). The original helpers ignored the
// position and short-circuited both sentinels symmetrically, which made e.g.
// AddI(Const(INT64_MIN), Const(5)) collapse to [kMin, kMin] — an interval that
// *excludes* the true sum INT64_MIN + 5. The fixed helpers below treat the
// sentinel of their own side as infinite and everything else as an exact
// value; a genuine overflow saturates toward the overflow's own sign, which
// keeps containment on both sides (a lower bound that saturates to kMax still
// reads "at least kMax"; an upper bound that saturates to kMin reads "at most
// kMin").

// Add feeding a lower bound: only kMin is infinite.
int64_t SatAddLo(int64_t a, int64_t b) {
  if (a == Interval::kMin || b == Interval::kMin) {
    return Interval::kMin;
  }
  int64_t out;
  if (__builtin_add_overflow(a, b, &out)) {
    return a > 0 ? Interval::kMax : Interval::kMin;
  }
  return out;
}

// Add feeding an upper bound: only kMax is infinite.
int64_t SatAddHi(int64_t a, int64_t b) {
  if (a == Interval::kMax || b == Interval::kMax) {
    return Interval::kMax;
  }
  int64_t out;
  if (__builtin_add_overflow(a, b, &out)) {
    return a > 0 ? Interval::kMax : Interval::kMin;
  }
  return out;
}

// Negated upper bound feeding a lower bound: -(+inf) = -inf, and the genuine
// constant INT64_MIN negates to 2^63 which saturates to "at least kMax".
int64_t NegLo(int64_t hi_bound) {
  if (hi_bound == Interval::kMax) {
    return Interval::kMin;
  }
  if (hi_bound == Interval::kMin) {
    return Interval::kMax;
  }
  return -hi_bound;
}

// Negated lower bound feeding an upper bound: -(-inf) = +inf; the genuine
// constant INT64_MAX negates exactly (INT64_MIN + 1 fits).
int64_t NegHi(int64_t lo_bound) {
  if (lo_bound == Interval::kMin) {
    return Interval::kMax;
  }
  return -lo_bound;
}

int64_t NarrowLo(__int128 v) {
  if (v < static_cast<__int128>(Interval::kMin)) {
    return Interval::kMin;
  }
  if (v > static_cast<__int128>(Interval::kMax)) {
    return Interval::kMax;
  }
  return static_cast<int64_t>(v);
}

int64_t NarrowHi(__int128 v) {
  if (v > static_cast<__int128>(Interval::kMax)) {
    return Interval::kMax;
  }
  if (v < static_cast<__int128>(Interval::kMin)) {
    return Interval::kMin;
  }
  return static_cast<int64_t>(v);
}

}  // namespace

Interval Join(const Interval& a, const Interval& b) {
  if (a.bottom) {
    return b;
  }
  if (b.bottom) {
    return a;
  }
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi), false};
}

Interval Meet(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) {
    return Interval::Bottom();
  }
  return Interval::Range(std::max(a.lo, b.lo), std::min(a.hi, b.hi));
}

Interval Widen(const Interval& older, const Interval& newer) {
  if (older.bottom) {
    return newer;
  }
  if (newer.bottom) {
    return older;
  }
  Interval out = older;
  if (newer.lo < older.lo) {
    out.lo = Interval::kMin;
  }
  if (newer.hi > older.hi) {
    out.hi = Interval::kMax;
  }
  return out;
}

Interval AddI(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) {
    return Interval::Bottom();
  }
  return {SatAddLo(a.lo, b.lo), SatAddHi(a.hi, b.hi), false};
}

Interval NegI(const Interval& a) {
  if (a.bottom) {
    return a;
  }
  return {NegLo(a.hi), NegHi(a.lo), false};
}

Interval SubI(const Interval& a, const Interval& b) {
  // Direct subtraction rather than AddI(a, NegI(b)): negation maps the
  // genuine constant kMin+1 to kMax, which the hi position then reads as
  // +inf, losing a finite bound the difference actually has. Computing the
  // bound differences in __int128 keeps exactly what the constant-interval
  // algebra keeps, preserving the cross-domain bijection.
  if (a.bottom || b.bottom) {
    return Interval::Bottom();
  }
  const int64_t lo =
      (a.lo == Interval::kMin || b.hi == Interval::kMax)
          ? Interval::kMin
          : NarrowLo(static_cast<__int128>(a.lo) - b.hi);
  const int64_t hi =
      (a.hi == Interval::kMax || b.lo == Interval::kMin)
          ? Interval::kMax
          : NarrowHi(static_cast<__int128>(a.hi) - b.lo);
  return {lo, hi, false};
}

Interval MulI(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) {
    return Interval::Bottom();
  }
  // Corner products in __int128 with pseudo-infinities at ±2^63: one past
  // the genuine extremes, so a sentinel (infinite) bound and the genuine
  // extreme constant stay distinguishable and products of true infinities
  // always land outside int64 and saturate. |corner| <= 2^126 fits __int128.
  constexpr __int128 kInf128 = static_cast<__int128>(1) << 63;
  const __int128 xs[2] = {a.lo == Interval::kMin ? -kInf128 : static_cast<__int128>(a.lo),
                          a.hi == Interval::kMax ? kInf128 : static_cast<__int128>(a.hi)};
  const __int128 ys[2] = {b.lo == Interval::kMin ? -kInf128 : static_cast<__int128>(b.lo),
                          b.hi == Interval::kMax ? kInf128 : static_cast<__int128>(b.hi)};
  __int128 lo = xs[0] * ys[0];
  __int128 hi = lo;
  for (const __int128 x : xs) {
    for (const __int128 y : ys) {
      const __int128 p = x * y;
      lo = std::min(lo, p);
      hi = std::max(hi, p);
    }
  }
  return {NarrowLo(lo), NarrowHi(hi), false};
}

Interval DivI(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) {
    return Interval::Bottom();
  }
  if (IsInf(a.lo) || IsInf(a.hi) || IsInf(b.lo) || IsInf(b.hi)) {
    return Interval::Top();
  }
  // Truncated division is monotone in both operands only while the divisor
  // keeps one sign, so evaluate the positive and negative divisor parts
  // separately; a part clipped to ±1 also covers the old "straddling"
  // extremes (x/1 = x, x/-1 = -x). Zero is a fault, not a value (the caller
  // refines the divisor first). All bounds are finite here (the IsInf
  // check above) so the int64 divisions cannot overflow.
  std::vector<int64_t> corners;
  if (b.hi >= 1) {
    for (const int64_t x : {a.lo, a.hi}) {
      for (const int64_t y : {std::max<int64_t>(b.lo, 1), b.hi}) {
        corners.push_back(x / y);
      }
    }
  }
  if (b.lo <= -1) {
    for (const int64_t x : {a.lo, a.hi}) {
      for (const int64_t y : {b.lo, std::min<int64_t>(b.hi, -1)}) {
        corners.push_back(x / y);
      }
    }
  }
  if (corners.empty()) {
    return Interval::Bottom();  // Divisor interval is exactly {0}.
  }
  return {*std::min_element(corners.begin(), corners.end()),
          *std::max_element(corners.begin(), corners.end()), false};
}

Interval RemI(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) {
    return Interval::Bottom();
  }
  if (IsInf(b.lo) || IsInf(b.hi)) {
    return Interval::Top();
  }
  // |a % b| < max(|b.lo|, |b.hi|); sign follows the dividend. Both bounds
  // are finite after the IsInf check, so std::abs is safe.
  const int64_t mag = std::max(std::abs(b.lo), std::abs(b.hi));
  if (mag == 0) {
    return Interval::Bottom();
  }
  Interval out = Interval::Range(-(mag - 1), mag - 1);
  if (a.lo >= 0) {
    out = Meet(out, Interval::Range(0, Interval::kMax));
  }
  if (a.hi <= 0) {
    out = Meet(out, Interval::Range(Interval::kMin, 0));
  }
  return out;
}

Interval FromConstantInterval(const support::ConstantInterval& ci) {
  if (ci.is_empty()) {
    return Interval::Bottom();
  }
  return Interval::Range(ci.min_defined ? ci.min : Interval::kMin,
                         ci.max_defined ? ci.max : Interval::kMax);
}

support::ConstantInterval ToConstantInterval(const Interval& iv) {
  if (iv.bottom) {
    return support::ConstantInterval::Empty();
  }
  support::ConstantInterval ci;
  if (iv.lo != Interval::kMin) {
    ci.min = iv.lo;
    ci.min_defined = true;
  }
  if (iv.hi != Interval::kMax) {
    ci.max = iv.hi;
    ci.max_defined = true;
  }
  return ci;
}

namespace {

// --- Value domains ------------------------------------------------------------
//
// The analyzer below is one template shared by both CLAIR_DATAFLOW modes;
// only the value domain differs. Reference mode keeps the original sentinel
// Interval; engine mode stores support::ConstantInterval values and runs the
// new algebra. Engine values are kept *normalised* (a defined bound sitting
// exactly on an int64 extreme is converted to an undefined side), which makes
// the sentinel<->flags mapping a bijection under which every operation pair
// below is equal — so both modes produce bit-identical reports by
// construction. Each domain exposes sentinel-style Lo/Hi accessors so the
// shared refinement and bounds-check logic reads identically in both modes.

struct RefDomain {
  using Value = Interval;

  static Value Top() { return Interval::Top(); }
  static Value Bottom() { return Interval::Bottom(); }
  static Value Const(int64_t v) { return Interval::Const(v); }
  static Value Range(int64_t lo, int64_t hi) { return Interval::Range(lo, hi); }
  static Value FromInterval(const Interval& iv) { return iv; }
  static Interval ToInterval(const Value& v) { return v; }

  static bool IsBottom(const Value& v) { return v.bottom; }
  static bool Contains(const Value& v, int64_t x) { return v.Contains(x); }
  static int64_t Lo(const Value& v) { return v.lo; }
  static int64_t Hi(const Value& v) { return v.hi; }

  static Value Join(const Value& a, const Value& b) { return dataflow::Join(a, b); }
  static Value Meet(const Value& a, const Value& b) { return dataflow::Meet(a, b); }
  static Value Widen(const Value& o, const Value& n) { return dataflow::Widen(o, n); }
  static Value Add(const Value& a, const Value& b) { return AddI(a, b); }
  static Value Sub(const Value& a, const Value& b) { return SubI(a, b); }
  static Value Mul(const Value& a, const Value& b) { return MulI(a, b); }
  static Value Neg(const Value& a) { return NegI(a); }
  static Value Div(const Value& a, const Value& b) { return DivI(a, b); }
  static Value Rem(const Value& a, const Value& b) { return RemI(a, b); }
};

struct CiDomain {
  using Value = support::ConstantInterval;

  // Keeps engine values inside the bijective image of the sentinel domain:
  // a defined bound on an int64 extreme carries the same information as an
  // unbounded side there, so fold it.
  static Value Normal(Value v) {
    if (v.is_empty()) {
      return support::ConstantInterval::Empty();
    }
    if (v.min_defined && v.min == INT64_MIN) {
      v.min_defined = false;
      v.min = 0;
    }
    if (v.max_defined && v.max == INT64_MAX) {
      v.max_defined = false;
      v.max = 0;
    }
    return v;
  }

  static Value Top() { return support::ConstantInterval::Everything(); }
  static Value Bottom() { return support::ConstantInterval::Empty(); }
  static Value Const(int64_t v) {
    return Normal(support::ConstantInterval::SinglePoint(v));
  }
  // Sentinel-style constructor: kMin/kMax arguments mean unbounded sides.
  static Value Range(int64_t lo, int64_t hi) {
    if (lo > hi) {
      return Bottom();
    }
    return Normal(support::ConstantInterval::Bounded(lo, hi));
  }
  static Value FromInterval(const Interval& iv) { return ToConstantInterval(iv); }
  static Interval ToInterval(const Value& v) { return FromConstantInterval(v); }

  static bool IsBottom(const Value& v) { return v.is_empty(); }
  static bool Contains(const Value& v, int64_t x) {
    return !v.is_empty() && v.Contains(x);
  }
  static int64_t Lo(const Value& v) {
    return v.min_defined ? v.min : Interval::kMin;
  }
  static int64_t Hi(const Value& v) {
    return v.max_defined ? v.max : Interval::kMax;
  }

  static Value Join(const Value& a, const Value& b) {
    return Normal(support::ConstantInterval::Union(a, b));
  }
  static Value Meet(const Value& a, const Value& b) {
    return Normal(support::ConstantInterval::Intersection(a, b));
  }
  static Value Widen(const Value& older, const Value& newer) {
    if (older.is_empty()) {
      return newer;
    }
    if (newer.is_empty()) {
      return older;
    }
    Value out = older;
    if (older.min_defined && (!newer.min_defined || newer.min < older.min)) {
      out.min_defined = false;
      out.min = 0;
    }
    if (older.max_defined && (!newer.max_defined || newer.max > older.max)) {
      out.max_defined = false;
      out.max = 0;
    }
    return out;
  }
  static Value Add(const Value& a, const Value& b) { return Normal(a + b); }
  static Value Sub(const Value& a, const Value& b) { return Normal(a - b); }
  static Value Mul(const Value& a, const Value& b) { return Normal(a * b); }
  static Value Neg(const Value& a) { return Normal(-a); }
  static Value Div(const Value& a, const Value& b) {
    if (a.is_empty() || b.is_empty()) {
      return Bottom();
    }
    // Mirror the reference coarsening: any unbounded side gives up, and a
    // {0}-only divisor means every execution faults. Within those guards the
    // ConstantInterval sign-split division computes the same corners as the
    // fixed DivI.
    if (!a.is_bounded() || !b.is_bounded()) {
      return Top();
    }
    if (b.is_single_point(0)) {
      return Bottom();
    }
    return Normal(a / b);
  }
  static Value Rem(const Value& a, const Value& b) {
    if (a.is_empty() || b.is_empty()) {
      return Bottom();
    }
    if (!b.is_bounded()) {
      return Top();
    }
    // Same magnitude bound as the reference RemI (no dividend-magnitude
    // tightening: that extra precision lives in the support algebra's
    // operator% and would break cross-mode report equality here).
    const int64_t mag = std::max(std::abs(b.min), std::abs(b.max));
    if (mag == 0) {
      return Bottom();
    }
    Value out = Range(-(mag - 1), mag - 1);
    if (a.min_defined && a.min >= 0) {
      out = Meet(out, support::ConstantInterval::BoundedBelow(0));
    }
    if (a.max_defined && a.max <= 0) {
      out = Meet(out, support::ConstantInterval::BoundedAbove(0));
    }
    return out;
  }
};

// Per-program-point abstract state.
template <typename V>
struct AbsStateT {
  std::vector<V> regs;
  std::vector<V> arrays;  // Value summary per local array.
  bool reachable = false;

  bool operator==(const AbsStateT&) const = default;
};

// A comparison definition used for branch refinement: reg = a OP b.
struct CmpDef {
  lang::BinaryOp op;
  lang::RegId a = lang::kNoReg;
  lang::RegId b = lang::kNoReg;
  int64_t const_a = 0;  // Valid when a == kNoReg.
  int64_t const_b = 0;  // Valid when b == kNoReg.
  bool valid = false;
};

bool IsComparisonOp(lang::BinaryOp op) {
  switch (op) {
    case lang::BinaryOp::kEq:
    case lang::BinaryOp::kNe:
    case lang::BinaryOp::kLt:
    case lang::BinaryOp::kLe:
    case lang::BinaryOp::kGt:
    case lang::BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

// The fixpoint analyzer, shared verbatim by both modes; `D` supplies the
// value domain (see the domain structs above).
template <typename D>
class IntervalAnalyzer {
 public:
  using V = typename D::Value;
  using AbsState = AbsStateT<V>;

  IntervalAnalyzer(const lang::IrFunction& fn, const IntervalOptions& options,
                   const CfgView* cfg)
      : fn_(fn), options_(options), cfg_(cfg) {}

  IntervalReport Run() {
    const size_t num_blocks = fn_.blocks.size();
    if (num_blocks == 0) {
      return IntervalReport{};  // No entry block to seed.
    }
    in_.assign(num_blocks, MakeBottom());
    visits_.assign(num_blocks, 0);
    ComputeCfgFacts();
    // Entry: parameters (and everything else) start at Top / zero.
    AbsState entry = MakeBottom();
    entry.reachable = true;
    for (auto& reg : entry.regs) {
      reg = D::Const(0);
    }
    for (const lang::RegId param : fn_.param_regs) {
      entry.regs[static_cast<size_t>(param)] = D::Top();
    }
    for (size_t a = 0; a < fn_.arrays.size(); ++a) {
      entry.arrays[a] = fn_.arrays[a].is_param ? D::Top() : D::Const(0);
    }
    in_[0] = entry;

    std::deque<lang::BlockId> worklist = {0};
    int iterations = 0;
    while (!worklist.empty() && ++iterations < options_.max_iterations) {
      if (options_.deadline != nullptr) {
        options_.deadline->TickOrThrow("intervals");
      }
      const lang::BlockId block = worklist.front();
      worklist.pop_front();
      AbsState out = in_[static_cast<size_t>(block)];
      if (!out.reachable) {
        continue;
      }
      CmpDefMap cmp_defs;
      TransferBlock(block, out, cmp_defs, nullptr);
      // Propagate along edges with branch refinement.
      const auto& term = fn_.blocks[static_cast<size_t>(block)].term;
      auto propagate = [&](lang::BlockId succ, const AbsState& state) {
        const auto su = static_cast<size_t>(succ);
        AbsState joined = JoinStates(in_[su], state);
        ++visits_[su];
        // Widening only at loop headers (back-edge targets): widening at
        // ordinary join blocks would erase branch refinements for no
        // termination benefit.
        if (widen_point_[su] && visits_[su] > options_.widen_after) {
          joined = WidenStates(in_[su], joined);
        }
        if (!(joined == in_[su])) {
          in_[su] = std::move(joined);
          worklist.push_back(succ);
        }
      };
      switch (term.kind) {
        case lang::TerminatorKind::kJump:
          propagate(term.target_true, out);
          break;
        case lang::TerminatorKind::kBranch: {
          AbsState true_state = out;
          AbsState false_state = out;
          RefineBranch(term.cond, cmp_defs, /*taken=*/true, true_state);
          RefineBranch(term.cond, cmp_defs, /*taken=*/false, false_state);
          if (!StateIsBottom(true_state)) {
            propagate(term.target_true, true_state);
          }
          if (!StateIsBottom(false_state)) {
            propagate(term.target_false, false_state);
          }
          break;
        }
        case lang::TerminatorKind::kReturn:
        case lang::TerminatorKind::kAbort:
          break;
      }
    }

    // Final checking pass with the stable states.
    IntervalReport report;
    if (options_.record_block_ranges) {
      report.block_entry_regs.resize(num_blocks);
    }
    for (size_t b = 0; b < num_blocks; ++b) {
      if (!in_[b].reachable) {
        continue;
      }
#ifdef CLAIR_AI_DEBUG
      std::fprintf(stderr, "bb%zu in:", b);
      for (size_t r = 0; r < in_[b].regs.size(); ++r) {
        const auto& iv = in_[b].regs[r];
        std::fprintf(stderr, " %s=[%lld,%lld]%s", fn_.reg_names[r].c_str(),
                     (long long)D::Lo(iv), (long long)D::Hi(iv),
                     D::IsBottom(iv) ? "B" : "");
      }
      std::fprintf(stderr, "\n");
#endif
      if (options_.record_block_ranges) {
        auto& regs = report.block_entry_regs[b];
        regs.reserve(in_[b].regs.size());
        for (const V& reg : in_[b].regs) {
          regs.push_back(D::ToInterval(reg));
        }
      }
      AbsState state = in_[b];
      CmpDefMap cmp_defs;
      TransferBlock(static_cast<lang::BlockId>(b), state, cmp_defs, &report);
    }
    return report;
  }

 private:
  using CmpDefMap = std::vector<CmpDef>;

  AbsState MakeBottom() const {
    AbsState state;
    state.regs.assign(static_cast<size_t>(fn_.reg_count), D::Bottom());
    state.arrays.assign(fn_.arrays.size(), D::Bottom());
    state.reachable = false;
    return state;
  }

  static bool StateIsBottom(const AbsState& state) {
    // A refinement that produced an empty interval for some register proves
    // the edge infeasible.
    for (const auto& reg : state.regs) {
      if (D::IsBottom(reg)) {
        return true;
      }
    }
    return false;
  }

  AbsState JoinStates(const AbsState& a, const AbsState& b) const {
    if (!a.reachable) {
      return b;
    }
    if (!b.reachable) {
      return a;
    }
    AbsState out = a;
    for (size_t r = 0; r < out.regs.size(); ++r) {
      out.regs[r] = D::Join(a.regs[r], b.regs[r]);
    }
    for (size_t arr = 0; arr < out.arrays.size(); ++arr) {
      out.arrays[arr] = D::Join(a.arrays[arr], b.arrays[arr]);
    }
    return out;
  }

  AbsState WidenStates(const AbsState& older, const AbsState& newer) const {
    if (!older.reachable) {
      return newer;
    }
    AbsState out = newer;
    for (size_t r = 0; r < out.regs.size(); ++r) {
      out.regs[r] = D::Widen(older.regs[r], newer.regs[r]);
    }
    for (size_t arr = 0; arr < out.arrays.size(); ++arr) {
      out.arrays[arr] = D::Widen(older.arrays[arr], newer.arrays[arr]);
    }
    return out;
  }

  // Runs the block's instructions over `state`. Records comparison
  // definitions for branch refinement, and (when `report` is non-null)
  // checks array accesses and divisions.
  void TransferBlock(lang::BlockId block, AbsState& state, CmpDefMap& cmp_defs,
                     IntervalReport* report) {
    cmp_defs.assign(static_cast<size_t>(fn_.reg_count), CmpDef{});
    for (const auto& instr : fn_.blocks[static_cast<size_t>(block)].instrs) {
      TransferInstr(instr, state, cmp_defs, report);
    }
  }

  V RegOf(const AbsState& state, lang::RegId reg) const {
    return state.regs[static_cast<size_t>(reg)];
  }

  void TransferInstr(const lang::IrInstr& instr, AbsState& state, CmpDefMap& cmp_defs,
                     IntervalReport* report) {
    auto set = [&state, &cmp_defs](lang::RegId reg, const V& value) {
      state.regs[static_cast<size_t>(reg)] = value;
      cmp_defs[static_cast<size_t>(reg)].valid = false;
    };
    switch (instr.op) {
      case lang::IrOpcode::kConst:
        set(instr.dst, D::Const(instr.imm));
        break;
      case lang::IrOpcode::kCopy:
        set(instr.dst, RegOf(state, instr.a));
        // Copies preserve the comparison shape for refinement.
        cmp_defs[static_cast<size_t>(instr.dst)] = cmp_defs[static_cast<size_t>(instr.a)];
        break;
      case lang::IrOpcode::kUnOp: {
        const V a = RegOf(state, instr.a);
        switch (instr.unary_op) {
          case lang::UnaryOp::kNeg:
            set(instr.dst, D::Neg(a));
            break;
          case lang::UnaryOp::kNot:
            set(instr.dst, D::Range(0, 1));
            break;
          default:
            set(instr.dst, D::Top());
            break;
        }
        break;
      }
      case lang::IrOpcode::kBinOp: {
        const V a = RegOf(state, instr.a);
        const V b = RegOf(state, instr.b);
        V value = D::Top();
        switch (instr.binary_op) {
          case lang::BinaryOp::kAdd:
            value = D::Add(a, b);
            break;
          case lang::BinaryOp::kSub:
            value = D::Sub(a, b);
            break;
          case lang::BinaryOp::kMul:
            value = D::Mul(a, b);
            break;
          case lang::BinaryOp::kDiv:
          case lang::BinaryOp::kRem: {
            if (report != nullptr) {
              ++report->divisions;
            }
            const bool divisor_nonzero = !D::Contains(b, 0);
            if (report != nullptr) {
              if (divisor_nonzero) {
                ++report->proven_nonzero_divisor;
              } else {
                report->findings.push_back(
                    {AiFinding::Kind::kPossibleDivByZero, fn_.name, instr.line});
              }
            }
            const V refined_divisor =
                divisor_nonzero ? b
                                : D::Join(D::Meet(b, D::Range(Interval::kMin, -1)),
                                          D::Meet(b, D::Range(1, Interval::kMax)));
            value = instr.binary_op == lang::BinaryOp::kDiv
                        ? D::Div(a, refined_divisor)
                        : D::Rem(a, refined_divisor);
            break;
          }
          case lang::BinaryOp::kEq:
          case lang::BinaryOp::kNe:
          case lang::BinaryOp::kLt:
          case lang::BinaryOp::kLe:
          case lang::BinaryOp::kGt:
          case lang::BinaryOp::kGe:
            value = D::Range(0, 1);
            break;
          case lang::BinaryOp::kAnd:
          case lang::BinaryOp::kOr:
            value = D::Range(0, 1);
            break;
          case lang::BinaryOp::kBitAnd:
            if (!D::IsBottom(a) && !D::IsBottom(b) && D::Lo(a) >= 0 && D::Lo(b) >= 0) {
              value = D::Range(0, std::min(D::Hi(a), D::Hi(b)));
            }
            break;
          case lang::BinaryOp::kBitOr:
          case lang::BinaryOp::kBitXor:
          case lang::BinaryOp::kShl:
          case lang::BinaryOp::kShr:
            value = D::Top();
            break;
        }
        set(instr.dst, value);
        if (IsComparisonOp(instr.binary_op)) {
          CmpDef def;
          def.op = instr.binary_op;
          def.a = instr.a;
          def.b = instr.b;
          def.valid = true;
          cmp_defs[static_cast<size_t>(instr.dst)] = def;
        }
        break;
      }
      case lang::IrOpcode::kLoadGlobal:
        set(instr.dst, D::Top());  // Globals are modelled as Top.
        break;
      case lang::IrOpcode::kStoreGlobal:
        break;
      case lang::IrOpcode::kArrayLoad:
      case lang::IrOpcode::kArrayStore: {
        int64_t size = 0;
        V summary = D::Top();
        if (instr.array >= 0) {
          size = fn_.arrays[static_cast<size_t>(instr.array)].size;
          summary = state.arrays[static_cast<size_t>(instr.array)];
        } else {
          size = 0;  // Global arrays: size known but values Top; look up size.
        }
        if (instr.array < 0) {
          // Global arrays carry Top values; use declared size for checking.
          // (Module reference is unavailable here; size 0 would flag every
          // access, so the caller passes module-level accesses via the
          // whole-module wrapper below. For intraprocedural runs this arm is
          // conservative.)
        }
        const V index = RegOf(state, instr.a);
        if (report != nullptr && size > 0) {
          ++report->array_accesses;
          if (!D::IsBottom(index) && D::Lo(index) >= 0 && D::Hi(index) < size) {
            ++report->proven_in_bounds;
          } else {
            report->findings.push_back(
                {AiFinding::Kind::kPossibleOutOfBounds, fn_.name, instr.line});
          }
        }
        if (instr.op == lang::IrOpcode::kArrayLoad) {
          set(instr.dst, instr.array >= 0 ? summary : D::Top());
        } else if (instr.array >= 0) {
          state.arrays[static_cast<size_t>(instr.array)] =
              D::Join(summary, RegOf(state, instr.b));
        }
        break;
      }
      case lang::IrOpcode::kCall:
        if (instr.dst != lang::kNoReg) {
          set(instr.dst, D::Top());
        }
        break;
      case lang::IrOpcode::kInput:
        set(instr.dst, D::FromInterval(options_.input_range));
        break;
      case lang::IrOpcode::kOutput:
      case lang::IrOpcode::kAssume:
        break;
    }
  }

  // Refines `state` given that register `cond` evaluated to `taken` at a
  // branch. Tries the branch block's local comparison map first (covers
  // multi-def variables compared immediately before branching), then the
  // global unique-definition resolver (covers short-circuit diamonds and
  // conditions carried through copies).
  void RefineBranch(lang::RegId cond, const CmpDefMap& cmp_defs, bool taken,
                    AbsState& state) const {
    const CmpDef& def = cmp_defs[static_cast<size_t>(cond)];
    if (def.valid) {
      RefineComparison(def.op, def.a, def.b, taken, state, /*may_write_a=*/true,
                       /*may_write_b=*/true);
      return;
    }
    RefineGlobal(cond, taken, state, /*depth=*/6);
  }

  // --- CFG facts for widening points and cross-block refinement -------------

  struct PredEdge {
    lang::BlockId pred;
    bool is_branch = false;
    bool taken = false;  // Which arm of the predecessor's branch.
  };

  void ComputeCfgFacts() {
    const size_t num_blocks = fn_.blocks.size();
    preds_.assign(num_blocks, {});
    for (size_t b = 0; b < num_blocks; ++b) {
      const auto& term = fn_.blocks[b].term;
      switch (term.kind) {
        case lang::TerminatorKind::kJump:
          preds_[static_cast<size_t>(term.target_true)].push_back(
              {static_cast<lang::BlockId>(b), false, false});
          break;
        case lang::TerminatorKind::kBranch:
          preds_[static_cast<size_t>(term.target_true)].push_back(
              {static_cast<lang::BlockId>(b), true, true});
          preds_[static_cast<size_t>(term.target_false)].push_back(
              {static_cast<lang::BlockId>(b), true, false});
          break;
        default:
          break;
      }
    }
    // Back-edge targets (u->v with rpo(u) >= rpo(v)) are the widening
    // points. Engine mode takes them from the shared CfgView (computed once
    // per function and reused by every analysis); reference mode keeps the
    // original inline recomputation. Both derive the same RPO, so the
    // widening points — and with them the whole analysis — are identical.
    if (options_.mode == DataflowMode::kEngine) {
      if (cfg_ != nullptr) {
        widen_point_ = cfg_->widen_point;
      } else {
        widen_point_ = CfgView(fn_).widen_point;
      }
    } else {
      std::vector<int> rpo_index(num_blocks, -1);
      {
        std::vector<bool> seen(num_blocks, false);
        std::vector<lang::BlockId> post;
        std::vector<std::pair<lang::BlockId, size_t>> stack = {{0, 0}};
        seen[0] = true;
        while (!stack.empty()) {
          auto& [block, child] = stack.back();
          const auto succs = fn_.Successors(block);
          if (child < succs.size()) {
            const lang::BlockId next = succs[child++];
            if (!seen[static_cast<size_t>(next)]) {
              seen[static_cast<size_t>(next)] = true;
              stack.emplace_back(next, 0);
            }
          } else {
            post.push_back(block);
            stack.pop_back();
          }
        }
        // Reverse post-order index: last-finished block (the entry) gets 0.
        for (auto it = post.rbegin(); it != post.rend(); ++it) {
          rpo_index[static_cast<size_t>(*it)] = static_cast<int>(it - post.rbegin());
        }
      }
      widen_point_.assign(num_blocks, false);
      for (size_t u = 0; u < num_blocks; ++u) {
        if (rpo_index[u] < 0) {
          continue;
        }
        for (const lang::BlockId v : fn_.Successors(static_cast<lang::BlockId>(u))) {
          if (rpo_index[static_cast<size_t>(v)] >= 0 &&
              rpo_index[u] >= rpo_index[static_cast<size_t>(v)]) {
            widen_point_[static_cast<size_t>(v)] = true;
          }
        }
      }
    }
    // Definition sites per register.
    def_count_.assign(static_cast<size_t>(fn_.reg_count), 0);
    def_block_.assign(static_cast<size_t>(fn_.reg_count), -1);
    def_instr_.assign(static_cast<size_t>(fn_.reg_count), nullptr);
    for (size_t b = 0; b < num_blocks; ++b) {
      for (const auto& instr : fn_.blocks[b].instrs) {
        const lang::RegId dst = lang::DstOf(instr);
        if (dst != lang::kNoReg) {
          ++def_count_[static_cast<size_t>(dst)];
          def_block_[static_cast<size_t>(dst)] = static_cast<lang::BlockId>(b);
          def_instr_[static_cast<size_t>(dst)] = &instr;
        }
      }
    }
    // Parameters behave like an extra definition.
    for (const lang::RegId param : fn_.param_regs) {
      ++def_count_[static_cast<size_t>(param)];
    }
  }

  bool SingleDef(lang::RegId reg) const {
    return def_count_[static_cast<size_t>(reg)] == 1 &&
           def_instr_[static_cast<size_t>(reg)] != nullptr;
  }

  // Cross-block refinement: resolves `cond` through unique definitions,
  // Truthy wrappers, copies, and the lowered short-circuit diamond (where
  // one definition is a constant that cannot produce the taken value).
  // `depth` bounds recursion through chained conditions.
  void RefineGlobal(lang::RegId cond, bool taken, AbsState& state, int depth) const {
    if (depth <= 0) {
      return;
    }
    // Collect candidate definitions able to produce `taken`.
    const lang::IrInstr* candidate = nullptr;
    int candidates = 0;
    for (const auto& block : fn_.blocks) {
      for (const auto& instr : block.instrs) {
        if (instr.dst != cond || !lang::WritesDst(instr)) {
          continue;
        }
        if (instr.op == lang::IrOpcode::kConst) {
          const bool can_produce = taken ? instr.imm != 0 : instr.imm == 0;
          if (!can_produce) {
            continue;  // This definition cannot be the live one.
          }
        }
        ++candidates;
        candidate = &instr;
      }
    }
    for (const lang::RegId param : fn_.param_regs) {
      if (param == cond) {
        ++candidates;  // Parameter value: opaque definition.
      }
    }
    if (candidates != 1 || candidate == nullptr) {
      return;
    }
    ApplyDefRefinement(*candidate, taken, state, depth);
    // Execution necessarily passed through the definition's block: fold in
    // the branch conditions along its single-predecessor chain.
    lang::BlockId block = def_block_of(*candidate);
    for (int hops = 0; hops < 4 && block >= 0; ++hops) {
      const auto& edges = preds_[static_cast<size_t>(block)];
      if (edges.size() != 1) {
        break;
      }
      const PredEdge& edge = edges[0];
      if (edge.is_branch) {
        const auto& term = fn_.blocks[static_cast<size_t>(edge.pred)].term;
        RefineGlobal(term.cond, edge.taken, state, depth - 1);
      }
      block = edge.pred;
    }
  }

  lang::BlockId def_block_of(const lang::IrInstr& instr) const {
    for (size_t b = 0; b < fn_.blocks.size(); ++b) {
      for (const auto& candidate : fn_.blocks[b].instrs) {
        if (&candidate == &instr) {
          return static_cast<lang::BlockId>(b);
        }
      }
    }
    return -1;
  }

  void ApplyDefRefinement(const lang::IrInstr& def, bool taken, AbsState& state,
                          int depth) const {
    switch (def.op) {
      case lang::IrOpcode::kCopy:
        RefineGlobal(def.a, taken, state, depth - 1);
        return;
      case lang::IrOpcode::kUnOp:
        if (def.unary_op == lang::UnaryOp::kNot) {
          RefineGlobal(def.a, !taken, state, depth - 1);
        }
        return;
      case lang::IrOpcode::kBinOp:
        break;
      default:
        return;
    }
    // Truthy wrapper: (x != 0) / (x == 0).
    const auto is_zero_const = [this](lang::RegId reg) {
      return SingleDef(reg) &&
             def_instr_[static_cast<size_t>(reg)]->op == lang::IrOpcode::kConst &&
             def_instr_[static_cast<size_t>(reg)]->imm == 0;
    };
    if (def.binary_op == lang::BinaryOp::kNe && is_zero_const(def.b)) {
      RefineGlobal(def.a, taken, state, depth - 1);
      return;
    }
    if (def.binary_op == lang::BinaryOp::kEq && is_zero_const(def.b)) {
      RefineGlobal(def.a, !taken, state, depth - 1);
      return;
    }
    if (!IsComparisonOp(def.binary_op)) {
      return;
    }
    // A real comparison: refine its operands (only single-assignment
    // registers may be written — multi-def variables could have changed
    // between the comparison and the branch).
    RefineComparison(def.binary_op, def.a, def.b, taken, state,
                     /*may_write_a=*/SingleDef(def.a),
                     /*may_write_b=*/SingleDef(def.b));
  }

  // Shared comparison-refinement arithmetic; used by both the local (same
  // block, always writable) and global (single-def operands only) paths.
  void RefineComparison(lang::BinaryOp op, lang::RegId reg_a, lang::RegId reg_b,
                        bool taken, AbsState& state, bool may_write_a,
                        bool may_write_b) const {
    if (!taken) {
      switch (op) {
        case lang::BinaryOp::kEq:
          op = lang::BinaryOp::kNe;
          break;
        case lang::BinaryOp::kNe:
          op = lang::BinaryOp::kEq;
          break;
        case lang::BinaryOp::kLt:
          op = lang::BinaryOp::kGe;
          break;
        case lang::BinaryOp::kLe:
          op = lang::BinaryOp::kGt;
          break;
        case lang::BinaryOp::kGt:
          op = lang::BinaryOp::kLe;
          break;
        case lang::BinaryOp::kGe:
          op = lang::BinaryOp::kLt;
          break;
        default:
          return;
      }
    }
    V& ia = state.regs[static_cast<size_t>(reg_a)];
    V& ib = state.regs[static_cast<size_t>(reg_b)];
    V new_a = ia;
    V new_b = ib;
    // Endpoint nudges go through the direction-aware saturating helpers:
    // `lo + 1` stays -inf when lo is the sentinel, `hi - 1` stays +inf.
    switch (op) {
      case lang::BinaryOp::kEq: {
        const V met = D::Meet(ia, ib);
        new_a = met;
        new_b = met;
        break;
      }
      case lang::BinaryOp::kNe:
        if (!D::IsBottom(ib) && D::Lo(ib) == D::Hi(ib) && D::Contains(ia, D::Lo(ib))) {
          if (D::Lo(ia) == D::Lo(ib)) {
            new_a = D::Range(SatAddLo(D::Lo(ia), 1), D::Hi(ia));
          } else if (D::Hi(ia) == D::Lo(ib)) {
            new_a = D::Range(D::Lo(ia), SatAddHi(D::Hi(ia), -1));
          }
        }
        break;
      case lang::BinaryOp::kLt:
        new_a = D::Meet(ia, D::Range(Interval::kMin, SatAddHi(D::Hi(ib), -1)));
        new_b = D::Meet(ib, D::Range(SatAddLo(D::Lo(ia), 1), Interval::kMax));
        break;
      case lang::BinaryOp::kLe:
        new_a = D::Meet(ia, D::Range(Interval::kMin, D::Hi(ib)));
        new_b = D::Meet(ib, D::Range(D::Lo(ia), Interval::kMax));
        break;
      case lang::BinaryOp::kGt:
        new_a = D::Meet(ia, D::Range(SatAddLo(D::Lo(ib), 1), Interval::kMax));
        new_b = D::Meet(ib, D::Range(Interval::kMin, SatAddHi(D::Hi(ia), -1)));
        break;
      case lang::BinaryOp::kGe:
        new_a = D::Meet(ia, D::Range(D::Lo(ib), Interval::kMax));
        new_b = D::Meet(ib, D::Range(Interval::kMin, D::Hi(ia)));
        break;
      default:
        return;
    }
    if (may_write_a) {
      ia = new_a;
    }
    if (may_write_b) {
      ib = new_b;
    }
  }

  const lang::IrFunction& fn_;
  IntervalOptions options_;
  const CfgView* cfg_ = nullptr;  // Shared CFG facts (engine mode); not owned.
  std::vector<AbsState> in_;
  std::vector<int> visits_;
  std::vector<std::vector<PredEdge>> preds_;
  std::vector<bool> widen_point_;
  std::vector<int> def_count_;
  std::vector<lang::BlockId> def_block_;
  std::vector<const lang::IrInstr*> def_instr_;
};

}  // namespace

IntervalReport AnalyzeIntervals(const lang::IrFunction& fn, const IntervalOptions& options,
                                const CfgView* cfg) {
  if (options.mode == DataflowMode::kReference) {
    return IntervalAnalyzer<RefDomain>(fn, options, cfg).Run();
  }
  return IntervalAnalyzer<CiDomain>(fn, options, cfg).Run();
}

metrics::FeatureVector IntervalFeatures(const lang::IrModule& module,
                                        const IntervalOptions& options) {
  support::FaultInjector::Global().MaybeFail(support::FaultSite::kIntervals,
                                             lang::ModuleFingerprint(module));
  metrics::FeatureVector fv;
  long long accesses = 0;
  long long proven = 0;
  long long divisions = 0;
  long long proven_div = 0;
  long long possible_oob = 0;
  long long possible_div0 = 0;
  for (const auto& fn : module.functions) {
    const IntervalReport report = AnalyzeIntervals(fn, options);  // CfgView built per mode inside.
    accesses += report.array_accesses;
    proven += report.proven_in_bounds;
    divisions += report.divisions;
    proven_div += report.proven_nonzero_divisor;
    for (const auto& finding : report.findings) {
      if (finding.kind == AiFinding::Kind::kPossibleOutOfBounds) {
        ++possible_oob;
      } else {
        ++possible_div0;
      }
    }
  }
  fv.Set("ai.array_accesses", static_cast<double>(accesses));
  fv.Set("ai.proven_in_bounds", static_cast<double>(proven));
  fv.Set("ai.possible_oob", static_cast<double>(possible_oob));
  fv.Set("ai.divisions", static_cast<double>(divisions));
  fv.Set("ai.proven_nonzero_divisor", static_cast<double>(proven_div));
  fv.Set("ai.possible_div0", static_cast<double>(possible_div0));
  if (accesses > 0) {
    fv.Set("ai.unproven_access_ratio",
           static_cast<double>(possible_oob) / static_cast<double>(accesses));
  }
  return fv;
}

}  // namespace dataflow
