// Classic iterative dataflow analyses over the MiniC IR (§4.1: "data flow
// analysis can determine numbers of expressions or functions influencing the
// execution of other parts of the code").
//
// All analyses operate per-function on the CFG; they are flow-sensitive and
// reach a fixpoint via worklist iteration. Each analysis runs in one of two
// modes (see engine.h): the word-packed bitset + priority-worklist engine
// (default) or the original dense full-sweep implementation kept as a
// reference oracle. Both modes converge to the same unique least fixpoint,
// so every accessor returns bit-identical results in either mode; the
// dataflow_fixpoint bench and the randomized-CFG tests enforce this.
#ifndef SRC_DATAFLOW_ANALYSES_H_
#define SRC_DATAFLOW_ANALYSES_H_

#include <cstdint>
#include <vector>

#include "src/dataflow/engine.h"
#include "src/lang/ir.h"
#include "src/metrics/feature_vector.h"
#include "src/support/bitset.h"
#include "src/support/deadline.h"

namespace dataflow {

// A definition site: instruction `instr_index` in block `block` writes
// register `reg`.
struct DefSite {
  lang::BlockId block = 0;
  int instr_index = 0;
  lang::RegId reg = lang::kNoReg;
};

// Reaching definitions: for each block, the set of definition sites live on
// entry. Sets are word-packed bit rows indexed by definition id. `cfg`, when
// given, must view the same function (it is shared across analyses by
// DataflowFeatures); otherwise one is built internally.
class ReachingDefinitions {
 public:
  explicit ReachingDefinitions(const lang::IrFunction& fn,
                               const CfgView* cfg = nullptr,
                               DataflowMode mode = DefaultDataflowMode());

  const std::vector<DefSite>& definitions() const { return defs_; }
  // Bit i set => definition i reaches the entry of `block`.
  support::ConstBitSpan InSet(lang::BlockId block) const {
    return in_.Row(static_cast<size_t>(block));
  }
  // Definitions of `reg` reaching the entry of `block`.
  int CountReaching(lang::BlockId block, lang::RegId reg) const;
  // Mean number of distinct defs per (block, used reg) pair — a
  // def-use-breadth summary feature.
  double MeanReachingPerUse() const;

 private:
  void BuildEngine(const CfgView& cfg);
  void BuildReference(const CfgView& cfg);

  const lang::IrFunction& fn_;
  std::vector<DefSite> defs_;
  support::BitMatrix in_;  // blocks × defs, filled by either mode.
};

// Live variables (backward may-analysis).
class Liveness {
 public:
  explicit Liveness(const lang::IrFunction& fn, const CfgView* cfg = nullptr,
                    DataflowMode mode = DefaultDataflowMode());

  // True if `reg` is live on entry to `block`.
  bool LiveIn(lang::BlockId block, lang::RegId reg) const {
    return live_in_.Row(static_cast<size_t>(block)).Test(static_cast<size_t>(reg));
  }
  // Maximum number of simultaneously live registers at any block entry.
  int MaxLiveAtEntry() const;

 private:
  void BuildEngine(const lang::IrFunction& fn, const CfgView& cfg);
  void BuildReference(const lang::IrFunction& fn, const CfgView& cfg);

  support::BitMatrix live_in_;  // blocks × regs.
};

// Dominator tree via the classic iterative algorithm.
class Dominators {
 public:
  explicit Dominators(const lang::IrFunction& fn, const CfgView* cfg = nullptr,
                      DataflowMode mode = DefaultDataflowMode());

  // Immediate dominator; entry's idom is itself. -1 for unreachable blocks.
  lang::BlockId Idom(lang::BlockId block) const {
    return idom_[static_cast<size_t>(block)];
  }
  bool Dominates(lang::BlockId a, lang::BlockId b) const {
    return DominatesInTree(idom_, a, b);
  }
  // Depth of the dominator tree (longest chain).
  int TreeDepth() const;

  // Guarded idom-chain walk: returns whether `a` dominates `b` in the given
  // idom array, walking at most idom.size() steps so a malformed idom cycle
  // (e.g. state corrupted under fault injection) degrades to `false` instead
  // of hanging. Exposed for the guard test.
  static bool DominatesInTree(const std::vector<lang::BlockId>& idom,
                              lang::BlockId a, lang::BlockId b);

 private:
  void BuildEngine(const CfgView& cfg);
  void BuildReference(const CfgView& cfg);

  std::vector<lang::BlockId> idom_;
};

// Taint: registers (transitively) derived from input() — flow-sensitive,
// with a fixpoint across loops, unlike the lint-grade pass in metrics.
struct TaintSummary {
  long long tainted_instructions = 0;  // Instructions with a tainted operand.
  long long tainted_branches = 0;      // Conditional branches on tainted data.
  long long tainted_array_indices = 0; // Array accesses indexed by taint.
  long long tainted_sinks = 0;         // sink() calls receiving tainted data.
  long long tainted_call_args = 0;     // Tainted values crossing call edges.
  long long input_sites = 0;           // Number of input() instructions.
};

TaintSummary AnalyzeTaint(const lang::IrFunction& fn, const CfgView* cfg = nullptr,
                          DataflowMode mode = DefaultDataflowMode());

// Aggregates all dataflow-derived features for a module into the shared
// FeatureVector namespace "dataflow.*". `deadline`, when given, is ticked
// once per analyzed block so the caller's watchdog can bound runaway
// modules; expiry throws support::DeadlineExceeded. The tick accounting is
// mode-independent, so a step budget trips at the same logical point in
// either mode and feature rows stay byte-identical.
metrics::FeatureVector DataflowFeatures(const lang::IrModule& module,
                                        support::Deadline* deadline = nullptr,
                                        DataflowMode mode = DefaultDataflowMode());

}  // namespace dataflow

#endif  // SRC_DATAFLOW_ANALYSES_H_
