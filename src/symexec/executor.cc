#include "src/symexec/executor.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>

#include "src/metrics/callgraph.h"
#include "src/support/deadline.h"
#include "src/support/fault_injection.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"
#include "src/symexec/bitblast.h"
#include "src/symexec/counter.h"
#include "src/symexec/range_eval.h"

namespace symx {

const char* VulnKindName(VulnKind kind) {
  switch (kind) {
    case VulnKind::kOutOfBounds:
      return "out-of-bounds";
    case VulnKind::kDivByZero:
      return "division-by-zero";
  }
  return "<bad>";
}

double SymExecResult::MaxExploitFraction() const {
  double best = 0.0;
  for (const auto& vuln : vulns) {
    best = std::max(best, vuln.exploit_fraction);
  }
  return best;
}

namespace {

struct Frame {
  const lang::IrFunction* fn = nullptr;
  std::vector<ExprRef> regs;
  std::vector<std::vector<ExprRef>> arrays;
  lang::BlockId block = 0;
  size_t instr_index = 0;
  lang::RegId caller_dst = lang::kNoReg;  // Where the return value lands.
};

// One recycled SatSolver per worker thread. An exploration leases the
// session for its lifetime and Reset()s the solver before use, so
// back-to-back explorations on the same thread (a scheduler draining its
// queue, SymexFeatures fanning entries onto the pool) re-grow into memory
// the solver already owns. `in_use` guards nested Explore calls on one
// thread — the inner exploration falls back to an owned instance.
struct SolverSession {
  SatSolver solver;
  bool in_use = false;
  bool ever_used = false;
};

SolverSession& ThreadSolverSession() {
  static thread_local SolverSession session;
  return session;
}

std::atomic<uint64_t> g_solver_session_reuses{0};

SatSolver& AcquireSolver(const SymExecOptions& options,
                         std::unique_ptr<SatSolver>& owned, bool& leased) {
  if (options.reuse_solver_session) {
    SolverSession& session = ThreadSolverSession();
    if (!session.in_use) {
      session.in_use = true;
      if (session.ever_used) {
        session.solver.Reset();
        g_solver_session_reuses.fetch_add(1, std::memory_order_relaxed);
      }
      session.ever_used = true;
      leased = true;
      return session.solver;
    }
  }
  owned = std::make_unique<SatSolver>();
  return *owned;
}

struct PathState {
  std::vector<Frame> frames;
  std::vector<ExprRef> globals;
  std::vector<std::vector<ExprRef>> global_arrays;
  std::vector<ExprRef> pc;  // Path condition: conjunction of truthy exprs.
  // Disjoint value sets implied by `pc`, keyed by subexpression: the range
  // domain's over-approximation of the same conjunction, used to decide new
  // branch deltas without the solver. Forked (copied) with the path.
  RangeRefinements ranges;
  uint64_t steps = 0;
};

class Explorer {
 public:
  Explorer(const lang::IrModule& module, const SymExecOptions& options)
      : module_(module),
        options_(options),
        pool_(options.width),
        rng_(options.rng_seed),
        range_eval_(pool_),
        inc_solver_(AcquireSolver(options, owned_solver_, leased_session_)),
        inc_blaster_(pool_, inc_solver_),
        deadline_(options.watchdog_steps),
        fault_key_(support::FaultKeyMix(lang::ModuleFingerprint(module),
                                       options.rng_seed)) {
    // Solver-site fault injection is keyed by the deterministic query index;
    // pruning changes which queries exist, which would shift every verdict.
    // When the solver site is armed the robustness matrix must see the exact
    // reference query stream, so the optimisation stands down there. Faults
    // at other sites never observe individual queries and keep pruning on.
    if (support::FaultInjector::Global().rate(support::FaultSite::kSolver) >
        0.0) {
      options_.range_pruning = false;
    }
  }

  ~Explorer() {
    if (leased_session_) {
      ThreadSolverSession().in_use = false;
    }
  }

  SymExecResult Run(const std::string& entry) {
    const lang::IrFunction* fn = module_.FindFunction(entry);
    if (fn == nullptr) {
      return std::move(result_);
    }
    PathState initial;
    for (const auto& g : module_.globals) {
      if (g.type.is_array) {
        initial.global_arrays.emplace_back(static_cast<size_t>(g.array_size), pool_.Const(0));
        initial.globals.push_back(pool_.Const(0));
      } else {
        initial.global_arrays.emplace_back();
        initial.globals.push_back(pool_.Const(g.init_value));
      }
    }
    initial.frames.push_back(MakeFrame(*fn, /*symbolic_params=*/true));
    worklist_.push_back(std::move(initial));

    while (!worklist_.empty()) {
      if (result_.paths_explored >= options_.max_paths) {
        result_.path_limit_hit = true;
        break;
      }
      PathState state = std::move(worklist_.back());
      worklist_.pop_back();
      RunPath(std::move(state));
    }
    FinishVulns();
    result_.simplifier_folds = pool_.simplifier_folds();
    return std::move(result_);
  }

 private:
  Frame MakeFrame(const lang::IrFunction& fn, bool symbolic_params) {
    Frame frame;
    frame.fn = &fn;
    frame.regs.assign(static_cast<size_t>(fn.reg_count), pool_.Const(0));
    frame.arrays.reserve(fn.arrays.size());
    for (const auto& arr : fn.arrays) {
      std::vector<ExprRef> cells(static_cast<size_t>(arr.size), pool_.Const(0));
      if (arr.is_param && symbolic_params) {
        for (size_t i = 0; i < cells.size(); ++i) {
          cells[i] = NewInputVar(arr.name + "_" + std::to_string(i));
        }
      }
      frame.arrays.push_back(std::move(cells));
    }
    if (symbolic_params) {
      for (const lang::RegId reg : fn.param_regs) {
        frame.regs[static_cast<size_t>(reg)] =
            NewInputVar("arg_" + fn.reg_names[static_cast<size_t>(reg)]);
      }
    }
    return frame;
  }

  ExprRef NewInputVar(const std::string& name) {
    ++result_.symbolic_inputs;
    return pool_.FreshVar(name);
  }

  // Concretizes runaway expressions: values whose tree grows past the cap
  // are replaced by unconstrained fresh variables (an over-approximation —
  // the same trade KLEE makes when expressions become solver-hostile).
  ExprRef Bounded(ExprRef value) {
    if (pool_.TreeSize(value) > options_.max_expr_nodes) {
      return pool_.FreshVar("havoc");
    }
    return value;
  }

  // Adds `c` to `pc` with light subsumption: identical constraints are
  // dropped, and one-sided bounds (const vs expr comparisons) replace any
  // weaker bound of the same shape. This keeps loop-generated path
  // conditions like {0<n, 1<n, 2<n, ...} at a single constraint.
  void AddConstraint(std::vector<ExprRef>& pc, ExprRef c) {
    const ExprNode& node = pool_.node(c);
    if (node.op == ExprOp::kConst) {
      if (node.imm != 0) {
        return;  // Trivially true.
      }
      pc.push_back(c);  // Trivially false: caller's feasibility check fires.
      return;
    }
    for (const ExprRef existing : pc) {
      if (existing == c) {
        return;  // Hash-consing makes structural equality pointer equality.
      }
    }
    // Bound shape: (op, x, k, lower?) where the constraint reads
    // "x > k" / "x >= k" (lower bound) or "x < k" / "x <= k" (upper bound).
    struct Bound {
      ExprRef x = kNoExpr;
      int64_t limit = 0;  // Normalised: lower => x >= limit, upper => x <= limit.
      bool is_lower = false;
      bool valid = false;
    };
    auto classify = [this](ExprRef r) {
      Bound bound;
      const ExprNode& n = pool_.node(r);
      if (n.op != ExprOp::kSlt && n.op != ExprOp::kSle) {
        return bound;
      }
      const ExprNode& na = pool_.node(n.a);
      const ExprNode& nb = pool_.node(n.b);
      if (na.op == ExprOp::kConst && nb.op != ExprOp::kConst) {
        // k < x  =>  x >= k+1;  k <= x  =>  x >= k.
        bound.x = n.b;
        bound.is_lower = true;
        bound.limit = n.op == ExprOp::kSlt ? na.imm + 1 : na.imm;
        bound.valid = true;
      } else if (nb.op == ExprOp::kConst && na.op != ExprOp::kConst) {
        // x < k  =>  x <= k-1;  x <= k  =>  x <= k.
        bound.x = n.a;
        bound.is_lower = false;
        bound.limit = n.op == ExprOp::kSlt ? nb.imm - 1 : nb.imm;
        bound.valid = true;
      }
      return bound;
    };
    const Bound incoming = classify(c);
    if (incoming.valid) {
      for (auto& existing : pc) {
        const Bound old = classify(existing);
        if (!old.valid || old.x != incoming.x || old.is_lower != incoming.is_lower) {
          continue;
        }
        const bool new_is_tighter = incoming.is_lower ? incoming.limit >= old.limit
                                                      : incoming.limit <= old.limit;
        if (new_is_tighter) {
          existing = c;  // The new bound implies the old one.
        }
        return;  // Either replaced or already implied.
      }
    }
    pc.push_back(c);
  }

  // The activation literal gating constraint `c` in the persistent solver:
  // act → (c truthy). Encoded at most once per constraint; feasibility of a
  // path-condition prefix is then Solve(assumptions = {act(c) for c in pc}),
  // and a retired branch simply stops assuming its literal.
  Lit ActivationLit(ExprRef c) {
    if (activation_.size() < pool_.size()) {
      activation_.resize(pool_.size(), -1);
      cones_.resize(pool_.size());
    }
    if (activation_[static_cast<size_t>(c)] != -1) {
      return activation_[static_cast<size_t>(c)];
    }
    const Var var = inc_solver_.NewVar();
    // Negative-first: decisions must not re-activate constraints this query
    // does not assume (they would only make the instance harder).
    inc_solver_.SetPolarity(var, false);
    const Lit act = MakeLit(var, false);
    inc_blaster_.AssertTrueUnder(act, c);
    activation_[static_cast<size_t>(c)] = act;
    cones_[static_cast<size_t>(c)] = inc_blaster_.EncodingCone(c);
    return act;
  }

  // Feasibility of `pc` (== the path's prior condition plus `delta`), with a
  // range-domain precheck. `refs` over-approximates the models of the prior
  // condition, so a kFalse verdict for `delta` means every model falsifies it
  // (pc is UNSAT), and a kTrue verdict means delta is implied — pc is
  // equisatisfiable with the prior condition, which is feasible by the path
  // invariant. Either way the SAT query is skipped and counted as pruned;
  // kUnknown falls through to the solver. Callers must pass the refinements
  // from *before* learning `delta` (refining first would decide trivially).
  bool FeasibleDelta(const RangeRefinements& refs, ExprRef delta,
                     const std::vector<ExprRef>& pc) {
    if (options_.range_pruning) {
      switch (range_eval_.DecideTruthy(delta, refs)) {
        case support::Tristate::kTrue:
          ++result_.range_pruned;
          return true;
        case support::Tristate::kFalse:
          ++result_.range_pruned;
          return false;
        case support::Tristate::kUnknown:
          break;
      }
    }
    return Feasible(pc);
  }

  // Learns `delta` (just asserted into a path condition) into `refs`.
  void Refine(ExprRef delta, RangeRefinements& refs) {
    if (options_.range_pruning) {
      range_eval_.RefineTrue(delta, refs);
    }
  }

  bool Feasible(const std::vector<ExprRef>& pc) {
    // Solution cache (KLEE-style): a cached model that satisfies every
    // constraint proves satisfiability without a solver call. Variables the
    // model does not cover evaluate as 0, which is still a valid witness.
    for (const auto& model : model_cache_) {
      bool all = true;
      for (const ExprRef c : pc) {
        if (pool_.Eval(c, model) == 0) {
          all = false;
          break;
        }
      }
      if (all) {
        ++result_.model_reuse_hits;
        return true;
      }
    }
    if (result_.solver_queries >= options_.max_solver_queries) {
      return true;  // Budget exhausted: assume feasible (sound for search).
    }
    ++result_.solver_queries;
    // Robustness injection site: per-query granularity, keyed by the
    // exploration's module×entry key and the deterministic query index.
    support::FaultInjector::Global().MaybeFail(
        support::FaultSite::kSolver,
        support::FaultKeyMix(fault_key_, result_.solver_queries),
        options_.fault_salt);
    SatResult sat;
    std::vector<int64_t> model;
    if (options_.incremental_solver) {
      std::vector<Lit> assumptions;
      assumptions.reserve(pc.size());
      for (const ExprRef c : pc) {
        assumptions.push_back(ActivationLit(c));
      }
      const std::vector<Var> decision_vars = ConeUnion(pc);
      const uint64_t conflicts_before = inc_solver_.conflicts();
      sat = inc_solver_.Solve(assumptions, options_.solver_conflict_budget,
                              &decision_vars);
      result_.sat_conflicts += inc_solver_.conflicts() - conflicts_before;
      if (sat == SatResult::kSat) {
        // Every variable in `pc` was materialised when its constraint was
        // encoded, so the model covers all mentioned vars.
        const std::vector<int> used = UsedVars(pc);
        model.assign(static_cast<size_t>(pool_.num_vars()), 0);
        for (const int var_id : used) {
          model[static_cast<size_t>(var_id)] = inc_blaster_.ModelValueOf(var_id);
        }
      }
    } else {
      // One-shot reference oracle: fresh instance, full re-encode per query.
      SatSolver solver;
      BitBlaster blaster(pool_, solver);
      for (const ExprRef c : pc) {
        blaster.AssertTrue(c);
      }
      sat = solver.Solve({}, options_.solver_conflict_budget);
      result_.sat_conflicts += solver.conflicts();
      if (sat == SatResult::kSat) {
        // Encoding the constraints materialised the bits of every variable
        // they mention, so the model can be read back directly.
        const std::vector<int> used = UsedVars(pc);
        model.assign(static_cast<size_t>(pool_.num_vars()), 0);
        for (const int var_id : used) {
          model[static_cast<size_t>(var_id)] = blaster.ModelValueOf(var_id);
        }
      }
    }
    if (sat == SatResult::kUnsat) {
      return false;
    }
    if (sat == SatResult::kSat) {
      // Ring-buffer eviction: overwrite the oldest slot in place instead of
      // erase(begin()), which shifted every remaining entry on each insert.
      // The feasibility scan above is any-match, so slot order is irrelevant.
      if (model_cache_.size() < kModelCacheSize) {
        model_cache_.push_back(std::move(model));
      } else {
        model_cache_[model_cache_next_] = std::move(model);
        model_cache_next_ = (model_cache_next_ + 1) % kModelCacheSize;
      }
    }
    return true;  // kSat, or kUnknown treated as feasible.
  }

  // Union of the encoding cones of `pc`'s constraints (each already encoded
  // via ActivationLit). Restricting decisions to this set keeps per-query
  // cost tracking the current path condition, not everything the persistent
  // solver has accumulated; retired constraints' variables stay undecided.
  // The epoch stamp dedups the union without a per-query clearing pass.
  std::vector<Var> ConeUnion(const std::vector<ExprRef>& pc) {
    if (cone_stamp_.size() < static_cast<size_t>(inc_solver_.num_vars())) {
      cone_stamp_.resize(static_cast<size_t>(inc_solver_.num_vars()), 0);
    }
    ++cone_epoch_;
    std::vector<Var> decision_vars;
    for (const ExprRef c : pc) {
      for (const Var v : cones_[static_cast<size_t>(c)]) {
        if (cone_stamp_[static_cast<size_t>(v)] != cone_epoch_) {
          cone_stamp_[static_cast<size_t>(v)] = cone_epoch_;
          decision_vars.push_back(v);
        }
      }
    }
    return decision_vars;
  }

  // Projected model enumeration on the persistent solver. Same contract as
  // CountExact, but the trigger condition's encoding (already emitted for the
  // feasibility queries) is reused instead of re-blasted into a fresh solver,
  // and learned clauses carry over between enumerations. Blocking clauses are
  // gated behind a per-enumeration session literal: {~session, ~model bits},
  // assumed true while enumerating, then retired with a root-level unit
  // ~session — which permanently satisfies them, so the next learned-DB sweep
  // reclaims the dead clauses. The projection bits lie inside the trigger
  // condition's encoding cone (projection = UsedVars(trigger_pc)), so the
  // cone-restricted search decides every blocking clause.
  CountResult CountExactIncremental(const std::vector<ExprRef>& trigger_pc,
                                    const std::vector<int>& projection,
                                    uint64_t cap, uint64_t budget) {
    CountResult result;
    std::vector<Lit> assumptions;
    assumptions.reserve(trigger_pc.size() + 1);
    for (const ExprRef c : trigger_pc) {
      assumptions.push_back(ActivationLit(c));
    }
    const Var session_var = inc_solver_.NewVar();
    inc_solver_.SetPolarity(session_var, false);
    const Lit session = MakeLit(session_var, false);
    assumptions.push_back(session);
    std::vector<Var> proj_bits;
    for (const int var_id : projection) {
      const auto& bits = inc_blaster_.VarBits(var_id);
      proj_bits.insert(proj_bits.end(), bits.begin(), bits.end());
    }
    const std::vector<Var> decision_vars = ConeUnion(trigger_pc);
    // Branch on projection bits first: every blocking clause is over them,
    // so deciding them early keeps conflicts against blocked models shallow
    // (a fresh per-enumeration solver gets this ordering for free; the
    // persistent one has to be nudged past its accumulated activities).
    for (const Var bit : proj_bits) {
      inc_solver_.BoostActivity(bit);
    }
    const uint64_t conflicts_before = inc_solver_.conflicts();
    for (;;) {
      ++result.sat_calls;
      const SatResult sat = inc_solver_.Solve(assumptions, budget, &decision_vars);
      if (sat == SatResult::kUnknown) {
        result.exact = false;
        break;
      }
      if (sat == SatResult::kUnsat) {
        break;
      }
      ++result.models;
      if (result.models >= cap) {
        result.exact = false;
        break;
      }
      if (proj_bits.empty()) {
        break;  // No projection variables: the count is 0 or 1.
      }
      std::vector<Lit> blocking;
      blocking.reserve(proj_bits.size() + 1);
      blocking.push_back(Negate(session));
      for (const Var bit : proj_bits) {
        blocking.push_back(MakeLit(bit, inc_solver_.ModelValue(bit)));
      }
      // Trail-preserving add: the installed assumption prefix (the whole
      // propagated trigger condition) survives, so the next Solve resumes
      // instead of re-installing it for every enumerated model.
      inc_solver_.AddBlockingClause(std::move(blocking));
    }
    result.conflicts = inc_solver_.conflicts() - conflicts_before;
    inc_solver_.AddUnit(Negate(session));
    return result;
  }

  // Variables mentioned anywhere in `constraints`.
  std::vector<int> UsedVars(const std::vector<ExprRef>& constraints) const {
    std::vector<bool> used(static_cast<size_t>(pool_.num_vars()), false);
    std::vector<bool> visited(pool_.size(), false);
    std::vector<ExprRef> stack(constraints.begin(), constraints.end());
    while (!stack.empty()) {
      const ExprRef ref = stack.back();
      stack.pop_back();
      if (visited[static_cast<size_t>(ref)]) {
        continue;
      }
      visited[static_cast<size_t>(ref)] = true;
      const ExprNode& node = pool_.node(ref);
      if (node.op == ExprOp::kVar) {
        used[static_cast<size_t>(node.var_id)] = true;
      }
      for (const ExprRef child : {node.a, node.b, node.c}) {
        if (child != kNoExpr) {
          stack.push_back(child);
        }
      }
    }
    std::vector<int> out;
    for (size_t v = 0; v < used.size(); ++v) {
      if (used[v]) {
        out.push_back(static_cast<int>(v));
      }
    }
    return out;
  }

  // Estimated fraction of the input space satisfying `trigger_pc`.
  // Variables not mentioned by the constraints cancel between numerator and
  // denominator, so counting is projected onto the used variables only.
  double TriggerFraction(const std::vector<ExprRef>& trigger_pc,
                         const RangeRefinements& refs) {
    const std::vector<int> used = UsedVars(trigger_pc);
    if (used.empty()) {
      // Fully concrete (and known feasible): triggers on every input.
      return 1.0;
    }
    const int bits = pool_.width() * static_cast<int>(used.size());
    if (result_.solver_queries >= options_.max_solver_queries) {
      return EstimateFraction(pool_, trigger_pc, rng_, options_.exploit_sample_trials);
    }
    if (options_.range_pruning) {
      // Variable-separable trigger conditions count as a product of set
      // cardinalities, skipping model enumeration. The two outcomes mirror
      // the enumerating path exactly: an exact count below the cap returns
      // the same ldexp value without touching the RNG, and a count at or
      // over the cap returns max(sampled, ldexp(cap, -bits)) with the same
      // EstimateFraction trial consumption — so the sampling stream stays
      // aligned with reference mode across subsequent vulnerabilities.
      // (`refs` documents provenance; the decomposition re-derives the sets
      // from trigger_pc itself, which is the exact condition to count.)
      (void)refs;
      std::vector<std::pair<int32_t, support::IntervalSet>> var_sets;
      if (range_eval_.DecomposeExact(trigger_pc, var_sets)) {
        unsigned __int128 count = 1;
        bool saturated = false;
        for (const auto& vs : var_sets) {
          bool sat = false;
          const uint64_t card = vs.second.Cardinality(&sat);
          saturated = saturated || sat;
          count *= card;
          if (count > static_cast<unsigned __int128>(UINT64_MAX)) {
            saturated = true;
            count = UINT64_MAX;
          }
        }
        ++result_.range_pruned;
        if (!saturated && count < options_.exploit_exact_cap) {
          return std::ldexp(static_cast<double>(static_cast<uint64_t>(count)),
                            -bits);
        }
        const double lower_bound = std::ldexp(
            static_cast<double>(options_.exploit_exact_cap), -bits);
        const double sampled = EstimateFraction(pool_, trigger_pc, rng_,
                                                options_.exploit_sample_trials);
        return std::max(sampled, lower_bound);
      }
    }
    const CountResult counted =
        options_.incremental_solver
            ? CountExactIncremental(trigger_pc, used, options_.exploit_exact_cap,
                                    options_.solver_conflict_budget)
            : CountExact(pool_, trigger_pc, used, options_.exploit_exact_cap,
                         options_.solver_conflict_budget);
    result_.solver_queries += counted.sat_calls;
    result_.sat_conflicts += counted.conflicts;
    support::FaultInjector::Global().MaybeFail(
        support::FaultSite::kSolver,
        support::FaultKeyMix(fault_key_, result_.solver_queries),
        options_.fault_salt);
    const double lower_bound = std::ldexp(static_cast<double>(counted.models), -bits);
    if (counted.exact) {
      return lower_bound;
    }
    const double sampled =
        EstimateFraction(pool_, trigger_pc, rng_, options_.exploit_sample_trials);
    return std::max(sampled, lower_bound);
  }

  void RecordVuln(VulnKind kind, const Frame& frame, int line,
                  const std::vector<ExprRef>& trigger_pc,
                  const RangeRefinements& refs) {
    const auto key = std::make_pair(kind, std::make_pair(frame.fn->name, line));
    auto& entry = vuln_map_[key];
    ++entry.paths;
    entry.fraction = std::max(entry.fraction, TriggerFraction(trigger_pc, refs));
  }

  void FinishVulns() {
    for (const auto& [key, info] : vuln_map_) {
      VulnSite site;
      site.kind = key.first;
      site.function = key.second.first;
      site.line = key.second.second;
      site.exploit_fraction = info.fraction;
      site.paths = info.paths;
      result_.vulns.push_back(std::move(site));
    }
    std::sort(result_.vulns.begin(), result_.vulns.end(), [](const VulnSite& a,
                                                             const VulnSite& b) {
      if (a.function != b.function) {
        return a.function < b.function;
      }
      if (a.line != b.line) {
        return a.line < b.line;
      }
      return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    });
  }

  enum class StepResult { kContinue, kPathEnded };

  void RunPath(PathState state) {
    for (;;) {
      if (state.frames.empty()) {
        ++result_.paths_explored;
        ++result_.paths_completed;
        return;
      }
      if (state.steps > options_.max_steps_per_path ||
          total_steps_ > options_.max_total_steps) {
        ++result_.paths_explored;
        ++result_.paths_limited;
        if (total_steps_ > options_.max_total_steps) {
          result_.path_limit_hit = true;
        }
        return;
      }
      Frame& frame = state.frames.back();
      const lang::IrBlock& block =
          frame.fn->blocks[static_cast<size_t>(frame.block)];
      if (frame.instr_index < block.instrs.size()) {
        const lang::IrInstr& instr = block.instrs[frame.instr_index];
        ++frame.instr_index;
        ++state.steps;
        ++total_steps_;
        deadline_.TickOrThrow("symexec");
        if (ExecInstr(state, instr) == StepResult::kPathEnded) {
          return;
        }
        continue;
      }
      // Terminator. Counted as a step: blocks can be instruction-free, and
      // an empty symbolic loop must still exhaust the budget.
      ++state.steps;
      ++total_steps_;
      deadline_.TickOrThrow("symexec");
      const lang::Terminator& term = block.term;
      switch (term.kind) {
        case lang::TerminatorKind::kJump:
          frame.block = term.target_true;
          frame.instr_index = 0;
          break;
        case lang::TerminatorKind::kBranch: {
          if (HandleBranch(state, term) == StepResult::kPathEnded) {
            return;
          }
          break;
        }
        case lang::TerminatorKind::kReturn: {
          const ExprRef value =
              term.value == lang::kNoReg
                  ? pool_.Const(0)
                  : frame.regs[static_cast<size_t>(term.value)];
          const lang::RegId dst = frame.caller_dst;
          state.frames.pop_back();
          if (state.frames.empty()) {
            ++result_.paths_explored;
            ++result_.paths_completed;
            return;
          }
          if (dst != lang::kNoReg) {
            state.frames.back().regs[static_cast<size_t>(dst)] = value;
          }
          break;
        }
        case lang::TerminatorKind::kAbort:
          ++result_.paths_explored;
          ++result_.paths_aborted;
          return;
      }
    }
  }

  StepResult HandleBranch(PathState& state, const lang::Terminator& term) {
    Frame& frame = state.frames.back();
    const ExprRef cond = frame.regs[static_cast<size_t>(term.cond)];
    const ExprNode& node = pool_.node(cond);
    if (node.op == ExprOp::kConst) {
      frame.block = node.imm != 0 ? term.target_true : term.target_false;
      frame.instr_index = 0;
      return StepResult::kContinue;
    }
    const ExprRef truthy = pool_.Truthy(cond);
    const ExprRef falsy = pool_.Falsy(cond);
    std::vector<ExprRef> pc_true = state.pc;
    AddConstraint(pc_true, truthy);
    std::vector<ExprRef> pc_false = state.pc;
    AddConstraint(pc_false, falsy);
    const bool true_ok = FeasibleDelta(state.ranges, truthy, pc_true);
    const bool false_ok = FeasibleDelta(state.ranges, falsy, pc_false);
    if (true_ok && false_ok) {
      ++result_.forks;
      PathState other = state;  // Deep copy.
      other.pc = std::move(pc_false);
      other.frames.back().block = term.target_false;
      other.frames.back().instr_index = 0;
      Refine(falsy, other.ranges);
      worklist_.push_back(std::move(other));
      state.pc = std::move(pc_true);
      Refine(truthy, state.ranges);
      frame.block = term.target_true;
      frame.instr_index = 0;
      return StepResult::kContinue;
    }
    if (true_ok || false_ok) {
      state.pc = true_ok ? std::move(pc_true) : std::move(pc_false);
      Refine(true_ok ? truthy : falsy, state.ranges);
      frame.block = true_ok ? term.target_true : term.target_false;
      frame.instr_index = 0;
      return StepResult::kContinue;
    }
    // Both infeasible: contradictory path condition (can happen after an
    // over-approximating fresh variable was constrained both ways).
    ++result_.paths_explored;
    ++result_.paths_infeasible_assume;
    return StepResult::kPathEnded;
  }

  // Returns the storage and size for an array access instruction.
  std::vector<ExprRef>* ArrayStorage(PathState& state, Frame& frame,
                                     const lang::IrInstr& instr, int64_t& size) {
    if (instr.array >= 0) {
      size = frame.fn->arrays[static_cast<size_t>(instr.array)].size;
      return &frame.arrays[static_cast<size_t>(instr.array)];
    }
    size = module_.globals[static_cast<size_t>(instr.global)].array_size;
    return &state.global_arrays[static_cast<size_t>(instr.global)];
  }

  StepResult ExecInstr(PathState& state, const lang::IrInstr& instr) {
    Frame& frame = state.frames.back();
    auto reg = [&frame](lang::RegId r) { return frame.regs[static_cast<size_t>(r)]; };
    auto set = [&frame](lang::RegId r, ExprRef v) {
      frame.regs[static_cast<size_t>(r)] = v;
    };
    switch (instr.op) {
      case lang::IrOpcode::kConst:
        set(instr.dst, pool_.Const(instr.imm));
        return StepResult::kContinue;
      case lang::IrOpcode::kCopy:
        set(instr.dst, reg(instr.a));
        return StepResult::kContinue;
      case lang::IrOpcode::kUnOp:
        set(instr.dst, pool_.FromUnaryOp(instr.unary_op, reg(instr.a)));
        return StepResult::kContinue;
      case lang::IrOpcode::kBinOp: {
        if (instr.binary_op == lang::BinaryOp::kDiv ||
            instr.binary_op == lang::BinaryOp::kRem) {
          return ExecDivision(state, instr);
        }
        bool made_fresh;
        set(instr.dst, Bounded(pool_.FromBinaryOp(instr.binary_op, reg(instr.a),
                                                  reg(instr.b), made_fresh)));
        return StepResult::kContinue;
      }
      case lang::IrOpcode::kLoadGlobal:
        set(instr.dst, state.globals[static_cast<size_t>(instr.global)]);
        return StepResult::kContinue;
      case lang::IrOpcode::kStoreGlobal:
        state.globals[static_cast<size_t>(instr.global)] = reg(instr.a);
        return StepResult::kContinue;
      case lang::IrOpcode::kArrayLoad:
      case lang::IrOpcode::kArrayStore:
        return ExecArrayAccess(state, instr);
      case lang::IrOpcode::kCall:
        return ExecCall(state, instr);
      case lang::IrOpcode::kInput:
        set(instr.dst, NewInputVar(support::Format("in%d", result_.symbolic_inputs)));
        return StepResult::kContinue;
      case lang::IrOpcode::kOutput:
        return StepResult::kContinue;
      case lang::IrOpcode::kAssume: {
        const ExprRef cond = reg(instr.a);
        const ExprNode& node = pool_.node(cond);
        if (node.op == ExprOp::kConst) {
          if (node.imm != 0) {
            return StepResult::kContinue;
          }
          ++result_.paths_explored;
          ++result_.paths_infeasible_assume;
          return StepResult::kPathEnded;
        }
        const ExprRef assumed = pool_.Truthy(cond);
        AddConstraint(state.pc, assumed);
        const bool live = FeasibleDelta(state.ranges, assumed, state.pc);
        Refine(assumed, state.ranges);
        if (!live) {
          ++result_.paths_explored;
          ++result_.paths_infeasible_assume;
          return StepResult::kPathEnded;
        }
        return StepResult::kContinue;
      }
    }
    return StepResult::kContinue;
  }

  StepResult ExecDivision(PathState& state, const lang::IrInstr& instr) {
    Frame& frame = state.frames.back();
    const ExprRef a = frame.regs[static_cast<size_t>(instr.a)];
    const ExprRef b = frame.regs[static_cast<size_t>(instr.b)];
    const ExprNode& divisor = pool_.node(b);
    if (divisor.op == ExprOp::kConst) {
      if (divisor.imm == 0) {
        // Unconditional division by zero on this path.
        RecordVuln(VulnKind::kDivByZero, frame, instr.line, state.pc,
                   state.ranges);
        ++result_.paths_explored;
        ++result_.paths_faulted;
        return StepResult::kPathEnded;
      }
      bool made_fresh;
      frame.regs[static_cast<size_t>(instr.dst)] =
          pool_.FromBinaryOp(instr.binary_op, a, b, made_fresh);
      return StepResult::kContinue;
    }
    // Symbolic divisor: is zero reachable?
    const ExprRef zero = pool_.Binary(ExprOp::kEq, b, pool_.Const(0));
    std::vector<ExprRef> zero_pc = state.pc;
    AddConstraint(zero_pc, zero);
    if (FeasibleDelta(state.ranges, zero, zero_pc)) {
      RangeRefinements zero_refs = state.ranges;
      Refine(zero, zero_refs);
      RecordVuln(VulnKind::kDivByZero, frame, instr.line, zero_pc, zero_refs);
    }
    // Continue on the non-zero side.
    const ExprRef nonzero = pool_.Binary(ExprOp::kNe, b, pool_.Const(0));
    AddConstraint(state.pc, nonzero);
    const bool live = FeasibleDelta(state.ranges, nonzero, state.pc);
    Refine(nonzero, state.ranges);
    if (!live) {
      ++result_.paths_explored;
      ++result_.paths_faulted;
      return StepResult::kPathEnded;
    }
    bool made_fresh;
    frame.regs[static_cast<size_t>(instr.dst)] =
        pool_.FromBinaryOp(instr.binary_op, a, b, made_fresh);
    return StepResult::kContinue;
  }

  StepResult ExecArrayAccess(PathState& state, const lang::IrInstr& instr) {
    Frame& frame = state.frames.back();
    int64_t size = 0;
    std::vector<ExprRef>* storage = ArrayStorage(state, frame, instr, size);
    const ExprRef index = frame.regs[static_cast<size_t>(instr.a)];
    const ExprNode& index_node = pool_.node(index);
    if (index_node.op == ExprOp::kConst) {
      if (index_node.imm < 0 || index_node.imm >= size) {
        RecordVuln(VulnKind::kOutOfBounds, frame, instr.line, state.pc,
                   state.ranges);
        ++result_.paths_explored;
        ++result_.paths_faulted;
        return StepResult::kPathEnded;
      }
      const auto i = static_cast<size_t>(index_node.imm);
      if (instr.op == lang::IrOpcode::kArrayLoad) {
        frame.regs[static_cast<size_t>(instr.dst)] = (*storage)[i];
      } else {
        (*storage)[i] = frame.regs[static_cast<size_t>(instr.b)];
      }
      return StepResult::kContinue;
    }
    // Symbolic index: first, is an out-of-bounds access reachable?
    const ExprRef below = pool_.Binary(ExprOp::kSlt, index, pool_.Const(0));
    const ExprRef above = pool_.Binary(ExprOp::kSle, pool_.Const(size), index);
    const ExprRef oob = pool_.Binary(ExprOp::kOr, below, above);
    std::vector<ExprRef> oob_pc = state.pc;
    AddConstraint(oob_pc, oob);
    if (FeasibleDelta(state.ranges, oob, oob_pc)) {
      RangeRefinements oob_refs = state.ranges;
      Refine(oob, oob_refs);
      RecordVuln(VulnKind::kOutOfBounds, frame, instr.line, oob_pc, oob_refs);
    }
    // Continue in-bounds.
    const ExprRef in_bounds = pool_.Falsy(oob);
    AddConstraint(state.pc, in_bounds);
    const bool live = FeasibleDelta(state.ranges, in_bounds, state.pc);
    Refine(in_bounds, state.ranges);
    if (!live) {
      ++result_.paths_explored;
      ++result_.paths_faulted;
      return StepResult::kPathEnded;
    }
    if (size > options_.max_symbolic_array) {
      // Too wide to expand: havoc.
      if (instr.op == lang::IrOpcode::kArrayLoad) {
        frame.regs[static_cast<size_t>(instr.dst)] = pool_.FreshVar("wide_load");
      } else {
        for (auto& cell : *storage) {
          cell = pool_.FreshVar("wide_store");
        }
      }
      return StepResult::kContinue;
    }
    if (instr.op == lang::IrOpcode::kArrayLoad) {
      // ITE chain over the cells.
      ExprRef value = (*storage)[static_cast<size_t>(size - 1)];
      for (int64_t i = size - 2; i >= 0; --i) {
        const ExprRef is_i = pool_.Binary(ExprOp::kEq, index, pool_.Const(i));
        value = pool_.Ite(is_i, (*storage)[static_cast<size_t>(i)], value);
      }
      frame.regs[static_cast<size_t>(instr.dst)] = Bounded(value);
    } else {
      const ExprRef value = frame.regs[static_cast<size_t>(instr.b)];
      for (int64_t i = 0; i < size; ++i) {
        const ExprRef is_i = pool_.Binary(ExprOp::kEq, index, pool_.Const(i));
        (*storage)[static_cast<size_t>(i)] =
            pool_.Ite(is_i, value, (*storage)[static_cast<size_t>(i)]);
      }
    }
    return StepResult::kContinue;
  }

  StepResult ExecCall(PathState& state, const lang::IrInstr& instr) {
    Frame& frame = state.frames.back();
    const lang::IrFunction* callee = module_.FindFunction(instr.callee);
    if (callee == nullptr ||
        state.frames.size() >= static_cast<size_t>(options_.max_call_depth)) {
      // External or too deep: havoc the result.
      if (instr.dst != lang::kNoReg) {
        frame.regs[static_cast<size_t>(instr.dst)] = pool_.FreshVar("call_" + instr.callee);
      }
      return StepResult::kContinue;
    }
    Frame new_frame = MakeFrame(*callee, /*symbolic_params=*/false);
    for (size_t i = 0; i < callee->param_regs.size(); ++i) {
      const ExprRef arg = i < instr.args.size()
                              ? frame.regs[static_cast<size_t>(instr.args[i])]
                              : pool_.Const(0);
      new_frame.regs[static_cast<size_t>(callee->param_regs[i])] = arg;
    }
    new_frame.caller_dst = instr.dst;
    state.frames.push_back(std::move(new_frame));
    return StepResult::kContinue;
  }

  struct VulnInfo {
    double fraction = 0.0;
    uint64_t paths = 0;
  };

  static constexpr size_t kModelCacheSize = 8;

  const lang::IrModule& module_;
  SymExecOptions options_;
  ExprPool pool_;
  support::Rng rng_;
  RangeEvaluator range_eval_;
  // Persistent SAT instance for incremental mode: one solver + blaster for
  // the whole exploration, with per-constraint activation literals
  // (activation_[ref] == -1 until the constraint is first encoded). The
  // solver is leased from the thread's recycled session when
  // options.reuse_solver_session allows (leased_session_), otherwise owned.
  // Declaration order matters: owned_solver_/leased_session_ must initialize
  // before the inc_solver_ reference that AcquireSolver binds.
  bool leased_session_ = false;
  std::unique_ptr<SatSolver> owned_solver_;
  SatSolver& inc_solver_;
  BitBlaster inc_blaster_;
  std::vector<Lit> activation_;
  // Per-constraint decision cones (indexed like activation_) and the
  // epoch-stamped scratch used to union them per query.
  std::vector<std::vector<Var>> cones_;
  std::vector<uint32_t> cone_stamp_;
  uint32_t cone_epoch_ = 0;
  uint64_t total_steps_ = 0;
  support::Deadline deadline_;   // Per-exploration cooperative watchdog.
  uint64_t fault_key_ = 0;       // Module×entry key for solver-query faults.
  std::vector<std::vector<int64_t>> model_cache_;
  size_t model_cache_next_ = 0;  // Next ring-buffer slot to overwrite.
  SymExecResult result_;
  std::vector<PathState> worklist_;
  std::map<std::pair<VulnKind, std::pair<std::string, int>>, VulnInfo> vuln_map_;
};

}  // namespace

SymExecResult Explore(const lang::IrModule& module, const std::string& entry,
                      const SymExecOptions& options) {
  return Explorer(module, options).Run(entry);
}

uint64_t SolverSessionReuseCount() {
  return g_solver_session_reuses.load(std::memory_order_relaxed);
}

metrics::FeatureVector SymexFeatures(const lang::IrModule& module,
                                     const SymExecOptions& options) {
  metrics::FeatureVector fv;
  std::vector<std::string> entries;
  if (module.FindFunction("main") != nullptr) {
    entries.push_back("main");
  } else {
    const metrics::CallGraph graph(module);
    entries = graph.Roots();
  }
  const size_t max_entries =
      options.max_entries > 0 ? static_cast<size_t>(options.max_entries) : entries.size();
  if (entries.size() > max_entries) {
    entries.resize(max_entries);
  }
  uint64_t paths = 0;
  uint64_t completed = 0;
  uint64_t vuln_sites = 0;
  uint64_t oob_sites = 0;
  uint64_t div_sites = 0;
  uint64_t queries = 0;
  uint64_t pruned = 0;
  uint64_t conflicts = 0;
  uint64_t reuse_hits = 0;
  uint64_t folds = 0;
  double max_fraction = 0.0;
  double sum_fraction = 0.0;
  // Entry explorations are independent (each builds its own pool, solver,
  // and RNG), so they fan out on the global pool. Per-entry Rng::TaskSeed
  // streams keep every entry's sampling independent of sibling count and
  // scheduling; aggregation below runs in index order, so the features are
  // bit-identical at any CLAIR_THREADS value.
  const std::vector<SymExecResult> results = support::ParallelMap<SymExecResult>(
      entries.size(), [&](size_t i) {
        SymExecOptions entry_options = options;
        entry_options.rng_seed =
            support::Rng::TaskSeed(options.rng_seed, static_cast<uint64_t>(i));
        return Explore(module, entries[i], entry_options);
      });
  for (const SymExecResult& result : results) {
    paths += result.paths_explored;
    completed += result.paths_completed;
    vuln_sites += result.vulns.size();
    queries += result.solver_queries;
    pruned += result.range_pruned;
    conflicts += result.sat_conflicts;
    reuse_hits += result.model_reuse_hits;
    folds += result.simplifier_folds;
    for (const auto& vuln : result.vulns) {
      if (vuln.kind == VulnKind::kOutOfBounds) {
        ++oob_sites;
      } else {
        ++div_sites;
      }
      max_fraction = std::max(max_fraction, vuln.exploit_fraction);
      sum_fraction += vuln.exploit_fraction;
    }
  }
  fv.Set("symx.entries", static_cast<double>(entries.size()));
  fv.Set("symx.paths", static_cast<double>(paths));
  fv.Set("symx.paths_completed", static_cast<double>(completed));
  fv.Set("symx.vuln_sites", static_cast<double>(vuln_sites));
  fv.Set("symx.oob_sites", static_cast<double>(oob_sites));
  fv.Set("symx.divzero_sites", static_cast<double>(div_sites));
  fv.Set("symx.solver_queries", static_cast<double>(queries));
  fv.Set("symx.range_pruned", static_cast<double>(pruned));
  // Fraction of feasibility decisions the range domain settled without a SAT
  // query. 0 when pruning is disabled or nothing was decidable.
  fv.Set("symx.range_prune_rate",
         static_cast<double>(pruned) /
             static_cast<double>(std::max<uint64_t>(1, pruned + queries)));
  fv.Set("symx.sat_conflicts", static_cast<double>(conflicts));
  fv.Set("symx.model_reuse_hits", static_cast<double>(reuse_hits));
  fv.Set("symx.simplifier_folds", static_cast<double>(folds));
  fv.Set("symx.max_exploit_fraction", max_fraction);
  fv.Set("symx.sum_exploit_fraction", sum_fraction);
  return fv;
}

}  // namespace symx
