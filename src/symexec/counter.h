// Model counting over path conditions (§4.1: "calculate the number of
// different execution paths ... triggered by specific ranges of inputs").
//
// Two counters are provided:
//   - CountExact: projected #SAT by model enumeration with blocking clauses.
//     Exact up to `cap` models; intended for narrow bit-widths.
//   - EstimateFraction: Monte-Carlo estimate of the fraction of the input
//     space satisfying the constraints, by direct concrete evaluation (no
//     SAT calls). Cheap and unbiased when no existentially-quantified fresh
//     variables appear; with them it is a lower-bound-leaning estimate.
#ifndef SRC_SYMEXEC_COUNTER_H_
#define SRC_SYMEXEC_COUNTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/support/rng.h"
#include "src/symexec/expr.h"

namespace symx {

struct CountResult {
  uint64_t models = 0;   // Distinct projected assignments found.
  bool exact = true;     // False if the cap stopped enumeration.
  uint64_t sat_calls = 0;
  uint64_t conflicts = 0;  // CDCL conflicts spent across the enumeration.
};

// Exact projected model count of (AND of `constraints`, each truthy) over the
// variables in `projection` (variable ids from the pool). Stops after `cap`
// models.
CountResult CountExact(const ExprPool& pool, std::span<const ExprRef> constraints,
                       const std::vector<int>& projection, uint64_t cap,
                       uint64_t solver_conflict_budget = 0);

// Satisfiability of (AND of `constraints`). `budget_exceeded` (optional) is
// set when the conflict budget made the answer "unknown" — the caller should
// treat that as satisfiable for soundness of exploration.
bool IsSatisfiable(const ExprPool& pool, std::span<const ExprRef> constraints,
                   uint64_t solver_conflict_budget = 0, bool* budget_exceeded = nullptr);

// Monte-Carlo fraction of assignments to ALL pool variables satisfying the
// conjunction. Deterministic given `rng`.
double EstimateFraction(const ExprPool& pool, std::span<const ExprRef> constraints,
                        support::Rng& rng, int trials);

}  // namespace symx

#endif  // SRC_SYMEXEC_COUNTER_H_
