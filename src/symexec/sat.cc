#include "src/symexec/sat.h"

#include <algorithm>
#include <cmath>

namespace symx {
namespace {

// Luby restart sequence scaled by `unit`.
uint64_t Luby(uint64_t i) {
  // Find the finite subsequence containing i, then recurse.
  uint64_t k = 1;
  while ((1ULL << (k + 1)) - 1 < i + 1) {
    ++k;
  }
  while (true) {
    if ((1ULL << k) - 1 == i + 1) {
      return 1ULL << (k - 1);
    }
    i = i + 1 - (1ULL << (k - 1)) - 1;
    k = 1;
    while ((1ULL << (k + 1)) - 1 < i + 1) {
      ++k;
    }
  }
}

}  // namespace

Var SatSolver::NewVar() {
  const Var var = static_cast<Var>(assign_.size());
  assign_.push_back(kUndef);
  level_.push_back(0);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  seen_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  return var;
}

void SatSolver::AddClause(std::vector<Lit> clause) {
  // Clauses are added at decision level 0, so the current assignment is
  // permanent: satisfied clauses can be dropped and false literals removed.
  Backtrack(0);
  size_t keep = 0;
  for (const Lit lit : clause) {
    const int8_t v = Value(lit);
    if (v == kTrue) {
      return;  // Permanently satisfied.
    }
    if (v == kUndef) {
      clause[keep++] = lit;
    }
  }
  clause.resize(keep);
  // Simplify: drop duplicate literals; detect tautologies.
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  for (size_t i = 0; i + 1 < clause.size(); ++i) {
    if (clause[i] == Negate(clause[i + 1])) {
      return;  // Tautology — always satisfied.
    }
  }
  if (clause.empty()) {
    trivially_unsat_ = true;
    return;
  }
  if (clause.size() == 1) {
    // Root-level unit: enqueue directly at level 0.
    const Lit lit = clause[0];
    if (Value(lit) == kFalse) {
      trivially_unsat_ = true;
      return;
    }
    if (Value(lit) == kUndef) {
      Enqueue(lit, -1);
      if (Propagate() != -1) {
        trivially_unsat_ = true;
      }
    }
    return;
  }
  clauses_.push_back({std::move(clause), false});
  AttachClause(static_cast<int>(clauses_.size() - 1));
}

void SatSolver::AttachClause(int clause_index) {
  const auto& lits = clauses_[static_cast<size_t>(clause_index)].lits;
  watches_[static_cast<size_t>(lits[0])].push_back(clause_index);
  watches_[static_cast<size_t>(lits[1])].push_back(clause_index);
}

void SatSolver::Enqueue(Lit lit, int reason) {
  const Var var = LitVar(lit);
  assign_[static_cast<size_t>(var)] = LitNegated(lit) ? kFalse : kTrue;
  level_[static_cast<size_t>(var)] = static_cast<int>(trail_lim_.size());
  reason_[static_cast<size_t>(var)] = reason;
  trail_.push_back(lit);
}

int SatSolver::Propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit lit = trail_[propagate_head_++];
    ++stats_propagations_;
    // Clauses watching ~lit must find a new watch or propagate/conflict.
    const Lit false_lit = Negate(lit);
    auto& watch_list = watches_[static_cast<size_t>(false_lit)];
    size_t keep = 0;
    for (size_t i = 0; i < watch_list.size(); ++i) {
      const int ci = watch_list[i];
      auto& lits = clauses_[static_cast<size_t>(ci)].lits;
      // Normalise: watched literal in position 1.
      if (lits[0] == false_lit) {
        std::swap(lits[0], lits[1]);
      }
      if (Value(lits[0]) == kTrue) {
        watch_list[keep++] = ci;  // Clause satisfied; keep watch.
        continue;
      }
      // Look for a replacement watch.
      bool found = false;
      for (size_t k = 2; k < lits.size(); ++k) {
        if (Value(lits[k]) != kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[static_cast<size_t>(lits[1])].push_back(ci);
          found = true;
          break;
        }
      }
      if (found) {
        continue;  // Watch moved; drop from this list.
      }
      // Unit or conflict.
      watch_list[keep++] = ci;
      if (Value(lits[0]) == kFalse) {
        // Conflict: restore remaining watches and report.
        for (size_t j = i + 1; j < watch_list.size(); ++j) {
          watch_list[keep++] = watch_list[j];
        }
        watch_list.resize(keep);
        propagate_head_ = trail_.size();
        return ci;
      }
      Enqueue(lits[0], ci);
    }
    watch_list.resize(keep);
  }
  return -1;
}

void SatSolver::BumpVar(Var var) {
  activity_[static_cast<size_t>(var)] += activity_inc_;
  if (activity_[static_cast<size_t>(var)] > 1e100) {
    for (double& a : activity_) {
      a *= 1e-100;
    }
    activity_inc_ *= 1e-100;
  }
}

void SatSolver::DecayActivities() { activity_inc_ /= 0.95; }

void SatSolver::Analyze(int conflict_clause, std::vector<Lit>& learnt, int& backtrack_level) {
  learnt.clear();
  learnt.push_back(0);  // Placeholder for the asserting literal.
  int counter = 0;
  Lit p = -1;
  int index = static_cast<int>(trail_.size()) - 1;
  const int current_level = static_cast<int>(trail_lim_.size());
  int ci = conflict_clause;
  do {
    const auto& lits = clauses_[static_cast<size_t>(ci)].lits;
    // Skip lits[0] on iterations after the first (it is `p` itself).
    for (size_t k = (p == -1 ? 0 : 1); k < lits.size(); ++k) {
      const Lit q = lits[k];
      const Var v = LitVar(q);
      if (!seen_[static_cast<size_t>(v)] && level_[static_cast<size_t>(v)] > 0) {
        seen_[static_cast<size_t>(v)] = true;
        BumpVar(v);
        if (level_[static_cast<size_t>(v)] == current_level) {
          ++counter;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Find the next seen literal on the trail.
    while (!seen_[static_cast<size_t>(LitVar(trail_[static_cast<size_t>(index)]))]) {
      --index;
    }
    p = trail_[static_cast<size_t>(index)];
    ci = reason_[static_cast<size_t>(LitVar(p))];
    seen_[static_cast<size_t>(LitVar(p))] = false;
    --counter;
    --index;
  } while (counter > 0);
  learnt[0] = Negate(p);

  // Compute backtrack level (second-highest level in the clause).
  backtrack_level = 0;
  for (size_t k = 1; k < learnt.size(); ++k) {
    backtrack_level = std::max(backtrack_level,
                               level_[static_cast<size_t>(LitVar(learnt[k]))]);
  }
  // Move a literal of backtrack_level into position 1 for watching.
  for (size_t k = 1; k < learnt.size(); ++k) {
    if (level_[static_cast<size_t>(LitVar(learnt[k]))] == backtrack_level) {
      std::swap(learnt[1], learnt[k]);
      break;
    }
  }
  for (const Lit q : learnt) {
    seen_[static_cast<size_t>(LitVar(q))] = false;
  }
}

void SatSolver::Backtrack(int target_level) {
  if (static_cast<int>(trail_lim_.size()) <= target_level) {
    return;
  }
  const size_t bound = static_cast<size_t>(trail_lim_[static_cast<size_t>(target_level)]);
  for (size_t i = trail_.size(); i-- > bound;) {
    const Var var = LitVar(trail_[i]);
    assign_[static_cast<size_t>(var)] = kUndef;
    reason_[static_cast<size_t>(var)] = -1;
  }
  trail_.resize(bound);
  trail_lim_.resize(static_cast<size_t>(target_level));
  propagate_head_ = trail_.size();
}

Lit SatSolver::PickBranchLit() {
  Var best = -1;
  double best_activity = -1.0;
  for (Var v = 0; v < num_vars(); ++v) {
    if (assign_[static_cast<size_t>(v)] == kUndef && activity_[static_cast<size_t>(v)] >
                                                         best_activity) {
      best = v;
      best_activity = activity_[static_cast<size_t>(v)];
    }
  }
  if (best == -1) {
    return -1;
  }
  // Positive-first polarity: callers upstream (the symbolic executor's
  // solution cache) benefit from models with large variable values, which
  // stay valid across loop iterations.
  return MakeLit(best, false);
}

SatResult SatSolver::Solve(const std::vector<Lit>& assumptions, uint64_t max_conflicts) {
  if (trivially_unsat_) {
    return SatResult::kUnsat;
  }
  Backtrack(0);
  if (Propagate() != -1) {
    trivially_unsat_ = true;
    return SatResult::kUnsat;
  }
  // Install assumptions, each on its own decision level.
  for (const Lit a : assumptions) {
    if (Value(a) == kTrue) {
      continue;
    }
    if (Value(a) == kFalse) {
      Backtrack(0);
      return SatResult::kUnsat;
    }
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    Enqueue(a, -1);
    if (Propagate() != -1) {
      Backtrack(0);
      return SatResult::kUnsat;
    }
  }
  const int assumption_level = static_cast<int>(trail_lim_.size());

  uint64_t conflicts_local = 0;
  uint64_t restart_count = 0;
  uint64_t restart_budget = 32 * Luby(restart_count);
  std::vector<Lit> learnt;
  for (;;) {
    const int conflict = Propagate();
    if (conflict != -1) {
      ++stats_conflicts_;
      ++conflicts_local;
      if (static_cast<int>(trail_lim_.size()) <= assumption_level) {
        Backtrack(0);
        return SatResult::kUnsat;
      }
      if (max_conflicts != 0 && conflicts_local > max_conflicts) {
        Backtrack(0);
        return SatResult::kUnknown;
      }
      int backtrack_level;
      Analyze(conflict, learnt, backtrack_level);
      backtrack_level = std::max(backtrack_level, assumption_level);
      Backtrack(backtrack_level);
      if (learnt.size() == 1) {
        Enqueue(learnt[0], -1);
      } else {
        clauses_.push_back({learnt, true});
        AttachClause(static_cast<int>(clauses_.size() - 1));
        Enqueue(learnt[0], static_cast<int>(clauses_.size() - 1));
      }
      DecayActivities();
      if (conflicts_local >= restart_budget) {
        ++restart_count;
        restart_budget = conflicts_local + 32 * Luby(restart_count);
        Backtrack(assumption_level);
      }
      continue;
    }
    const Lit branch = PickBranchLit();
    if (branch == -1) {
      // Full assignment: record the model.
      model_.assign(static_cast<size_t>(num_vars()), false);
      for (Var v = 0; v < num_vars(); ++v) {
        model_[static_cast<size_t>(v)] = assign_[static_cast<size_t>(v)] == kTrue;
      }
      Backtrack(0);
      return SatResult::kSat;
    }
    ++stats_decisions_;
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    Enqueue(branch, -1);
  }
}

}  // namespace symx
