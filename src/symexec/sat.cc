#include "src/symexec/sat.h"

#include <algorithm>
#include <cmath>

namespace symx {
namespace {

// Luby restart sequence scaled by `unit`.
uint64_t Luby(uint64_t i) {
  // Find the finite subsequence containing i, then recurse.
  uint64_t k = 1;
  while ((1ULL << (k + 1)) - 1 < i + 1) {
    ++k;
  }
  while (true) {
    if ((1ULL << k) - 1 == i + 1) {
      return 1ULL << (k - 1);
    }
    i = i + 1 - (1ULL << (k - 1)) - 1;
    k = 1;
    while ((1ULL << (k + 1)) - 1 < i + 1) {
      ++k;
    }
  }
}

}  // namespace

Var SatSolver::NewVar() {
  const Var var = static_cast<Var>(assign_.size());
  assign_.push_back(kUndef);
  level_.push_back(0);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  polarity_.push_back(true);
  seen_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  order_.index.push_back(-1);
  query_order_.index.push_back(-1);
  decision_stamp_.push_back(0);
  return var;
}

void SatSolver::Reset() {
  // clear() keeps each vector's capacity, so a recycled solver re-grows into
  // memory it already owns. Every member that NewVar/AddClause/Solve mutate
  // must be restored to its constructed value here — a missed field would
  // leak state between queued explorations and break bit-identity with a
  // fresh solver.
  clauses_.clear();
  watches_.clear();
  assign_.clear();
  level_.clear();
  reason_.clear();
  trail_.clear();
  trail_lim_.clear();
  installed_.clear();
  propagate_head_ = 0;
  activity_.clear();
  order_.heap.clear();
  order_.index.clear();
  query_order_.heap.clear();
  query_order_.index.clear();
  decision_stamp_.clear();
  decision_epoch_ = 0;
  restricted_ = false;
  solving_ = false;
  polarity_.clear();
  activity_inc_ = 1.0;
  max_activity_ = 0.0;
  model_.clear();
  seen_.clear();
  trivially_unsat_ = false;
  num_learnt_ = 0;
  learnt_limit_ = 2048;
  stats_conflicts_ = 0;
  stats_decisions_ = 0;
  stats_propagations_ = 0;
}

void SatSolver::HeapBuild(VarOrderHeap& h, std::vector<Var> vars) {
  for (const Var v : h.heap) {
    h.index[static_cast<size_t>(v)] = -1;
  }
  h.heap = std::move(vars);
  for (size_t i = 0; i < h.heap.size(); ++i) {
    h.index[static_cast<size_t>(h.heap[i])] = static_cast<int>(i);
  }
  // Bottom-up heapify: O(n), cheaper than n inserts.
  for (size_t i = h.heap.size() / 2; i-- > 0;) {
    HeapSiftDown(h, i);
  }
}

void SatSolver::HeapSiftUp(VarOrderHeap& h, size_t i) {
  const Var var = h.heap[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!HeapLess(h.heap[parent], var)) {
      break;
    }
    h.heap[i] = h.heap[parent];
    h.index[static_cast<size_t>(h.heap[i])] = static_cast<int>(i);
    i = parent;
  }
  h.heap[i] = var;
  h.index[static_cast<size_t>(var)] = static_cast<int>(i);
}

void SatSolver::HeapSiftDown(VarOrderHeap& h, size_t i) {
  const Var var = h.heap[i];
  const size_t n = h.heap.size();
  for (;;) {
    size_t child = 2 * i + 1;
    if (child >= n) {
      break;
    }
    if (child + 1 < n && HeapLess(h.heap[child], h.heap[child + 1])) {
      ++child;
    }
    if (!HeapLess(var, h.heap[child])) {
      break;
    }
    h.heap[i] = h.heap[child];
    h.index[static_cast<size_t>(h.heap[i])] = static_cast<int>(i);
    i = child;
  }
  h.heap[i] = var;
  h.index[static_cast<size_t>(var)] = static_cast<int>(i);
}

void SatSolver::HeapInsert(VarOrderHeap& h, Var var) {
  if (h.index[static_cast<size_t>(var)] != -1) {
    return;
  }
  h.heap.push_back(var);
  HeapSiftUp(h, h.heap.size() - 1);
}

Var SatSolver::HeapPopMax(VarOrderHeap& h) {
  const Var top = h.heap[0];
  h.index[static_cast<size_t>(top)] = -1;
  const Var last = h.heap.back();
  h.heap.pop_back();
  if (!h.heap.empty()) {
    h.heap[0] = last;
    h.index[static_cast<size_t>(last)] = 0;
    HeapSiftDown(h, 0);
  }
  return top;
}

void SatSolver::AddClause(std::vector<Lit> clause) {
  // Clauses are added at decision level 0, so the current assignment is
  // permanent: satisfied clauses can be dropped and false literals removed.
  // This drops any assumption levels kept from the previous Solve call.
  Backtrack(0);
  installed_.clear();
  size_t keep = 0;
  for (const Lit lit : clause) {
    const int8_t v = Value(lit);
    if (v == kTrue) {
      return;  // Permanently satisfied.
    }
    if (v == kUndef) {
      clause[keep++] = lit;
    }
  }
  clause.resize(keep);
  // Simplify: drop duplicate literals; detect tautologies.
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  for (size_t i = 0; i + 1 < clause.size(); ++i) {
    if (clause[i] == Negate(clause[i + 1])) {
      return;  // Tautology — always satisfied.
    }
  }
  if (clause.empty()) {
    trivially_unsat_ = true;
    return;
  }
  if (clause.size() == 1) {
    // Root-level unit: enqueue directly at level 0.
    const Lit lit = clause[0];
    if (Value(lit) == kFalse) {
      trivially_unsat_ = true;
      return;
    }
    if (Value(lit) == kUndef) {
      Enqueue(lit, -1);
      if (Propagate() != -1) {
        trivially_unsat_ = true;
      }
    }
    return;
  }
  // Watch the two HIGHEST literals (descending order): for the executor's
  // activation clauses {~act, bits...} those are the constraint's own newest
  // gate variables rather than input-variable bits shared by every other
  // constraint's cone, so unrelated queries never walk this clause's watches.
  std::reverse(clause.begin(), clause.end());
  clauses_.push_back({std::move(clause), false});
  AttachClause(static_cast<int>(clauses_.size() - 1));
}

void SatSolver::AddBlockingClause(std::vector<Lit> clause) {
  // Simplify against permanent (root-level) facts only — deeper assignments
  // are transient.
  size_t keep = 0;
  for (const Lit lit : clause) {
    const Var v = LitVar(lit);
    if (assign_[static_cast<size_t>(v)] != kUndef && level_[static_cast<size_t>(v)] == 0) {
      if (Value(lit) == kTrue) {
        return;  // Permanently satisfied.
      }
      continue;  // Permanently false.
    }
    clause[keep++] = lit;
  }
  clause.resize(keep);
  // Backjump instead of rewinding to the assumption prefix: keep every trail
  // level that leaves the clause with at least one non-false literal. Called
  // right after a kSat (all literals false), this unwinds just past the
  // deepest decision the blocked model depended on, so the next Solve with
  // the same assumptions RESUMES the search mid-trail instead of re-deciding
  // the whole cone for every enumerated model.
  int lmax = 0;
  int lsecond = 0;
  int at_max = 0;
  for (const Lit lit : clause) {
    if (Value(lit) != kFalse) {
      continue;
    }
    const int l = level_[static_cast<size_t>(LitVar(lit))];
    if (l > lmax) {
      lsecond = lmax;
      lmax = l;
      at_max = 1;
    } else if (l == lmax) {
      ++at_max;
    } else {
      lsecond = std::max(lsecond, l);
    }
  }
  // One literal at the deepest level: unwind to the second-deepest and the
  // clause becomes unit there. Several: unwind one level below the deepest
  // (they all unassign together). Never disturb the assumption levels.
  int target = at_max <= 1 ? lsecond : std::max(lmax - 1, 0);
  target = std::max(target, static_cast<int>(installed_.size()));
  Backtrack(target);
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  for (size_t i = 0; i + 1 < clause.size(); ++i) {
    if (clause[i] == Negate(clause[i + 1])) {
      return;  // Tautology.
    }
  }
  if (clause.size() <= 1) {
    // Degenerate (empty or root-unit): the prefix is not worth preserving —
    // reuse AddClause's root-level handling.
    Backtrack(0);
    installed_.clear();
    AddClause(std::move(clause));
    return;
  }
  // Watch two literals that are not false under the kept prefix (partition
  // non-false literals to the front). Watching a false literal would let its
  // already-happened falsification go unnoticed.
  size_t non_false = 0;
  for (size_t i = 0; i < clause.size(); ++i) {
    if (Value(clause[i]) != kFalse) {
      std::swap(clause[non_false++], clause[i]);
    }
  }
  if (non_false == 0) {
    // Conflicts with the assumption prefix itself: give up the prefix. After
    // Backtrack(0) every remaining literal is unassigned, so a normal attach
    // is valid and the next Solve discovers the (now-unsuppressed) conflict.
    Backtrack(0);
    installed_.clear();
    clauses_.push_back({std::move(clause), false});
    AttachClause(static_cast<int>(clauses_.size() - 1));
    return;
  }
  clauses_.push_back({std::move(clause), false});
  const int ci = static_cast<int>(clauses_.size() - 1);
  AttachClause(ci);
  if (non_false == 1) {
    // Unit under the prefix: propagate now so the next Solve resumes from a
    // fixpoint. A conflict here means the prefix is exhausted — fall back to
    // root and let the next Solve return kUnsat through its entry path.
    const Lit unit = clauses_[static_cast<size_t>(ci)].lits[0];
    if (Value(unit) == kUndef) {
      Enqueue(unit, ci);
      if (Propagate() != -1) {
        Backtrack(0);
        installed_.clear();
      }
    }
  }
}

void SatSolver::AttachClause(int clause_index) {
  const auto& lits = clauses_[static_cast<size_t>(clause_index)].lits;
  watches_[static_cast<size_t>(lits[0])].push_back({clause_index, lits[1]});
  watches_[static_cast<size_t>(lits[1])].push_back({clause_index, lits[0]});
}

void SatSolver::Enqueue(Lit lit, int reason) {
  const Var var = LitVar(lit);
  assign_[static_cast<size_t>(var)] = LitNegated(lit) ? kFalse : kTrue;
  level_[static_cast<size_t>(var)] = static_cast<int>(trail_lim_.size());
  reason_[static_cast<size_t>(var)] = reason;
  trail_.push_back(lit);
}

int SatSolver::Propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit lit = trail_[propagate_head_++];
    ++stats_propagations_;
    // Clauses watching ~lit must find a new watch or propagate/conflict.
    const Lit false_lit = Negate(lit);
    auto& watch_list = watches_[static_cast<size_t>(false_lit)];
    size_t keep = 0;
    for (size_t i = 0; i < watch_list.size(); ++i) {
      const Watcher w = watch_list[i];
      // Blocker fast path: a true blocker proves the clause satisfied
      // without loading the clause itself.
      if (Value(w.blocker) == kTrue) {
        watch_list[keep++] = w;
        continue;
      }
      const int ci = w.clause;
      auto& lits = clauses_[static_cast<size_t>(ci)].lits;
      // Normalise: watched literal in position 1.
      if (lits[0] == false_lit) {
        std::swap(lits[0], lits[1]);
      }
      if (Value(lits[0]) == kTrue) {
        watch_list[keep++] = {ci, lits[0]};  // Satisfied; cache as blocker.
        continue;
      }
      // Look for a replacement watch.
      bool found = false;
      for (size_t k = 2; k < lits.size(); ++k) {
        if (Value(lits[k]) != kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[static_cast<size_t>(lits[1])].push_back({ci, lits[0]});
          found = true;
          break;
        }
      }
      if (found) {
        continue;  // Watch moved; drop from this list.
      }
      // Unit or conflict.
      watch_list[keep++] = {ci, lits[0]};
      if (Value(lits[0]) == kFalse) {
        // Conflict: restore remaining watches and report.
        for (size_t j = i + 1; j < watch_list.size(); ++j) {
          watch_list[keep++] = watch_list[j];
        }
        watch_list.resize(keep);
        propagate_head_ = trail_.size();
        return ci;
      }
      Enqueue(lits[0], ci);
    }
    watch_list.resize(keep);
  }
  return -1;
}

void SatSolver::BoostActivity(Var var) {
  activity_[static_cast<size_t>(var)] = max_activity_ + activity_inc_;
  max_activity_ = activity_[static_cast<size_t>(var)];
  if (max_activity_ > 1e100) {
    for (double& a : activity_) {
      a *= 1e-100;
    }
    activity_inc_ *= 1e-100;
    max_activity_ *= 1e-100;
  }
  // No heap fixup: boosts happen between Solve calls, and each call
  // heapifies its candidate set on entry.
}

void SatSolver::BumpVar(Var var) {
  activity_[static_cast<size_t>(var)] += activity_inc_;
  max_activity_ = std::max(max_activity_, activity_[static_cast<size_t>(var)]);
  if (activity_[static_cast<size_t>(var)] > 1e100) {
    // Uniform rescale preserves the heap order; no re-heapify needed.
    for (double& a : activity_) {
      a *= 1e-100;
    }
    activity_inc_ *= 1e-100;
    max_activity_ *= 1e-100;
  }
  VarOrderHeap& heap = restricted_ ? query_order_ : order_;
  if (heap.index[static_cast<size_t>(var)] != -1) {
    HeapSiftUp(heap, static_cast<size_t>(heap.index[static_cast<size_t>(var)]));
  }
}

void SatSolver::DecayActivities() { activity_inc_ /= 0.95; }

void SatSolver::Analyze(int conflict_clause, std::vector<Lit>& learnt, int& backtrack_level) {
  learnt.clear();
  learnt.push_back(0);  // Placeholder for the asserting literal.
  int counter = 0;
  Lit p = -1;
  int index = static_cast<int>(trail_.size()) - 1;
  const int current_level = static_cast<int>(trail_lim_.size());
  int ci = conflict_clause;
  do {
    const auto& lits = clauses_[static_cast<size_t>(ci)].lits;
    // Skip lits[0] on iterations after the first (it is `p` itself).
    for (size_t k = (p == -1 ? 0 : 1); k < lits.size(); ++k) {
      const Lit q = lits[k];
      const Var v = LitVar(q);
      if (!seen_[static_cast<size_t>(v)] && level_[static_cast<size_t>(v)] > 0) {
        seen_[static_cast<size_t>(v)] = true;
        BumpVar(v);
        if (level_[static_cast<size_t>(v)] == current_level) {
          ++counter;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Find the next seen literal on the trail.
    while (!seen_[static_cast<size_t>(LitVar(trail_[static_cast<size_t>(index)]))]) {
      --index;
    }
    p = trail_[static_cast<size_t>(index)];
    ci = reason_[static_cast<size_t>(LitVar(p))];
    seen_[static_cast<size_t>(LitVar(p))] = false;
    --counter;
    --index;
  } while (counter > 0);
  learnt[0] = Negate(p);

  // Compute backtrack level (second-highest level in the clause).
  backtrack_level = 0;
  for (size_t k = 1; k < learnt.size(); ++k) {
    backtrack_level = std::max(backtrack_level,
                               level_[static_cast<size_t>(LitVar(learnt[k]))]);
  }
  // Move a literal of backtrack_level into position 1 for watching.
  for (size_t k = 1; k < learnt.size(); ++k) {
    if (level_[static_cast<size_t>(LitVar(learnt[k]))] == backtrack_level) {
      std::swap(learnt[1], learnt[k]);
      break;
    }
  }
  for (const Lit q : learnt) {
    seen_[static_cast<size_t>(LitVar(q))] = false;
  }
}

void SatSolver::Backtrack(int target_level) {
  if (static_cast<int>(trail_lim_.size()) <= target_level) {
    return;
  }
  const size_t bound = static_cast<size_t>(trail_lim_[static_cast<size_t>(target_level)]);
  for (size_t i = trail_.size(); i-- > bound;) {
    const Var var = LitVar(trail_[i]);
    assign_[static_cast<size_t>(var)] = kUndef;
    reason_[static_cast<size_t>(var)] = -1;
    // Back into the ACTIVE decision pool only; no heap is maintained outside
    // a Solve call (each call heapifies its candidate set on entry).
    if (restricted_) {
      if (decision_stamp_[static_cast<size_t>(var)] == decision_epoch_) {
        HeapInsert(query_order_, var);
      }
    } else if (solving_) {
      HeapInsert(order_, var);
    }
  }
  trail_.resize(bound);
  trail_lim_.resize(static_cast<size_t>(target_level));
  propagate_head_ = trail_.size();
}

Lit SatSolver::PickBranchLit() {
  // Pop heap entries until an unassigned variable surfaces (entries for
  // assigned vars are stale; Backtrack re-inserts on unassignment). A
  // restricted query draws only from its own decision set.
  VarOrderHeap& heap = restricted_ ? query_order_ : order_;
  while (!heap.heap.empty()) {
    const Var best = HeapPopMax(heap);
    if (assign_[static_cast<size_t>(best)] != kUndef) {
      continue;
    }
    // Positive-first polarity by default: callers upstream (the symbolic
    // executor's solution cache) benefit from models with large variable
    // values, which stay valid across loop iterations. Activation literals
    // are marked negative-first via SetPolarity.
    return MakeLit(best, !polarity_[static_cast<size_t>(best)]);
  }
  return -1;
}

void SatSolver::ReduceLearnedDb() {
  // Must be at root level with propagation at fixpoint.
  size_t long_total = 0;
  for (const auto& c : clauses_) {
    if (c.learnt && c.lits.size() > 3) {
      ++long_total;
    }
  }
  const size_t drop_budget = long_total / 2;
  size_t long_seen = 0;
  std::vector<Clause> kept;
  kept.reserve(clauses_.size() - drop_budget);
  num_learnt_ = 0;
  std::vector<Lit> units;
  for (auto& c : clauses_) {
    if (c.learnt && c.lits.size() > 3 && ++long_seen <= drop_budget) {
      continue;  // Oldest long learned clauses go first.
    }
    // Root simplification: drop permanently satisfied clauses, strip
    // permanently false literals.
    bool satisfied = false;
    size_t keep = 0;
    for (const Lit lit : c.lits) {
      const int8_t v = Value(lit);
      if (v == kTrue) {
        satisfied = true;
        break;
      }
      if (v == kUndef) {
        c.lits[keep++] = lit;
      }
    }
    if (satisfied) {
      continue;
    }
    c.lits.resize(keep);
    if (keep == 0) {
      trivially_unsat_ = true;
      return;
    }
    if (keep == 1) {
      units.push_back(c.lits[0]);
      continue;
    }
    num_learnt_ += c.learnt ? 1 : 0;
    kept.push_back(std::move(c));
  }
  clauses_ = std::move(kept);
  for (auto& watch_list : watches_) {
    watch_list.clear();
  }
  for (size_t i = 0; i < clauses_.size(); ++i) {
    AttachClause(static_cast<int>(i));
  }
  // Old clause indices are gone; root-level facts need no reasons (Analyze
  // never dereferences level-0 reasons).
  for (const Lit lit : trail_) {
    reason_[static_cast<size_t>(LitVar(lit))] = -1;
  }
  for (const Lit lit : units) {
    if (Value(lit) == kFalse) {
      trivially_unsat_ = true;
      return;
    }
    if (Value(lit) == kUndef) {
      Enqueue(lit, -1);
    }
  }
  if (Propagate() != -1) {
    trivially_unsat_ = true;
  }
}

SatResult SatSolver::Solve(const std::vector<Lit>& assumptions, uint64_t max_conflicts,
                           const std::vector<Var>* decision_vars) {
  if (trivially_unsat_) {
    return SatResult::kUnsat;
  }
  if (num_learnt_ > learnt_limit_) {
    Backtrack(0);
    installed_.clear();
    if (Propagate() != -1) {
      trivially_unsat_ = true;
      return SatResult::kUnsat;
    }
    ReduceLearnedDb();
    learnt_limit_ += learnt_limit_ / 2;
    if (trivially_unsat_) {
      return SatResult::kUnsat;
    }
  }
  // Trail reuse: a kSat exit leaves the assumption levels (and their
  // propagations) installed. Keep the longest prefix shared with this call's
  // assumptions — across the executor's DFS-ordered queries that skips
  // re-propagating most of the path condition. AddClause invalidates the
  // saved prefix (it backtracks to root).
  size_t lcp = 0;
  while (lcp < assumptions.size() && lcp < installed_.size() &&
         installed_[lcp] == assumptions[lcp]) {
    ++lcp;
  }
  if (lcp == assumptions.size() && lcp == installed_.size()) {
    // Identical assumption set: keep any deeper search levels too and resume
    // the previous search in place. Model enumeration lands here after
    // AddBlockingClause's backjump, turning the whole enumeration into one
    // continuing search rather than a from-scratch solve per model.
  } else {
    Backtrack(static_cast<int>(lcp));
    installed_.resize(lcp);
  }
  if (Propagate() != -1) {
    if (trail_lim_.empty()) {
      trivially_unsat_ = true;
      return SatResult::kUnsat;
    }
    // The kept prefix (a prefix of this call's assumptions) is contradicted.
    Backtrack(0);
    installed_.clear();
    return SatResult::kUnsat;
  }
  // Install the remaining assumptions, each on its own decision level (a
  // level per assumption keeps levels aligned with assumption indices, which
  // the prefix-reuse bookkeeping relies on).
  for (size_t i = lcp; i < assumptions.size(); ++i) {
    const Lit a = assumptions[i];
    if (Value(a) == kFalse) {
      Backtrack(0);
      installed_.clear();
      return SatResult::kUnsat;
    }
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    installed_.push_back(a);
    if (Value(a) == kUndef) {
      Enqueue(a, -1);
      if (Propagate() != -1) {
        Backtrack(0);
        installed_.clear();
        return SatResult::kUnsat;
      }
    }
  }
  const int assumption_level = static_cast<int>(assumptions.size());

  // Build this call's active decision heap (bottom-up heapify, O(n)). No heap
  // is kept current between calls: the executor's persistent solver issues
  // only restricted queries, so eagerly maintaining the full-instance heap on
  // every enqueue/backtrack was pure overhead.
  restricted_ = decision_vars != nullptr;
  if (restricted_) {
    ++decision_epoch_;
    std::vector<Var> candidates;
    candidates.reserve(decision_vars->size());
    for (const Var v : *decision_vars) {
      decision_stamp_[static_cast<size_t>(v)] = decision_epoch_;
      if (assign_[static_cast<size_t>(v)] == kUndef) {
        candidates.push_back(v);
      }
    }
    HeapBuild(query_order_, std::move(candidates));
  } else {
    std::vector<Var> candidates;
    candidates.reserve(assign_.size());
    for (Var v = 0; v < num_vars(); ++v) {
      if (assign_[static_cast<size_t>(v)] == kUndef) {
        candidates.push_back(v);
      }
    }
    HeapBuild(order_, std::move(candidates));
  }
  solving_ = true;

  uint64_t conflicts_local = 0;
  uint64_t restart_count = 0;
  uint64_t restart_budget = 32 * Luby(restart_count);
  std::vector<Lit> learnt;
  for (;;) {
    const int conflict = Propagate();
    if (conflict != -1) {
      ++stats_conflicts_;
      ++conflicts_local;
      if (static_cast<int>(trail_lim_.size()) <= assumption_level) {
        solving_ = false;
        restricted_ = false;
        Backtrack(0);
        installed_.clear();
        return SatResult::kUnsat;
      }
      if (max_conflicts != 0 && conflicts_local > max_conflicts) {
        solving_ = false;
        restricted_ = false;
        Backtrack(0);
        installed_.clear();
        return SatResult::kUnknown;
      }
      int backtrack_level;
      Analyze(conflict, learnt, backtrack_level);
      backtrack_level = std::max(backtrack_level, assumption_level);
      Backtrack(backtrack_level);
      if (learnt.size() == 1) {
        Enqueue(learnt[0], -1);
      } else {
        clauses_.push_back({learnt, true});
        ++num_learnt_;
        AttachClause(static_cast<int>(clauses_.size() - 1));
        Enqueue(learnt[0], static_cast<int>(clauses_.size() - 1));
      }
      DecayActivities();
      if (conflicts_local >= restart_budget) {
        ++restart_count;
        restart_budget = conflicts_local + 32 * Luby(restart_count);
        Backtrack(assumption_level);
      }
      continue;
    }
    const Lit branch = PickBranchLit();
    if (branch == -1) {
      // Full assignment (or, restricted, full over the decision set — the
      // remainder is extendable, see the header contract): record the model.
      // The trail stays put so the next call can reuse the installed
      // assumption prefix.
      if (restricted_) {
        // Only the decision set has meaningful values, and restricted
        // callers only read those — skip the O(num_vars) sweep, which would
        // dominate on a persistent instance grown across a whole exploration.
        if (model_.size() < static_cast<size_t>(num_vars())) {
          model_.resize(static_cast<size_t>(num_vars()), false);
        }
        for (const Var v : *decision_vars) {
          model_[static_cast<size_t>(v)] = assign_[static_cast<size_t>(v)] == kTrue;
        }
      } else {
        model_.assign(static_cast<size_t>(num_vars()), false);
        for (Var v = 0; v < num_vars(); ++v) {
          model_[static_cast<size_t>(v)] = assign_[static_cast<size_t>(v)] == kTrue;
        }
      }
      solving_ = false;
      restricted_ = false;
      return SatResult::kSat;
    }
    ++stats_decisions_;
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    Enqueue(branch, -1);
  }
}

}  // namespace symx
