// Bounded symbolic executor over the MiniC IR — the KLEE-style component the
// paper's §4.1 draws on. Explores feasible paths from an entry function,
// treating every input() as a fresh symbolic value, and reports:
//   - the number of feasible paths (path counting),
//   - vulnerability sites reachable under some input (array out-of-bounds,
//     division by zero), and
//   - an exploitability estimate per site: the fraction of the input space
//     that triggers it (via sampling; exact model counting is available
//     through counter.h for narrow widths).
#ifndef SRC_SYMEXEC_EXECUTOR_H_
#define SRC_SYMEXEC_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/lang/ir.h"
#include "src/metrics/feature_vector.h"
#include "src/support/rng.h"
#include "src/symexec/expr.h"

namespace symx {

struct SymExecOptions {
  int width = 16;                   // Bitvector width for symbolic values.
  uint64_t max_paths = 256;         // Stop forking after this many paths end.
  uint64_t max_steps_per_path = 4096;
  // Global instruction budget across all paths of one Explore call; stops
  // runaway exploration even when individual paths stay under their limit.
  uint64_t max_total_steps = 1 << 17;
  // Global SAT-query budget; once exhausted, feasibility checks degrade to
  // "assume feasible" (sound for exploration, may over-report paths) and
  // exploitability estimation falls back to pure sampling.
  uint64_t max_solver_queries = 4096;
  int max_call_depth = 8;
  int max_symbolic_array = 32;      // ITE-expand arrays up to this size.
  // Expressions whose tree size exceeds this are concretized into fresh
  // variables (KLEE-style), keeping bit-blasting cost bounded on
  // loop-carried arithmetic chains.
  uint32_t max_expr_nodes = 512;
  uint64_t solver_conflict_budget = 5000;
  // Incremental solving (the default): each Explore keeps ONE persistent
  // SatSolver + BitBlaster, encodes every path constraint once behind a
  // fresh activation literal (act → constraint), and checks feasibility of
  // the current prefix with Solve(assumptions = {act₀…actₖ}). Learned
  // clauses and the CNF encoding survive across the thousands of queries one
  // exploration issues. `false` rebuilds a fresh solver per query — the
  // one-shot reference oracle the equivalence tests compare against; both
  // modes produce identical path counts, vuln sites, and exploitability
  // estimates (every verdict is sound and complete under the budgets).
  bool incremental_solver = true;
  // Recycle one persistent SatSolver per worker thread across Explore calls:
  // the exploration leases the thread-local solver session and Reset()s it
  // to a logically fresh state before use, so a scheduler draining many
  // queued path queries back-to-back pays the solver's allocator growth once
  // per thread instead of once per exploration. Behaviour is bit-identical
  // to constructing a fresh solver (Reset restores the constructed state);
  // `false` forces a brand-new instance per exploration, and a nested
  // exploration on the same thread falls back to an owned instance.
  bool reuse_solver_session = true;
  // Range-guided path pruning: track disjoint value sets implied by the
  // path condition (see range_eval.h) and decide branch deltas with interval
  // arithmetic before consulting the SAT solver. Decided branches skip their
  // feasibility query entirely (counted in SymExecResult::range_pruned);
  // undecided ones fall through to the solver, so semantic results — path
  // counts, vulnerability sites, exploit fractions — are unchanged. `false`
  // gives the solver-every-branch reference behaviour the equivalence tests
  // and the bench harness compare against.
  bool range_pruning = true;
  // Exploitability estimation: try exact projected model counting up to this
  // many models, then fall back to Monte-Carlo sampling.
  uint64_t exploit_exact_cap = 64;
  int exploit_sample_trials = 512;  // Monte-Carlo trials per vulnerability.
  // SymexFeatures explores at most this many entry functions per module
  // (call-graph roots beyond the cap are skipped, keeping per-file cost
  // bounded on large generated modules).
  int max_entries = 8;
  uint64_t rng_seed = 0x5ec0de;
  // Cooperative watchdog: per-entry step budget (0 = unlimited). Each
  // Explore owns its own deadline, so expiry is a pure function of that
  // entry's work and results stay bit-identical at any thread count; expiry
  // throws support::DeadlineExceeded for the stage wrapper to downgrade.
  uint64_t watchdog_steps = 0;
  // Retry salt mixed into solver-query fault-injection verdicts. Carried in
  // the options (not thread-local state) because entry explorations fan out
  // onto pool workers that do not inherit the caller's attempt context.
  uint32_t fault_salt = 0;
};

enum class VulnKind : uint8_t { kOutOfBounds, kDivByZero };

const char* VulnKindName(VulnKind kind);

struct VulnSite {
  VulnKind kind = VulnKind::kOutOfBounds;
  std::string function;
  int line = 0;
  // Estimated fraction of the whole input space triggering this site
  // (maximum over the paths that reach it).
  double exploit_fraction = 0.0;
  // Number of distinct feasible paths on which the site was triggerable.
  uint64_t paths = 0;
};

struct SymExecResult {
  uint64_t paths_explored = 0;   // Paths run to a terminal state.
  uint64_t paths_completed = 0;  // Paths ending in a normal return.
  uint64_t paths_aborted = 0;    // Paths ending in abort().
  uint64_t paths_infeasible_assume = 0;
  uint64_t paths_faulted = 0;    // Paths that can only end in a fault (e.g.
                                 // an unavoidable out-of-bounds access).
  uint64_t paths_limited = 0;    // Paths cut by step/call-depth limits.
  bool path_limit_hit = false;   // max_paths exhausted (exploration partial).
  uint64_t forks = 0;
  uint64_t solver_queries = 0;
  // Feasibility checks decided by the constant-interval range domain without
  // a SAT query (options.range_pruning). Each is a solver call that never
  // happened; range_pruned / (range_pruned + solver_queries) is the prune
  // rate the bench harness reports.
  uint64_t range_pruned = 0;
  uint64_t sat_conflicts = 0;      // CDCL conflicts across all SAT work.
  uint64_t model_reuse_hits = 0;   // Feasibility proven by a cached model.
  uint64_t simplifier_folds = 0;   // Expressions resolved without interning.
  int symbolic_inputs = 0;       // input() sites turned into variables.
  std::vector<VulnSite> vulns;   // Deduplicated by (kind, line), sorted.

  double MaxExploitFraction() const;
};

// Explores `entry`. Scalar parameters of the entry function are also made
// symbolic (environment-controlled), matching how KLEE treats main's argv.
SymExecResult Explore(const lang::IrModule& module, const std::string& entry,
                      const SymExecOptions& options = {});

// Feature extraction: explores from main() when present, otherwise from
// every call-graph root, and summarises into "symx.*" features. Entries are
// explored in parallel on the global thread pool; each entry's exploration
// seeds its RNG via Rng::TaskSeed(options.rng_seed, entry_index), so the
// result is bit-identical at any CLAIR_THREADS value.
metrics::FeatureVector SymexFeatures(const lang::IrModule& module,
                                     const SymExecOptions& options = {});

// Number of times an exploration recycled its thread's persistent solver
// session instead of constructing a fresh SatSolver (first lease on a thread
// does not count — nothing was reused yet). Monotonic and process-wide;
// tests read the delta across a call to assert session reuse engaged.
uint64_t SolverSessionReuseCount();

}  // namespace symx

#endif  // SRC_SYMEXEC_EXECUTOR_H_
