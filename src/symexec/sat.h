// A compact CDCL SAT solver (watched literals, 1-UIP learning, VSIDS-style
// activities, Luby restarts). Sized for the path-condition queries the
// symbolic executor generates — thousands of variables, not millions.
#ifndef SRC_SYMEXEC_SAT_H_
#define SRC_SYMEXEC_SAT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace symx {

// Literal encoding: var v (0-based) positive = 2v, negative = 2v+1.
using Lit = int32_t;
using Var = int32_t;

inline Lit MakeLit(Var var, bool negated) { return 2 * var + (negated ? 1 : 0); }
inline Var LitVar(Lit lit) { return lit >> 1; }
inline bool LitNegated(Lit lit) { return (lit & 1) != 0; }
inline Lit Negate(Lit lit) { return lit ^ 1; }

enum class SatResult : uint8_t { kSat, kUnsat, kUnknown };

class SatSolver {
 public:
  SatSolver() = default;

  // Returns the new variable's index.
  Var NewVar();
  int num_vars() const { return static_cast<int>(assign_.size()); }

  // Adds a clause (empty clause makes the instance trivially UNSAT).
  void AddClause(std::vector<Lit> clause);
  void AddUnit(Lit lit) { AddClause({lit}); }
  void AddBinary(Lit a, Lit b) { AddClause({a, b}); }
  void AddTernary(Lit a, Lit b, Lit c) { AddClause({a, b, c}); }

  // Solves under optional assumptions. `max_conflicts` bounds effort
  // (0 = unlimited); exceeding it yields kUnknown.
  SatResult Solve(const std::vector<Lit>& assumptions = {}, uint64_t max_conflicts = 0);

  // Model access after kSat.
  bool ModelValue(Var var) const { return model_[static_cast<size_t>(var)]; }

  uint64_t conflicts() const { return stats_conflicts_; }
  uint64_t decisions() const { return stats_decisions_; }
  uint64_t propagations() const { return stats_propagations_; }

 private:
  enum : int8_t { kUndef = 0, kTrue = 1, kFalse = -1 };

  struct Clause {
    std::vector<Lit> lits;
    bool learnt = false;
  };

  int8_t Value(Lit lit) const {
    const int8_t v = assign_[static_cast<size_t>(LitVar(lit))];
    return LitNegated(lit) ? static_cast<int8_t>(-v) : v;
  }

  void Enqueue(Lit lit, int reason);
  // Returns the index of a conflicting clause or -1.
  int Propagate();
  void Analyze(int conflict_clause, std::vector<Lit>& learnt, int& backtrack_level);
  void Backtrack(int level);
  Lit PickBranchLit();
  void BumpVar(Var var);
  void DecayActivities();
  void AttachClause(int clause_index);

  std::vector<Clause> clauses_;
  std::vector<std::vector<int>> watches_;  // watches_[lit] = clause indices.
  std::vector<int8_t> assign_;
  std::vector<int> level_;
  std::vector<int> reason_;  // Clause index or -1 for decisions/assumptions.
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  size_t propagate_head_ = 0;
  std::vector<double> activity_;
  double activity_inc_ = 1.0;
  std::vector<bool> model_;
  std::vector<bool> seen_;  // Scratch for Analyze.
  bool trivially_unsat_ = false;
  uint64_t stats_conflicts_ = 0;
  uint64_t stats_decisions_ = 0;
  uint64_t stats_propagations_ = 0;
};

}  // namespace symx

#endif  // SRC_SYMEXEC_SAT_H_
