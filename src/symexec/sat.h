// A compact CDCL SAT solver (watched literals, 1-UIP learning, VSIDS-style
// activities, Luby restarts). Sized for the path-condition queries the
// symbolic executor generates — thousands of variables, not millions.
//
// The solver is incremental: variables and clauses may be added after a
// Solve call (AddClause backtracks to the root level and re-simplifies
// against the permanent trail), and learned clauses persist across calls, so
// a sequence of related queries — the executor's path-condition prefixes,
// gated behind activation literals and selected per call via `assumptions` —
// amortizes both the CNF encoding and the conflict analysis work.
#ifndef SRC_SYMEXEC_SAT_H_
#define SRC_SYMEXEC_SAT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace symx {

// Literal encoding: var v (0-based) positive = 2v, negative = 2v+1.
using Lit = int32_t;
using Var = int32_t;

inline Lit MakeLit(Var var, bool negated) { return 2 * var + (negated ? 1 : 0); }
inline Var LitVar(Lit lit) { return lit >> 1; }
inline bool LitNegated(Lit lit) { return (lit & 1) != 0; }
inline Lit Negate(Lit lit) { return lit ^ 1; }

enum class SatResult : uint8_t { kSat, kUnsat, kUnknown };

class SatSolver {
 public:
  SatSolver() = default;

  // Returns the new variable's index.
  Var NewVar();
  int num_vars() const { return static_cast<int>(assign_.size()); }

  // Adds a clause (empty clause makes the instance trivially UNSAT).
  void AddClause(std::vector<Lit> clause);
  // Adds a clause while keeping the installed assumption trail from the last
  // Solve call (only search decisions are dropped; AddClause by contrast
  // backtracks to root and forfeits the prefix). Simplifies against
  // root-level facts only. Built for model enumeration: blocking the model
  // just found and re-Solving under the same assumptions skips re-installing
  // and re-propagating the whole assumption prefix for every model.
  void AddBlockingClause(std::vector<Lit> clause);
  void AddUnit(Lit lit) { AddClause({lit}); }
  void AddBinary(Lit a, Lit b) { AddClause({a, b}); }
  void AddTernary(Lit a, Lit b, Lit c) { AddClause({a, b, c}); }

  // Solves under optional assumptions. `max_conflicts` bounds effort
  // (0 = unlimited); exceeding it yields kUnknown.
  //
  // `decision_vars`, when non-null, restricts decisions to that set: the
  // search stops (kSat) once every listed variable is assigned without
  // conflict, leaving the rest of the instance undecided. This is sound only
  // when every clause over the unrestricted variables is extendable to a full
  // model from ANY conflict-free assignment of the restricted set — which
  // holds for the executor's instances: unrestricted clauses are either
  // Tseitin gate definitions (functionally consistent: evaluate the gate DAG
  // bottom-up), activation clauses {¬act, bits} of constraints this query
  // does not assume (satisfied by act := false; no clause mentions act
  // positively), or learned clauses (resolution-implied by the above, hence
  // satisfied by any model of them). Callers with arbitrary CNF must pass
  // nullptr. After a restricted kSat only decision-set variables have
  // meaningful model values (others read stale or false) — restricted
  // callers read back only variables they listed.
  SatResult Solve(const std::vector<Lit>& assumptions = {}, uint64_t max_conflicts = 0,
                  const std::vector<Var>* decision_vars = nullptr);

  // Model access after kSat. Variables created after the last Solve have no
  // recorded model value and read as false.
  bool ModelValue(Var var) const {
    const auto v = static_cast<size_t>(var);
    return v < model_.size() && model_[v];
  }

  // Sets the polarity PickBranchLit tries first for `var` (default positive).
  // The executor marks activation literals negative-first so decisions never
  // spuriously re-activate constraints that are not assumed in this query.
  void SetPolarity(Var var, bool positive) {
    polarity_[static_cast<size_t>(var)] = positive;
  }

  // Raises `var`'s VSIDS activity above every other variable's so the next
  // Solve branches on it first. Model enumeration boosts the projection bits
  // this way: blocking clauses are over those bits, so deciding them first
  // makes already-blocked assignments conflict shallowly instead of after a
  // deep dive through gate variables.
  void BoostActivity(Var var);

  uint64_t conflicts() const { return stats_conflicts_; }
  uint64_t decisions() const { return stats_decisions_; }
  uint64_t propagations() const { return stats_propagations_; }

  // Returns the solver to its freshly-constructed state (no variables, no
  // clauses, zeroed stats) while keeping the backing allocations of the big
  // per-variable and per-clause vectors where practical. The serving
  // scheduler recycles one solver instance across many queued explorations —
  // a Reset between explorations must leave behavior bit-identical to using
  // a brand-new SatSolver, only without the allocator churn.
  void Reset();

 private:
  enum : int8_t { kUndef = 0, kTrue = 1, kFalse = -1 };

  struct Clause {
    std::vector<Lit> lits;
    bool learnt = false;
  };

  int8_t Value(Lit lit) const {
    const int8_t v = assign_[static_cast<size_t>(LitVar(lit))];
    return LitNegated(lit) ? static_cast<int8_t>(-v) : v;
  }

  void Enqueue(Lit lit, int reason);
  // Returns the index of a conflicting clause or -1.
  int Propagate();
  // Root-level learned-clause garbage collection: drops the oldest half of
  // the long learned clauses (binary/ternary ones are kept — they encode
  // cheap, strong facts), root-simplifies what remains, and rebuilds the
  // watch lists. Keeps propagation cost bounded across the tens of thousands
  // of queries one incremental exploration issues.
  void ReduceLearnedDb();
  void Analyze(int conflict_clause, std::vector<Lit>& learnt, int& backtrack_level);
  void Backtrack(int level);
  Lit PickBranchLit();
  void BumpVar(Var var);
  void DecayActivities();
  void AttachClause(int clause_index);

  // VSIDS order heap (binary max-heap over activity, ties broken toward the
  // lower variable index so decisions are deterministic). Keeps PickBranchLit
  // at O(log V) per decision — essential for the incremental solver, whose
  // variable count grows across a whole path exploration. `order_` covers all
  // variables; `query_order_` is rebuilt per restricted Solve call and covers
  // only that call's decision_vars.
  struct VarOrderHeap {
    std::vector<Var> heap;
    std::vector<int> index;  // Position of each var in `heap`, or -1.
  };
  bool HeapLess(Var a, Var b) const {
    return activity_[static_cast<size_t>(a)] < activity_[static_cast<size_t>(b)] ||
           (activity_[static_cast<size_t>(a)] == activity_[static_cast<size_t>(b)] &&
            a > b);
  }
  // Replaces `h`'s contents with `vars` and heapifies bottom-up (O(n)). Each
  // Solve call builds its active heap this way instead of maintaining both
  // heaps eagerly across calls — heap churn outside the active query was the
  // dominant cost of the incremental solver.
  void HeapBuild(VarOrderHeap& h, std::vector<Var> vars);
  void HeapSiftUp(VarOrderHeap& h, size_t i);
  void HeapSiftDown(VarOrderHeap& h, size_t i);
  void HeapInsert(VarOrderHeap& h, Var var);
  Var HeapPopMax(VarOrderHeap& h);

  // Watch-list entry: the watched clause plus a cached "blocker" literal
  // from it (MiniSat-style). If the blocker is already true the clause is
  // satisfied and Propagate skips it without touching the clause memory —
  // most of the persistent instance's clauses are satisfied or irrelevant in
  // any given query, so this avoids the dominant cache-miss traffic.
  struct Watcher {
    int clause;
    Lit blocker;
  };

  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // Indexed by watched literal.
  std::vector<int8_t> assign_;
  std::vector<int> level_;
  std::vector<int> reason_;  // Clause index or -1 for decisions/assumptions.
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  // Assumptions currently installed as decision levels 1..installed_.size()
  // (level i+1 holds installed_[i]). Survives a kSat exit so the next Solve
  // can keep the shared prefix; cleared whenever the trail returns to root.
  std::vector<Lit> installed_;
  size_t propagate_head_ = 0;
  std::vector<double> activity_;
  VarOrderHeap order_;        // Decision candidates over all variables.
  VarOrderHeap query_order_;  // Candidates for the current restricted query.
  // Restricted-query membership: decision_stamp_[v] == decision_epoch_ iff
  // `v` is in the current query's decision set. Epoch bumping makes per-query
  // set setup O(|decision_vars|) with no clearing pass.
  std::vector<uint32_t> decision_stamp_;
  uint32_t decision_epoch_ = 0;
  bool restricted_ = false;
  bool solving_ = false;  // Inside Solve's search loop (gates heap upkeep).
  std::vector<bool> polarity_;  // Branch-first polarity per variable.
  double activity_inc_ = 1.0;
  double max_activity_ = 0.0;  // Running maximum of activity_ (post-rescale).
  std::vector<bool> model_;
  std::vector<bool> seen_;  // Scratch for Analyze.
  bool trivially_unsat_ = false;
  size_t num_learnt_ = 0;
  size_t learnt_limit_ = 2048;  // Grows 1.5x after each reduction.
  uint64_t stats_conflicts_ = 0;
  uint64_t stats_decisions_ = 0;
  uint64_t stats_propagations_ = 0;
};

}  // namespace symx

#endif  // SRC_SYMEXEC_SAT_H_
