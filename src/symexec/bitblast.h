// Tseitin bit-blasting of symbolic bitvector expressions into CNF.
//
// Each ExprRef encodes to a vector of W SAT literals (LSB first). Gate
// clauses are emitted on demand and cached per ExprRef, so shared subterms
// (the ExprPool hash-conses) cost one encoding.
#ifndef SRC_SYMEXEC_BITBLAST_H_
#define SRC_SYMEXEC_BITBLAST_H_

#include <utility>
#include <vector>

#include "src/symexec/expr.h"
#include "src/symexec/sat.h"

namespace symx {

class BitBlaster {
 public:
  BitBlaster(const ExprPool& pool, SatSolver& solver);

  // Returns the literal vector (width() lits, LSB first) for `ref`,
  // emitting gate clauses into the solver as needed.
  const std::vector<Lit>& Encode(ExprRef ref);

  // Asserts that `ref` is truthy (at least one bit set).
  void AssertTrue(ExprRef ref);
  // Asserts that `ref` is zero.
  void AssertFalse(ExprRef ref);
  // Asserts act → (ref truthy): the constraint holds only in queries that
  // assume `act`. Gate clauses for `ref` are still emitted ungated (they
  // define fresh Tseitin variables, so they are globally satisfiable); only
  // the final "some bit is set" clause is conditioned on `act`. This is the
  // activation-literal scheme the incremental executor uses to keep one
  // persistent solver across a whole path exploration.
  void AssertTrueUnder(Lit act, ExprRef ref);

  // The SAT variables backing symbolic variable `var_id` (allocated lazily
  // when first encoded). Used for projected model counting.
  const std::vector<Var>& VarBits(int var_id);
  // True if `var_id` already has SAT variables (i.e. some encoded expression
  // mentioned it). Never allocates.
  bool HasVarBits(int var_id) const {
    return static_cast<size_t>(var_id) < var_bits_.size() &&
           !var_bits_[static_cast<size_t>(var_id)].empty();
  }

  // Reads the W-bit value of symbolic variable `var_id` out of the solver's
  // model (sign-extended). Must be called after a kSat result.
  int64_t ModelValueOf(int var_id);

  // All SAT variables underlying `ref`'s encoding: the bits of every
  // mentioned symbolic variable plus every Tseitin auxiliary in the
  // expression DAG (shared subterms included once). `ref` must already be
  // encoded. Sorted and deduplicated — the decision set the incremental
  // executor hands SatSolver::Solve so each query only searches over its own
  // constraints' cone.
  std::vector<Var> EncodingCone(ExprRef ref) const;

 private:
  Lit TrueLit();
  Lit FalseLit() { return Negate(TrueLit()); }
  Lit NewGate();
  // out <-> a & b.
  Lit AndGate(Lit a, Lit b);
  Lit OrGate(Lit a, Lit b);
  Lit XorGate(Lit a, Lit b);
  // out <-> ite(sel, a, b).
  Lit MuxGate(Lit sel, Lit a, Lit b);
  std::vector<Lit> Adder(const std::vector<Lit>& a, const std::vector<Lit>& b, Lit carry_in);
  std::vector<Lit> Negated(const std::vector<Lit>& a);
  Lit EqualBits(const std::vector<Lit>& a, const std::vector<Lit>& b);
  // Signed a < b.
  Lit SignedLess(const std::vector<Lit>& a, const std::vector<Lit>& b, bool or_equal);
  Lit NonZero(const std::vector<Lit>& a);
  std::vector<Lit> BoolToVec(Lit bit);

  const ExprPool& pool_;
  SatSolver& solver_;
  // Dense encode cache indexed by ExprRef (refs are small dense ints from
  // the hash-consing pool); an empty vector means "not yet encoded" (every
  // real encoding has width() >= 2 literals). Grown lazily so the pool may
  // gain expressions between top-level Encode calls; within one Encode the
  // pool is const, so no resize happens mid-recursion and returned
  // references stay valid.
  std::vector<std::vector<Lit>> cache_;
  // Solver vars allocated during each node's first encoding (half-open
  // range), covering interior Tseitin auxiliaries that never surface in any
  // cache entry. Indexed like cache_.
  std::vector<std::pair<Var, Var>> encode_range_;
  std::vector<std::vector<Var>> var_bits_;  // Indexed by var_id; empty = none.
  Lit true_lit_ = -1;
};

}  // namespace symx

#endif  // SRC_SYMEXEC_BITBLAST_H_
