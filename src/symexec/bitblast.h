// Tseitin bit-blasting of symbolic bitvector expressions into CNF.
//
// Each ExprRef encodes to a vector of W SAT literals (LSB first). Gate
// clauses are emitted on demand and cached per ExprRef, so shared subterms
// (the ExprPool hash-conses) cost one encoding.
#ifndef SRC_SYMEXEC_BITBLAST_H_
#define SRC_SYMEXEC_BITBLAST_H_

#include <map>
#include <vector>

#include "src/symexec/expr.h"
#include "src/symexec/sat.h"

namespace symx {

class BitBlaster {
 public:
  BitBlaster(const ExprPool& pool, SatSolver& solver);

  // Returns the literal vector (width() lits, LSB first) for `ref`,
  // emitting gate clauses into the solver as needed.
  const std::vector<Lit>& Encode(ExprRef ref);

  // Asserts that `ref` is truthy (at least one bit set).
  void AssertTrue(ExprRef ref);
  // Asserts that `ref` is zero.
  void AssertFalse(ExprRef ref);

  // The SAT variables backing symbolic variable `var_id` (allocated lazily
  // when first encoded). Used for projected model counting.
  const std::vector<Var>& VarBits(int var_id);

  // Reads the W-bit value of symbolic variable `var_id` out of the solver's
  // model (sign-extended). Must be called after a kSat result.
  int64_t ModelValueOf(int var_id);

 private:
  Lit TrueLit();
  Lit FalseLit() { return Negate(TrueLit()); }
  Lit NewGate();
  // out <-> a & b.
  Lit AndGate(Lit a, Lit b);
  Lit OrGate(Lit a, Lit b);
  Lit XorGate(Lit a, Lit b);
  // out <-> ite(sel, a, b).
  Lit MuxGate(Lit sel, Lit a, Lit b);
  std::vector<Lit> Adder(const std::vector<Lit>& a, const std::vector<Lit>& b, Lit carry_in);
  std::vector<Lit> Negated(const std::vector<Lit>& a);
  Lit EqualBits(const std::vector<Lit>& a, const std::vector<Lit>& b);
  // Signed a < b.
  Lit SignedLess(const std::vector<Lit>& a, const std::vector<Lit>& b, bool or_equal);
  Lit NonZero(const std::vector<Lit>& a);
  std::vector<Lit> BoolToVec(Lit bit);

  const ExprPool& pool_;
  SatSolver& solver_;
  std::map<ExprRef, std::vector<Lit>> cache_;
  std::map<int, std::vector<Var>> var_bits_;
  Lit true_lit_ = -1;
};

}  // namespace symx

#endif  // SRC_SYMEXEC_BITBLAST_H_
