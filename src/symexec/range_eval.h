// Range-guided branch prechecking for the symbolic executor.
//
// As a path accumulates constraints, most of them are one-variable bounds
// (loop guards, array-index checks, equality switches). Parsing those into
// disjoint value sets (support::IntervalSet) gives a cheap abstract domain
// that can often decide a new branch condition outright — provably true or
// provably false under the current path condition — in which case the SAT
// query the executor would have issued is skipped entirely and counted as
// `range_pruned`. Undecided conditions fall through to the solver, so the
// mechanism is a pure accelerator: exploration results are unchanged.
//
// Soundness model: expressions are W-bit two's-complement (W =
// ExprPool::width()). Interval arithmetic is evaluated in the mathematical
// integers via support::ConstantInterval; any bound escaping the W-bit
// signed range means the operation may wrap, and the result widens to the
// full W-bit range. Verdicts are therefore sound for the executor's Eval
// semantics, wraparound included.
#ifndef SRC_SYMEXEC_RANGE_EVAL_H_
#define SRC_SYMEXEC_RANGE_EVAL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/support/constant_interval.h"
#include "src/support/interval_set.h"
#include "src/symexec/expr.h"

namespace symx {

// Per-path map from expression handle to the set of W-bit signed values the
// expression can take under the constraints parsed so far. Hash-consing
// makes ExprRef identity structural identity, so an entry keyed on any
// subexpression (a variable, `x + 1`, a whole comparison operand) refines
// every later occurrence of that subexpression on the same path. Copied
// wholesale on path forks; the entry count stays small (one per distinct
// constrained subexpression), so a linear scan beats a map.
class RangeRefinements {
 public:
  // The refinement set for `e`, or nullptr when unconstrained.
  const support::IntervalSet* Find(ExprRef e) const;
  // Intersects `e`'s set with `s` (an absent entry starts as the full
  // universe).
  void Constrain(ExprRef e, const support::IntervalSet& s);

  bool Empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<ExprRef, support::IntervalSet>> entries_;
};

class RangeEvaluator {
 public:
  explicit RangeEvaluator(const ExprPool& pool);

  // Signed W-bit range of `e` under `refs`. Always a subset of
  // [w_min, w_max]; never empty unless a refinement is contradictory.
  support::ConstantInterval RangeOf(ExprRef e,
                                    const RangeRefinements& refs) const;

  // Decides whether `e` (a branch condition / constraint) is provably
  // truthy, provably falsy, or unknown under `refs`.
  support::Tristate DecideTruthy(ExprRef e, const RangeRefinements& refs) const;

  // Learns refinements from asserting `e` truthy (resp. falsy). Handles
  // comparison-vs-constant atoms, equality holes, conjunctions, negations,
  // and same-operand disjunctions (unioned into one set); anything else is
  // ignored — refinements over-approximate the path condition by design.
  void RefineTrue(ExprRef e, RangeRefinements& refs) const;
  void RefineFalse(ExprRef e, RangeRefinements& refs) const;

  // Exact per-variable decomposition of a conjunction of constraints, used
  // to seed model counting: on success, `var_sets` holds, for each variable
  // mentioned, exactly the W-bit values permitted by `pc` (constraints are
  // variable-separable). Returns false — and the caller must fall back to
  // SAT enumeration — if any constraint is not exactly expressible as
  // single-variable value sets.
  bool DecomposeExact(const std::vector<ExprRef>& pc,
                      std::vector<std::pair<int32_t, support::IntervalSet>>&
                          var_sets) const;

  int64_t w_min() const { return w_min_; }
  int64_t w_max() const { return w_max_; }

 private:
  support::ConstantInterval ClampW(const support::ConstantInterval& ci) const;
  support::IntervalSet SetOf(ExprRef e, const RangeRefinements& refs) const;
  bool BooleanShaped(ExprRef e) const;
  // Exact single-atom translation: constraint `e` (asserted truthy when
  // `truthy`, falsy otherwise) as "target expression ∈ set". Returns false
  // when `e` is not such an atom.
  bool ParseAtom(ExprRef e, bool truthy, ExprRef& target,
                 support::IntervalSet& set) const;
  bool TranslateConstraint(ExprRef e, bool truthy, bool exact_vars_only,
                           std::vector<std::pair<ExprRef, support::IntervalSet>>&
                               atoms) const;

  const ExprPool& pool_;
  int64_t w_min_;
  int64_t w_max_;
};

}  // namespace symx

#endif  // SRC_SYMEXEC_RANGE_EVAL_H_
