#include "src/symexec/range_eval.h"

#include <algorithm>

namespace symx {

using support::ConstantInterval;
using support::IntervalSet;
using support::Tristate;

const IntervalSet* RangeRefinements::Find(ExprRef e) const {
  for (const auto& entry : entries_) {
    if (entry.first == e) return &entry.second;
  }
  return nullptr;
}

void RangeRefinements::Constrain(ExprRef e, const IntervalSet& s) {
  for (auto& entry : entries_) {
    if (entry.first == e) {
      entry.second.IntersectWith(s);
      return;
    }
  }
  entries_.emplace_back(e, s);
}

RangeEvaluator::RangeEvaluator(const ExprPool& pool) : pool_(pool) {
  const int w = pool.width();
  if (w >= 64) {
    w_min_ = INT64_MIN;
    w_max_ = INT64_MAX;
  } else {
    w_max_ = (int64_t{1} << (w - 1)) - 1;
    w_min_ = -w_max_ - 1;
  }
}

ConstantInterval RangeEvaluator::ClampW(const ConstantInterval& ci) const {
  // The algebra models mathematical integers; the executor evaluates in W-bit
  // two's-complement. A result interval that fits entirely inside the W-bit
  // signed range cannot have wrapped and is exact; anything else may have
  // wrapped to an arbitrary W-bit value.
  if (ci.is_empty()) return ci;
  if (ci.min_defined && ci.max_defined && ci.min >= w_min_ && ci.max <= w_max_) {
    return ci;
  }
  return ConstantInterval::Bounded(w_min_, w_max_);
}

bool RangeEvaluator::BooleanShaped(ExprRef e) const {
  const ExprNode& n = pool_.node(e);
  switch (n.op) {
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kSlt:
    case ExprOp::kSle:
    case ExprOp::kBoolNot:
      return true;
    case ExprOp::kConst:
      return n.imm == 0 || n.imm == 1;
    case ExprOp::kAnd:
    case ExprOp::kOr:
      return BooleanShaped(n.a) && BooleanShaped(n.b);
    default:
      return false;
  }
}

ConstantInterval RangeEvaluator::RangeOf(ExprRef e,
                                         const RangeRefinements& refs) const {
  const ExprNode& n = pool_.node(e);
  ConstantInterval r;
  switch (n.op) {
    case ExprOp::kConst:
      // imm is stored sign-extended from W bits, so it is already in range.
      return ConstantInterval::SinglePoint(n.imm);
    case ExprOp::kVar:
      r = ConstantInterval::Bounded(w_min_, w_max_);
      break;
    case ExprOp::kAdd:
      r = ClampW(RangeOf(n.a, refs) + RangeOf(n.b, refs));
      break;
    case ExprOp::kSub:
      r = ClampW(RangeOf(n.a, refs) - RangeOf(n.b, refs));
      break;
    case ExprOp::kMul:
      r = ClampW(RangeOf(n.a, refs) * RangeOf(n.b, refs));
      break;
    case ExprOp::kNeg:
      r = ClampW(-RangeOf(n.a, refs));
      break;
    case ExprOp::kNot:
      // ~x == -x - 1 exactly in two's complement, and maps [w_min, w_max]
      // onto itself, so no wrap is possible.
      r = ClampW(ConstantInterval::SinglePoint(-1) - RangeOf(n.a, refs));
      break;
    case ExprOp::kAnd: {
      const ConstantInterval ra = RangeOf(n.a, refs);
      const ConstantInterval rb = RangeOf(n.b, refs);
      if (ra.min_defined && ra.min >= 0 && rb.min_defined && rb.min >= 0) {
        // Both sign bits clear: the conjunction clears bits only.
        int64_t hi = w_max_;
        if (ra.max_defined) hi = std::min(hi, ra.max);
        if (rb.max_defined) hi = std::min(hi, rb.max);
        r = ConstantInterval::Bounded(0, hi);
      } else {
        r = ConstantInterval::Bounded(w_min_, w_max_);
      }
      break;
    }
    case ExprOp::kOr:
    case ExprOp::kXor: {
      const ConstantInterval ra = RangeOf(n.a, refs);
      const ConstantInterval rb = RangeOf(n.b, refs);
      if (ra.min_defined && ra.min >= 0 && rb.min_defined && rb.min >= 0) {
        // Sign bit stays clear; tighter bit-level bounds are not worth the
        // complexity here.
        r = ConstantInterval::Bounded(0, w_max_);
      } else {
        r = ConstantInterval::Bounded(w_min_, w_max_);
      }
      break;
    }
    case ExprOp::kShl:
    case ExprOp::kShr: {
      const ExprNode& shift = pool_.node(n.b);
      if (shift.op != ExprOp::kConst) {
        r = ConstantInterval::Bounded(w_min_, w_max_);
        break;
      }
      const int64_t s =
          shift.imm & (pool_.width() - 1);  // Executor masks the amount.
      const ConstantInterval ra = RangeOf(n.a, refs);
      if (n.op == ExprOp::kShl) {
        r = ClampW(ConstantInterval::Shl(ra, ConstantInterval::SinglePoint(s)));
      } else if (s == 0) {
        r = ra;
      } else if (ra.min_defined && ra.min >= 0) {
        // Logical and arithmetic right shift agree on non-negative values.
        r = ClampW(ConstantInterval::Shr(ra, ConstantInterval::SinglePoint(s)));
      } else {
        // Logical shift of a possibly-negative W-bit pattern: the result's
        // top s bits are zero, so it is non-negative.
        r = ConstantInterval::Bounded(0, w_max_);
      }
      break;
    }
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kSlt:
    case ExprOp::kSle:
    case ExprOp::kBoolNot:
      switch (DecideTruthy(e, refs)) {
        case Tristate::kTrue:
          r = ConstantInterval::SinglePoint(1);
          break;
        case Tristate::kFalse:
          r = ConstantInterval::SinglePoint(0);
          break;
        case Tristate::kUnknown:
          r = ConstantInterval::Bounded(0, 1);
          break;
      }
      break;
    case ExprOp::kIte:
      switch (DecideTruthy(n.a, refs)) {
        case Tristate::kTrue:
          r = RangeOf(n.b, refs);
          break;
        case Tristate::kFalse:
          r = RangeOf(n.c, refs);
          break;
        case Tristate::kUnknown:
          r = ConstantInterval::Union(RangeOf(n.b, refs), RangeOf(n.c, refs));
          break;
      }
      break;
  }
  // Structural range, sharpened by whatever the path condition taught us
  // about this exact subterm (hash-consing makes handle equality structural
  // equality).
  if (const IntervalSet* s = refs.Find(e)) {
    r = ConstantInterval::Intersection(r, s->Hull());
  }
  return r;
}

IntervalSet RangeEvaluator::SetOf(ExprRef e, const RangeRefinements& refs) const {
  IntervalSet s = IntervalSet::FromConstantInterval(RangeOf(e, refs));
  if (const IntervalSet* refined = refs.Find(e)) {
    s.IntersectWith(*refined);
  }
  return s;
}

Tristate RangeEvaluator::DecideTruthy(ExprRef e,
                                      const RangeRefinements& refs) const {
  const ExprNode& n = pool_.node(e);
  switch (n.op) {
    case ExprOp::kConst:
      return n.imm != 0 ? Tristate::kTrue : Tristate::kFalse;
    case ExprOp::kBoolNot:
      return TriNot(DecideTruthy(n.a, refs));
    case ExprOp::kAnd:
      if (BooleanShaped(n.a) && BooleanShaped(n.b)) {
        return TriAnd(DecideTruthy(n.a, refs), DecideTruthy(n.b, refs));
      }
      break;
    case ExprOp::kOr:
      if (BooleanShaped(n.a) && BooleanShaped(n.b)) {
        return TriOr(DecideTruthy(n.a, refs), DecideTruthy(n.b, refs));
      }
      break;
    case ExprOp::kEq:
    case ExprOp::kNe: {
      // Sets, not hulls: a disequality refinement punches a hole an interval
      // cannot see.
      const IntervalSet sa = SetOf(n.a, refs);
      const IntervalSet sb = SetOf(n.b, refs);
      Tristate eq = Tristate::kUnknown;
      IntervalSet common = sa;
      common.IntersectWith(sb);
      if (common.Empty()) {
        eq = Tristate::kFalse;
      } else if (sa.NumRanges() == 1 && sa == sb &&
                 sa.ranges().front().lo == sa.ranges().front().hi) {
        eq = Tristate::kTrue;
      }
      return n.op == ExprOp::kEq ? eq : TriNot(eq);
    }
    case ExprOp::kSlt:
      return ConstantInterval::ProveLt(RangeOf(n.a, refs), RangeOf(n.b, refs));
    case ExprOp::kSle:
      return ConstantInterval::ProveLe(RangeOf(n.a, refs), RangeOf(n.b, refs));
    default:
      break;
  }
  // Generic value used as a condition: truthy iff nonzero.
  const IntervalSet s = SetOf(e, refs);
  if (s.Empty()) return Tristate::kUnknown;  // Contradictory refinements.
  if (!s.Contains(0)) return Tristate::kTrue;
  if (s.NumRanges() == 1 && s.ranges().front().lo == 0 &&
      s.ranges().front().hi == 0) {
    return Tristate::kFalse;
  }
  return Tristate::kUnknown;
}

bool RangeEvaluator::ParseAtom(ExprRef e, bool truthy, ExprRef& target,
                               IntervalSet& set) const {
  const ExprNode& n = pool_.node(e);
  // Normalizes `expr OP const` / `const OP expr`; comparisons against two
  // non-constant sides are not atoms.
  const auto side = [&](ExprRef x, ExprRef k, bool swapped) -> bool {
    if (pool_.node(k).op != ExprOp::kConst || pool_.node(x).op == ExprOp::kConst) {
      return false;
    }
    const int64_t kv = pool_.node(k).imm;
    target = x;
    set = IntervalSet();
    switch (n.op) {
      case ExprOp::kEq:
        if (truthy) {
          set.Insert(kv, kv);
        } else {
          set = IntervalSet::All();
          set.Remove(kv, kv);
        }
        return true;
      case ExprOp::kNe:
        if (truthy) {
          set = IntervalSet::All();
          set.Remove(kv, kv);
        } else {
          set.Insert(kv, kv);
        }
        return true;
      case ExprOp::kSlt:
        if (!swapped) {
          // x < K  |  !(x < K) == x >= K
          if (truthy) {
            if (kv != INT64_MIN) set.Insert(INT64_MIN, kv - 1);
          } else {
            set.Insert(kv, INT64_MAX);
          }
        } else {
          // K < x  |  x <= K
          if (truthy) {
            if (kv != INT64_MAX) set.Insert(kv + 1, INT64_MAX);
          } else {
            set.Insert(INT64_MIN, kv);
          }
        }
        return true;
      case ExprOp::kSle:
        if (!swapped) {
          // x <= K  |  x > K
          if (truthy) {
            set.Insert(INT64_MIN, kv);
          } else {
            if (kv != INT64_MAX) set.Insert(kv + 1, INT64_MAX);
          }
        } else {
          // K <= x  |  x < K
          if (truthy) {
            set.Insert(kv, INT64_MAX);
          } else {
            if (kv != INT64_MIN) set.Insert(INT64_MIN, kv - 1);
          }
        }
        return true;
      default:
        return false;
    }
  };
  switch (n.op) {
    case ExprOp::kEq:
    case ExprOp::kNe:
      return side(n.a, n.b, false) || side(n.b, n.a, false);
    case ExprOp::kSlt:
    case ExprOp::kSle:
      return side(n.a, n.b, false) || side(n.b, n.a, true);
    case ExprOp::kBoolNot:
      // !y truthy <=> y == 0.
      target = n.a;
      set = IntervalSet();
      if (truthy) {
        set.Insert(0, 0);
      } else {
        set = IntervalSet::All();
        set.Remove(0, 0);
      }
      return true;
    default:
      return false;
  }
}

void RangeEvaluator::RefineTrue(ExprRef e, RangeRefinements& refs) const {
  const ExprNode& n = pool_.node(e);
  switch (n.op) {
    case ExprOp::kAnd:
      if (BooleanShaped(n.a) && BooleanShaped(n.b)) {
        RefineTrue(n.a, refs);
        RefineTrue(n.b, refs);
        return;
      }
      break;
    case ExprOp::kBoolNot:
      RefineFalse(n.a, refs);
      return;
    case ExprOp::kOr: {
      // A disjunction refines only when both arms bound the same expression
      // (e.g. x < 0 || x > 9 from a bounds check): the union is exact.
      ExprRef ta, tb;
      IntervalSet sa, sb;
      if (ParseAtom(n.a, true, ta, sa) && ParseAtom(n.b, true, tb, sb) &&
          ta == tb) {
        sa.UnionWith(sb);
        refs.Constrain(ta, sa);
      }
      return;
    }
    case ExprOp::kEq:
      // y == 0 with boolean-shaped y is a negation in disguise (the executor
      // spells some negated conditions this way).
      if (pool_.node(n.b).op == ExprOp::kConst && pool_.node(n.b).imm == 0 &&
          BooleanShaped(n.a)) {
        RefineFalse(n.a, refs);
        return;
      }
      break;
    case ExprOp::kNe:
      if (pool_.node(n.b).op == ExprOp::kConst && pool_.node(n.b).imm == 0 &&
          BooleanShaped(n.a)) {
        RefineTrue(n.a, refs);
        return;
      }
      break;
    default:
      break;
  }
  ExprRef target;
  IntervalSet set;
  if (ParseAtom(e, true, target, set)) {
    refs.Constrain(target, set);
  }
}

void RangeEvaluator::RefineFalse(ExprRef e, RangeRefinements& refs) const {
  const ExprNode& n = pool_.node(e);
  switch (n.op) {
    case ExprOp::kOr:
      // !(a || b) == !a && !b.
      if (BooleanShaped(n.a) && BooleanShaped(n.b)) {
        RefineFalse(n.a, refs);
        RefineFalse(n.b, refs);
        return;
      }
      break;
    case ExprOp::kBoolNot:
      RefineTrue(n.a, refs);
      return;
    case ExprOp::kAnd:
      // !(a && b) is a disjunction; nothing convex to learn.
      return;
    default:
      break;
  }
  ExprRef target;
  IntervalSet set;
  if (ParseAtom(e, false, target, set)) {
    refs.Constrain(target, set);
  }
}

bool RangeEvaluator::TranslateConstraint(
    ExprRef e, bool truthy, bool exact_vars_only,
    std::vector<std::pair<ExprRef, IntervalSet>>& atoms) const {
  const ExprNode& n = pool_.node(e);
  switch (n.op) {
    case ExprOp::kConst:
      // A folded constraint: either vacuous or an outright contradiction.
      // Contradictions cannot be expressed as a var atom — bail and let the
      // solver report UNSAT.
      return (n.imm != 0) == truthy;
    case ExprOp::kBoolNot:
      return TranslateConstraint(n.a, !truthy, exact_vars_only, atoms);
    case ExprOp::kAnd:
      if (truthy && BooleanShaped(n.a) && BooleanShaped(n.b)) {
        return TranslateConstraint(n.a, true, exact_vars_only, atoms) &&
               TranslateConstraint(n.b, true, exact_vars_only, atoms);
      }
      return false;
    case ExprOp::kOr:
      if (!truthy && BooleanShaped(n.a) && BooleanShaped(n.b)) {
        return TranslateConstraint(n.a, false, exact_vars_only, atoms) &&
               TranslateConstraint(n.b, false, exact_vars_only, atoms);
      }
      if (truthy) {
        // Same-target disjunction is still exact as a single set union.
        ExprRef ta, tb;
        IntervalSet sa, sb;
        if (ParseAtom(n.a, true, ta, sa) && ParseAtom(n.b, true, tb, sb) &&
            ta == tb && (!exact_vars_only || pool_.node(ta).op == ExprOp::kVar)) {
          sa.UnionWith(sb);
          atoms.emplace_back(ta, sa);
          return true;
        }
      }
      return false;
    case ExprOp::kEq:
    case ExprOp::kNe:
      if (pool_.node(n.b).op == ExprOp::kConst && pool_.node(n.b).imm == 0 &&
          BooleanShaped(n.a)) {
        const bool inner = (n.op == ExprOp::kNe) == truthy;
        return TranslateConstraint(n.a, inner, exact_vars_only, atoms);
      }
      break;
    default:
      break;
  }
  ExprRef target;
  IntervalSet set;
  if (!ParseAtom(e, truthy, target, set)) return false;
  if (exact_vars_only && pool_.node(target).op != ExprOp::kVar) return false;
  atoms.emplace_back(target, set);
  return true;
}

bool RangeEvaluator::DecomposeExact(
    const std::vector<ExprRef>& pc,
    std::vector<std::pair<int32_t, IntervalSet>>& var_sets) const {
  std::vector<std::pair<ExprRef, IntervalSet>> atoms;
  for (const ExprRef c : pc) {
    if (!TranslateConstraint(c, /*truthy=*/true, /*exact_vars_only=*/true,
                             atoms)) {
      return false;
    }
  }
  var_sets.clear();
  for (const auto& atom : atoms) {
    const int32_t var_id = pool_.node(atom.first).var_id;
    auto it = std::find_if(
        var_sets.begin(), var_sets.end(),
        [var_id](const auto& vs) { return vs.first == var_id; });
    if (it == var_sets.end()) {
      var_sets.emplace_back(var_id, IntervalSet::Of(w_min_, w_max_));
      it = var_sets.end() - 1;
    }
    it->second.IntersectWith(atom.second);
  }
  return true;
}

}  // namespace symx
