#include "src/symexec/expr.h"

#include <algorithm>
#include <cassert>

#include "src/support/strings.h"

namespace symx {
namespace {

uint64_t HashNode(const ExprNode& node) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<uint64_t>(node.op));
  mix(static_cast<uint64_t>(node.imm));
  mix(static_cast<uint64_t>(static_cast<int64_t>(node.var_id)));
  mix(static_cast<uint64_t>(static_cast<int64_t>(node.a)));
  mix(static_cast<uint64_t>(static_cast<int64_t>(node.b)));
  mix(static_cast<uint64_t>(static_cast<int64_t>(node.c)));
  return h;
}

bool SameNode(const ExprNode& x, const ExprNode& y) {
  return x.op == y.op && x.imm == y.imm && x.var_id == y.var_id && x.a == y.a && x.b == y.b &&
         x.c == y.c;
}

}  // namespace

ExprPool::ExprPool(int width) : width_(width) {
  assert(width >= 2 && width <= 64);
}

int64_t ExprPool::SignExtend(uint64_t value) const {
  value &= Mask();
  if (width_ == 64) {
    return static_cast<int64_t>(value);
  }
  const uint64_t sign_bit = 1ULL << (width_ - 1);
  if (value & sign_bit) {
    return static_cast<int64_t>(value | ~Mask());
  }
  return static_cast<int64_t>(value);
}

ExprRef ExprPool::Intern(const ExprNode& node) {
  const uint64_t h = HashNode(node);
  auto& bucket = intern_[h];
  for (ExprRef ref : bucket) {
    if (SameNode(nodes_[static_cast<size_t>(ref)], node)) {
      return ref;
    }
  }
  ExprNode stored = node;
  uint64_t size = 1;
  for (const ExprRef child : {node.a, node.b, node.c}) {
    if (child != kNoExpr) {
      size += nodes_[static_cast<size_t>(child)].tree_size;
    }
  }
  stored.tree_size = static_cast<uint32_t>(std::min<uint64_t>(size, 0xffffffffULL));
  nodes_.push_back(stored);
  const ExprRef ref = static_cast<ExprRef>(nodes_.size() - 1);
  bucket.push_back(ref);
  return ref;
}

ExprRef ExprPool::Const(int64_t value) {
  ExprNode node;
  node.op = ExprOp::kConst;
  node.imm = SignExtend(static_cast<uint64_t>(value));
  return Intern(node);
}

ExprRef ExprPool::FreshVar(const std::string& name) {
  ExprNode node;
  node.op = ExprOp::kVar;
  node.var_id = static_cast<int32_t>(var_names_.size());
  var_names_.push_back(name);
  return Intern(node);
}

bool ExprPool::TryFold(const ExprNode& node, int64_t& out) const {
  auto cval = [this](ExprRef r) { return nodes_[static_cast<size_t>(r)].imm; };
  auto is_const = [this](ExprRef r) {
    return r != kNoExpr && nodes_[static_cast<size_t>(r)].op == ExprOp::kConst;
  };
  switch (node.op) {
    case ExprOp::kConst:
    case ExprOp::kVar:
      return false;
    case ExprOp::kNeg:
    case ExprOp::kNot:
    case ExprOp::kBoolNot:
      if (!is_const(node.a)) {
        return false;
      }
      break;
    case ExprOp::kIte:
      if (!is_const(node.a) || !is_const(node.b) || !is_const(node.c)) {
        return false;
      }
      break;
    default:
      if (!is_const(node.a) || !is_const(node.b)) {
        return false;
      }
      break;
  }
  const uint64_t mask = Mask();
  const int64_t a = node.a == kNoExpr ? 0 : cval(node.a);
  const int64_t b = node.b == kNoExpr ? 0 : cval(node.b);
  switch (node.op) {
    case ExprOp::kAdd:
      out = SignExtend(static_cast<uint64_t>(a) + static_cast<uint64_t>(b));
      return true;
    case ExprOp::kSub:
      out = SignExtend(static_cast<uint64_t>(a) - static_cast<uint64_t>(b));
      return true;
    case ExprOp::kMul:
      out = SignExtend(static_cast<uint64_t>(a) * static_cast<uint64_t>(b));
      return true;
    case ExprOp::kNeg:
      out = SignExtend(0 - static_cast<uint64_t>(a));
      return true;
    case ExprOp::kNot:
      out = SignExtend(~static_cast<uint64_t>(a));
      return true;
    case ExprOp::kAnd:
      out = SignExtend(static_cast<uint64_t>(a) & static_cast<uint64_t>(b));
      return true;
    case ExprOp::kOr:
      out = SignExtend(static_cast<uint64_t>(a) | static_cast<uint64_t>(b));
      return true;
    case ExprOp::kXor:
      out = SignExtend(static_cast<uint64_t>(a) ^ static_cast<uint64_t>(b));
      return true;
    case ExprOp::kShl: {
      const uint64_t sh = static_cast<uint64_t>(b) & (static_cast<uint64_t>(width_) - 1);
      out = SignExtend((static_cast<uint64_t>(a) & mask) << sh);
      return true;
    }
    case ExprOp::kShr: {
      const uint64_t sh = static_cast<uint64_t>(b) & (static_cast<uint64_t>(width_) - 1);
      out = SignExtend((static_cast<uint64_t>(a) & mask) >> sh);
      return true;
    }
    case ExprOp::kEq:
      out = a == b ? 1 : 0;
      return true;
    case ExprOp::kNe:
      out = a != b ? 1 : 0;
      return true;
    case ExprOp::kSlt:
      out = a < b ? 1 : 0;
      return true;
    case ExprOp::kSle:
      out = a <= b ? 1 : 0;
      return true;
    case ExprOp::kBoolNot:
      out = a == 0 ? 1 : 0;
      return true;
    case ExprOp::kIte:
      out = a != 0 ? b : cval(node.c);
      return true;
    default:
      return false;
  }
}

ExprRef ExprPool::Unary(ExprOp op, ExprRef a) {
  ExprNode node;
  node.op = op;
  node.a = a;
  int64_t folded;
  if (TryFold(node, folded)) {
    ++simplifier_folds_;
    return Const(folded);
  }
  // Normalizing rewrites. Operand fields are copied up front because the
  // builders called below may reallocate nodes_.
  const ExprOp a_op = nodes_[static_cast<size_t>(a)].op;
  const ExprRef a_a = nodes_[static_cast<size_t>(a)].a;
  const ExprRef a_b = nodes_[static_cast<size_t>(a)].b;
  if ((op == ExprOp::kNeg && a_op == ExprOp::kNeg) ||
      (op == ExprOp::kNot && a_op == ExprOp::kNot)) {
    ++simplifier_folds_;
    return a_a;  // Double negation / double complement.
  }
  if (op == ExprOp::kBoolNot) {
    // Comparisons are 0/1-valued: their logical negation is the dual /
    // swapped comparison, and !!x is x != 0.
    switch (a_op) {
      case ExprOp::kEq:
        ++simplifier_folds_;
        return Binary(ExprOp::kNe, a_a, a_b);
      case ExprOp::kNe:
        ++simplifier_folds_;
        return Binary(ExprOp::kEq, a_a, a_b);
      case ExprOp::kSlt:
        ++simplifier_folds_;
        return Binary(ExprOp::kSle, a_b, a_a);
      case ExprOp::kSle:
        ++simplifier_folds_;
        return Binary(ExprOp::kSlt, a_b, a_a);
      case ExprOp::kBoolNot:
        ++simplifier_folds_;
        return Truthy(a_a);
      default:
        break;
    }
  }
  return Intern(node);
}

ExprRef ExprPool::Binary(ExprOp op, ExprRef a, ExprRef b) {
  ExprNode node;
  node.op = op;
  node.a = a;
  node.b = b;
  int64_t folded;
  if (TryFold(node, folded)) {
    ++simplifier_folds_;
    return Const(folded);
  }
  // Identity/annihilator/idempotence rules: many loop-generated conditions
  // collapse to constants here and never reach the solver, and the rest
  // bit-blast to smaller CNF. `keep` records the fold before returning an
  // existing ref; `make` does the same before building a constant. Operand
  // nodes are copied (not referenced): Const() may reallocate nodes_.
  auto keep = [this](ExprRef r) {
    ++simplifier_folds_;
    return r;
  };
  auto make = [this](int64_t value) {
    ++simplifier_folds_;
    return Const(value);
  };
  const ExprNode na = nodes_[static_cast<size_t>(a)];
  const ExprNode nb = nodes_[static_cast<size_t>(b)];
  const bool ca = na.op == ExprOp::kConst;
  const bool cb = nb.op == ExprOp::kConst;
  const int64_t all_ones = SignExtend(Mask());
  switch (op) {
    case ExprOp::kAdd:
      if (cb && nb.imm == 0) {
        return keep(a);
      }
      if (ca && na.imm == 0) {
        return keep(b);
      }
      break;
    case ExprOp::kSub:
      if (cb && nb.imm == 0) {
        return keep(a);
      }
      if (a == b) {
        return make(0);
      }
      break;
    case ExprOp::kMul:
      if ((ca && na.imm == 0) || (cb && nb.imm == 0)) {
        return make(0);
      }
      if (cb && nb.imm == 1) {
        return keep(a);
      }
      if (ca && na.imm == 1) {
        return keep(b);
      }
      break;
    case ExprOp::kAnd:
      if ((ca && na.imm == 0) || (cb && nb.imm == 0)) {
        return make(0);
      }
      if (cb && nb.imm == all_ones) {
        return keep(a);
      }
      if (ca && na.imm == all_ones) {
        return keep(b);
      }
      if (a == b) {
        return keep(a);
      }
      break;
    case ExprOp::kOr:
      if (cb && nb.imm == 0) {
        return keep(a);
      }
      if (ca && na.imm == 0) {
        return keep(b);
      }
      if ((ca && na.imm == all_ones) || (cb && nb.imm == all_ones)) {
        return make(all_ones);
      }
      if (a == b) {
        return keep(a);
      }
      break;
    case ExprOp::kXor:
      if (cb && nb.imm == 0) {
        return keep(a);
      }
      if (ca && na.imm == 0) {
        return keep(b);
      }
      if (a == b) {
        return make(0);
      }
      break;
    case ExprOp::kShl:
    case ExprOp::kShr:
      if (ca && na.imm == 0) {
        return make(0);
      }
      // Shift amounts act modulo the width (same computation as Eval/TryFold).
      if (cb &&
          (static_cast<uint64_t>(nb.imm) & (static_cast<uint64_t>(width_) - 1)) == 0) {
        return keep(a);
      }
      break;
    case ExprOp::kEq:
    case ExprOp::kSle:
      if (a == b) {
        return make(1);
      }
      break;
    case ExprOp::kNe:
    case ExprOp::kSlt:
      if (a == b) {
        return make(0);
      }
      break;
    default:
      break;
  }
  return Intern(node);
}

ExprRef ExprPool::Ite(ExprRef cond, ExprRef then_e, ExprRef else_e) {
  ExprNode node;
  node.op = ExprOp::kIte;
  node.a = cond;
  node.b = then_e;
  node.c = else_e;
  int64_t folded;
  if (TryFold(node, folded)) {
    ++simplifier_folds_;
    return Const(folded);
  }
  const ExprNode& nc = nodes_[static_cast<size_t>(cond)];
  if (nc.op == ExprOp::kConst) {
    ++simplifier_folds_;
    return nc.imm != 0 ? then_e : else_e;
  }
  if (then_e == else_e) {
    ++simplifier_folds_;
    return then_e;
  }
  return Intern(node);
}

ExprRef ExprPool::Truthy(ExprRef a) {
  // Comparison results are already 0/1; wrapping them in `!= 0` would only
  // obscure their shape from the executor's constraint subsumption.
  const ExprNode& node = nodes_[static_cast<size_t>(a)];
  switch (node.op) {
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kSlt:
    case ExprOp::kSle:
    case ExprOp::kBoolNot:
      return a;
    default:
      return Binary(ExprOp::kNe, a, Const(0));
  }
}

ExprRef ExprPool::Falsy(ExprRef a) {
  // Comparisons are 0/1-valued, so their logical negation is the swapped /
  // dual comparison; normalising here keeps path conditions in a shape the
  // executor's constraint subsumption recognises.
  const ExprNode& node = nodes_[static_cast<size_t>(a)];
  switch (node.op) {
    case ExprOp::kEq:
      return Binary(ExprOp::kNe, node.a, node.b);
    case ExprOp::kNe:
      return Binary(ExprOp::kEq, node.a, node.b);
    case ExprOp::kSlt:
      return Binary(ExprOp::kSle, node.b, node.a);
    case ExprOp::kSle:
      return Binary(ExprOp::kSlt, node.b, node.a);
    case ExprOp::kBoolNot:
      return Truthy(node.a);
    default:
      return Unary(ExprOp::kBoolNot, a);
  }
}

ExprRef ExprPool::FromUnaryOp(lang::UnaryOp op, ExprRef a) {
  switch (op) {
    case lang::UnaryOp::kNeg:
      return Unary(ExprOp::kNeg, a);
    case lang::UnaryOp::kNot:
      return Unary(ExprOp::kBoolNot, a);
    case lang::UnaryOp::kBitNot:
      return Unary(ExprOp::kNot, a);
    case lang::UnaryOp::kPreInc:
      return Binary(ExprOp::kAdd, a, Const(1));
    case lang::UnaryOp::kPreDec:
      return Binary(ExprOp::kSub, a, Const(1));
  }
  return a;
}

ExprRef ExprPool::FromBinaryOp(lang::BinaryOp op, ExprRef a, ExprRef b, bool& made_fresh) {
  made_fresh = false;
  switch (op) {
    case lang::BinaryOp::kAdd:
      return Binary(ExprOp::kAdd, a, b);
    case lang::BinaryOp::kSub:
      return Binary(ExprOp::kSub, a, b);
    case lang::BinaryOp::kMul:
      return Binary(ExprOp::kMul, a, b);
    case lang::BinaryOp::kDiv:
    case lang::BinaryOp::kRem: {
      // Concrete operands fold exactly; symbolic division is
      // over-approximated by a fresh unconstrained value (see header).
      const ExprNode& na = nodes_[static_cast<size_t>(a)];
      const ExprNode& nb = nodes_[static_cast<size_t>(b)];
      if (na.op == ExprOp::kConst && nb.op == ExprOp::kConst && nb.imm != 0) {
        const int64_t q = op == lang::BinaryOp::kDiv ? na.imm / nb.imm : na.imm % nb.imm;
        return Const(q);
      }
      made_fresh = true;
      return FreshVar(op == lang::BinaryOp::kDiv ? "div_result" : "rem_result");
    }
    case lang::BinaryOp::kEq:
      return Binary(ExprOp::kEq, a, b);
    case lang::BinaryOp::kNe:
      return Binary(ExprOp::kNe, a, b);
    case lang::BinaryOp::kLt:
      return Binary(ExprOp::kSlt, a, b);
    case lang::BinaryOp::kLe:
      return Binary(ExprOp::kSle, a, b);
    case lang::BinaryOp::kGt:
      return Binary(ExprOp::kSlt, b, a);
    case lang::BinaryOp::kGe:
      return Binary(ExprOp::kSle, b, a);
    case lang::BinaryOp::kAnd: {
      // Non-short-circuit logical and (lowering only emits this for the
      // interpreter's benefit; values are 0/1).
      const ExprRef ta = Truthy(a);
      const ExprRef tb = Truthy(b);
      return Binary(ExprOp::kAnd, ta, tb);
    }
    case lang::BinaryOp::kOr: {
      const ExprRef ta = Truthy(a);
      const ExprRef tb = Truthy(b);
      return Binary(ExprOp::kOr, ta, tb);
    }
    case lang::BinaryOp::kBitAnd:
      return Binary(ExprOp::kAnd, a, b);
    case lang::BinaryOp::kBitOr:
      return Binary(ExprOp::kOr, a, b);
    case lang::BinaryOp::kBitXor:
      return Binary(ExprOp::kXor, a, b);
    case lang::BinaryOp::kShl:
      return Binary(ExprOp::kShl, a, b);
    case lang::BinaryOp::kShr:
      return Binary(ExprOp::kShr, a, b);
  }
  made_fresh = true;
  return FreshVar("unknown_op");
}

int64_t ExprPool::Eval(ExprRef ref, const std::vector<int64_t>& var_values) const {
  // Iterative post-order evaluation with a per-call epoch cache.
  if (eval_cache_.size() < nodes_.size()) {
    eval_cache_.resize(nodes_.size(), 0);
    eval_stamp_.resize(nodes_.size(), 0);
  }
  ++eval_epoch_;
  std::vector<ExprRef> stack = {ref};
  while (!stack.empty()) {
    const ExprRef cur = stack.back();
    const auto cu = static_cast<size_t>(cur);
    if (eval_stamp_[cu] == eval_epoch_) {
      stack.pop_back();
      continue;
    }
    const ExprNode& node = nodes_[cu];
    bool ready = true;
    for (ExprRef child : {node.a, node.b, node.c}) {
      if (child != kNoExpr && eval_stamp_[static_cast<size_t>(child)] != eval_epoch_) {
        stack.push_back(child);
        ready = false;
      }
    }
    if (!ready) {
      continue;
    }
    stack.pop_back();
    const int64_t a = node.a == kNoExpr ? 0 : eval_cache_[static_cast<size_t>(node.a)];
    const int64_t b = node.b == kNoExpr ? 0 : eval_cache_[static_cast<size_t>(node.b)];
    const int64_t c = node.c == kNoExpr ? 0 : eval_cache_[static_cast<size_t>(node.c)];
    int64_t value = 0;
    switch (node.op) {
      case ExprOp::kConst:
        value = node.imm;
        break;
      case ExprOp::kVar:
        value = node.var_id >= 0 && static_cast<size_t>(node.var_id) < var_values.size()
                    ? SignExtend(static_cast<uint64_t>(var_values[static_cast<size_t>(
                          node.var_id)]))
                    : 0;
        break;
      case ExprOp::kAdd:
        value = SignExtend(static_cast<uint64_t>(a) + static_cast<uint64_t>(b));
        break;
      case ExprOp::kSub:
        value = SignExtend(static_cast<uint64_t>(a) - static_cast<uint64_t>(b));
        break;
      case ExprOp::kMul:
        value = SignExtend(static_cast<uint64_t>(a) * static_cast<uint64_t>(b));
        break;
      case ExprOp::kNeg:
        value = SignExtend(0 - static_cast<uint64_t>(a));
        break;
      case ExprOp::kNot:
        value = SignExtend(~static_cast<uint64_t>(a));
        break;
      case ExprOp::kAnd:
        value = SignExtend(static_cast<uint64_t>(a) & static_cast<uint64_t>(b));
        break;
      case ExprOp::kOr:
        value = SignExtend(static_cast<uint64_t>(a) | static_cast<uint64_t>(b));
        break;
      case ExprOp::kXor:
        value = SignExtend(static_cast<uint64_t>(a) ^ static_cast<uint64_t>(b));
        break;
      case ExprOp::kShl: {
        const uint64_t sh = static_cast<uint64_t>(b) & (static_cast<uint64_t>(width_) - 1);
        value = SignExtend((static_cast<uint64_t>(a) & Mask()) << sh);
        break;
      }
      case ExprOp::kShr: {
        const uint64_t sh = static_cast<uint64_t>(b) & (static_cast<uint64_t>(width_) - 1);
        value = SignExtend((static_cast<uint64_t>(a) & Mask()) >> sh);
        break;
      }
      case ExprOp::kEq:
        value = a == b ? 1 : 0;
        break;
      case ExprOp::kNe:
        value = a != b ? 1 : 0;
        break;
      case ExprOp::kSlt:
        value = a < b ? 1 : 0;
        break;
      case ExprOp::kSle:
        value = a <= b ? 1 : 0;
        break;
      case ExprOp::kBoolNot:
        value = a == 0 ? 1 : 0;
        break;
      case ExprOp::kIte:
        value = a != 0 ? b : c;
        break;
    }
    eval_cache_[cu] = value;
    eval_stamp_[cu] = eval_epoch_;
  }
  return eval_cache_[static_cast<size_t>(ref)];
}

bool ExprPool::IsConcrete(ExprRef ref) const {
  std::vector<ExprRef> stack = {ref};
  std::vector<bool> seen(nodes_.size(), false);
  while (!stack.empty()) {
    const ExprRef cur = stack.back();
    stack.pop_back();
    const auto cu = static_cast<size_t>(cur);
    if (seen[cu]) {
      continue;
    }
    seen[cu] = true;
    const ExprNode& node = nodes_[cu];
    if (node.op == ExprOp::kVar) {
      return false;
    }
    for (ExprRef child : {node.a, node.b, node.c}) {
      if (child != kNoExpr) {
        stack.push_back(child);
      }
    }
  }
  return true;
}

std::string ExprPool::ToString(ExprRef ref) const {
  const ExprNode& node = nodes_[static_cast<size_t>(ref)];
  switch (node.op) {
    case ExprOp::kConst:
      return std::to_string(node.imm);
    case ExprOp::kVar:
      return var_names_[static_cast<size_t>(node.var_id)];
    case ExprOp::kNeg:
      return "(- " + ToString(node.a) + ")";
    case ExprOp::kNot:
      return "(~ " + ToString(node.a) + ")";
    case ExprOp::kBoolNot:
      return "(! " + ToString(node.a) + ")";
    case ExprOp::kIte:
      return "(ite " + ToString(node.a) + " " + ToString(node.b) + " " + ToString(node.c) +
             ")";
    default: {
      const char* name = "?";
      switch (node.op) {
        case ExprOp::kAdd:
          name = "+";
          break;
        case ExprOp::kSub:
          name = "-";
          break;
        case ExprOp::kMul:
          name = "*";
          break;
        case ExprOp::kAnd:
          name = "&";
          break;
        case ExprOp::kOr:
          name = "|";
          break;
        case ExprOp::kXor:
          name = "^";
          break;
        case ExprOp::kShl:
          name = "<<";
          break;
        case ExprOp::kShr:
          name = ">>";
          break;
        case ExprOp::kEq:
          name = "==";
          break;
        case ExprOp::kNe:
          name = "!=";
          break;
        case ExprOp::kSlt:
          name = "<";
          break;
        case ExprOp::kSle:
          name = "<=";
          break;
        default:
          break;
      }
      return std::string("(") + name + " " + ToString(node.a) + " " + ToString(node.b) + ")";
    }
  }
}

}  // namespace symx
