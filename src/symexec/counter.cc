#include "src/symexec/counter.h"

#include "src/symexec/bitblast.h"
#include "src/symexec/sat.h"

namespace symx {

CountResult CountExact(const ExprPool& pool, std::span<const ExprRef> constraints,
                       const std::vector<int>& projection, uint64_t cap,
                       uint64_t solver_conflict_budget) {
  CountResult result;
  SatSolver solver;
  BitBlaster blaster(pool, solver);
  for (const ExprRef c : constraints) {
    blaster.AssertTrue(c);
  }
  // Materialise projection bits up front so blocking clauses are well-formed
  // even for variables the constraints never mention.
  std::vector<Var> proj_bits;
  for (const int var_id : projection) {
    const auto& bits = blaster.VarBits(var_id);
    proj_bits.insert(proj_bits.end(), bits.begin(), bits.end());
  }
  for (;;) {
    ++result.sat_calls;
    const SatResult sat = solver.Solve({}, solver_conflict_budget);
    result.conflicts = solver.conflicts();
    if (sat == SatResult::kUnknown) {
      result.exact = false;
      return result;
    }
    if (sat == SatResult::kUnsat) {
      return result;
    }
    ++result.models;
    if (result.models >= cap) {
      // One more probe would tell us whether we stopped exactly at the last
      // model; report inexact instead of paying for it.
      result.exact = false;
      return result;
    }
    if (proj_bits.empty()) {
      // No projection variables: the count is 0 or 1.
      return result;
    }
    // Block this projected assignment.
    std::vector<Lit> blocking;
    blocking.reserve(proj_bits.size());
    for (const Var bit : proj_bits) {
      blocking.push_back(MakeLit(bit, solver.ModelValue(bit)));
    }
    solver.AddClause(std::move(blocking));
  }
}

bool IsSatisfiable(const ExprPool& pool, std::span<const ExprRef> constraints,
                   uint64_t solver_conflict_budget, bool* budget_exceeded) {
  if (budget_exceeded != nullptr) {
    *budget_exceeded = false;
  }
  // Fast path: all-concrete constraints evaluate directly.
  bool all_concrete = true;
  for (const ExprRef c : constraints) {
    const ExprNode& node = pool.node(c);
    if (node.op == ExprOp::kConst) {
      if (node.imm == 0) {
        return false;
      }
    } else {
      all_concrete = false;
    }
  }
  if (all_concrete) {
    return true;
  }
  SatSolver solver;
  BitBlaster blaster(pool, solver);
  for (const ExprRef c : constraints) {
    blaster.AssertTrue(c);
  }
  const SatResult sat = solver.Solve({}, solver_conflict_budget);
  if (sat == SatResult::kUnknown) {
    if (budget_exceeded != nullptr) {
      *budget_exceeded = true;
    }
    return true;  // Conservative: unknown counts as feasible.
  }
  return sat == SatResult::kSat;
}

double EstimateFraction(const ExprPool& pool, std::span<const ExprRef> constraints,
                        support::Rng& rng, int trials) {
  if (trials <= 0) {
    return 0.0;
  }
  const int vars = pool.num_vars();
  std::vector<int64_t> assignment(static_cast<size_t>(vars), 0);
  int hits = 0;
  for (int t = 0; t < trials; ++t) {
    for (auto& value : assignment) {
      value = pool.SignExtend(rng.NextU64());
    }
    bool all = true;
    for (const ExprRef c : constraints) {
      if (pool.Eval(c, assignment) == 0) {
        all = false;
        break;
      }
    }
    if (all) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace symx
