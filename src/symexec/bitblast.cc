#include "src/symexec/bitblast.h"

#include <algorithm>
#include <cassert>

namespace symx {

BitBlaster::BitBlaster(const ExprPool& pool, SatSolver& solver)
    : pool_(pool), solver_(solver) {}

Lit BitBlaster::TrueLit() {
  if (true_lit_ == -1) {
    const Var v = solver_.NewVar();
    true_lit_ = MakeLit(v, false);
    solver_.AddUnit(true_lit_);
  }
  return true_lit_;
}

Lit BitBlaster::NewGate() { return MakeLit(solver_.NewVar(), false); }

Lit BitBlaster::AndGate(Lit a, Lit b) {
  if (a == FalseLit() || b == FalseLit()) {
    return FalseLit();
  }
  if (a == TrueLit()) {
    return b;
  }
  if (b == TrueLit()) {
    return a;
  }
  if (a == b) {
    return a;
  }
  if (a == Negate(b)) {
    return FalseLit();
  }
  const Lit out = NewGate();
  solver_.AddBinary(Negate(out), a);
  solver_.AddBinary(Negate(out), b);
  solver_.AddTernary(out, Negate(a), Negate(b));
  return out;
}

Lit BitBlaster::OrGate(Lit a, Lit b) { return Negate(AndGate(Negate(a), Negate(b))); }

Lit BitBlaster::XorGate(Lit a, Lit b) {
  if (a == FalseLit()) {
    return b;
  }
  if (b == FalseLit()) {
    return a;
  }
  if (a == TrueLit()) {
    return Negate(b);
  }
  if (b == TrueLit()) {
    return Negate(a);
  }
  if (a == b) {
    return FalseLit();
  }
  if (a == Negate(b)) {
    return TrueLit();
  }
  const Lit out = NewGate();
  solver_.AddTernary(Negate(out), a, b);
  solver_.AddTernary(Negate(out), Negate(a), Negate(b));
  solver_.AddTernary(out, Negate(a), b);
  solver_.AddTernary(out, a, Negate(b));
  return out;
}

Lit BitBlaster::MuxGate(Lit sel, Lit a, Lit b) {
  if (sel == TrueLit()) {
    return a;
  }
  if (sel == FalseLit()) {
    return b;
  }
  if (a == b) {
    return a;
  }
  return OrGate(AndGate(sel, a), AndGate(Negate(sel), b));
}

std::vector<Lit> BitBlaster::Adder(const std::vector<Lit>& a, const std::vector<Lit>& b,
                                   Lit carry_in) {
  const size_t w = a.size();
  std::vector<Lit> sum(w);
  Lit carry = carry_in;
  for (size_t i = 0; i < w; ++i) {
    const Lit axb = XorGate(a[i], b[i]);
    sum[i] = XorGate(axb, carry);
    // carry' = (a & b) | (carry & (a ^ b)).
    carry = OrGate(AndGate(a[i], b[i]), AndGate(carry, axb));
  }
  return sum;
}

std::vector<Lit> BitBlaster::Negated(const std::vector<Lit>& a) {
  std::vector<Lit> inverted(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    inverted[i] = Negate(a[i]);
  }
  std::vector<Lit> zero(a.size(), FalseLit());
  return Adder(inverted, zero, TrueLit());  // ~a + 1.
}

Lit BitBlaster::EqualBits(const std::vector<Lit>& a, const std::vector<Lit>& b) {
  Lit all = TrueLit();
  for (size_t i = 0; i < a.size(); ++i) {
    all = AndGate(all, Negate(XorGate(a[i], b[i])));
  }
  return all;
}

Lit BitBlaster::SignedLess(const std::vector<Lit>& a, const std::vector<Lit>& b,
                           bool or_equal) {
  // a < b  <=>  (a - b) produces "negative" considering overflow:
  // less = (sign_a & ~sign_b) | ((sign_a == sign_b) & sign_diff).
  const size_t w = a.size();
  const std::vector<Lit> diff = Adder(a, Negated(b), FalseLit());
  const Lit sign_a = a[w - 1];
  const Lit sign_b = b[w - 1];
  const Lit sign_d = diff[w - 1];
  const Lit same_sign = Negate(XorGate(sign_a, sign_b));
  const Lit less =
      OrGate(AndGate(sign_a, Negate(sign_b)), AndGate(same_sign, sign_d));
  if (!or_equal) {
    return less;
  }
  return OrGate(less, EqualBits(a, b));
}

Lit BitBlaster::NonZero(const std::vector<Lit>& a) {
  Lit any = FalseLit();
  for (const Lit bit : a) {
    any = OrGate(any, bit);
  }
  return any;
}

std::vector<Lit> BitBlaster::BoolToVec(Lit bit) {
  std::vector<Lit> out(static_cast<size_t>(pool_.width()), FalseLit());
  out[0] = bit;
  return out;
}

const std::vector<Var>& BitBlaster::VarBits(int var_id) {
  const auto id = static_cast<size_t>(var_id);
  if (var_bits_.size() <= id) {
    var_bits_.resize(std::max(id + 1, static_cast<size_t>(pool_.num_vars())));
  }
  if (var_bits_[id].empty()) {
    std::vector<Var> bits(static_cast<size_t>(pool_.width()));
    for (auto& bit : bits) {
      bit = solver_.NewVar();
    }
    var_bits_[id] = std::move(bits);
  }
  return var_bits_[id];
}

int64_t BitBlaster::ModelValueOf(int var_id) {
  const auto& bits = VarBits(var_id);
  uint64_t value = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (solver_.ModelValue(bits[i])) {
      value |= 1ULL << i;
    }
  }
  return pool_.SignExtend(value);
}

std::vector<Var> BitBlaster::EncodingCone(ExprRef ref) const {
  std::vector<Var> cone;
  std::vector<bool> visited(pool_.size(), false);
  std::vector<ExprRef> stack = {ref};
  while (!stack.empty()) {
    const ExprRef r = stack.back();
    stack.pop_back();
    if (visited[static_cast<size_t>(r)]) {
      continue;
    }
    visited[static_cast<size_t>(r)] = true;
    if (static_cast<size_t>(r) < cache_.size()) {
      for (const Lit lit : cache_[static_cast<size_t>(r)]) {
        cone.push_back(LitVar(lit));
      }
      // Interior Tseitin auxiliaries of this node's first encoding.
      const auto [lo, hi] = encode_range_[static_cast<size_t>(r)];
      for (Var v = lo; v < hi; ++v) {
        cone.push_back(v);
      }
    }
    const ExprNode& node = pool_.node(r);
    if (node.op == ExprOp::kVar &&
        static_cast<size_t>(node.var_id) < var_bits_.size()) {
      for (const Var v : var_bits_[static_cast<size_t>(node.var_id)]) {
        cone.push_back(v);
      }
    }
    for (const ExprRef child : {node.a, node.b, node.c}) {
      if (child != kNoExpr) {
        stack.push_back(child);
      }
    }
  }
  std::sort(cone.begin(), cone.end());
  cone.erase(std::unique(cone.begin(), cone.end()), cone.end());
  return cone;
}

const std::vector<Lit>& BitBlaster::Encode(ExprRef ref) {
  if (cache_.size() < pool_.size()) {
    cache_.resize(pool_.size());
    encode_range_.resize(pool_.size(), {0, 0});
  }
  if (!cache_[static_cast<size_t>(ref)].empty()) {
    return cache_[static_cast<size_t>(ref)];
  }
  // Record the solver variables allocated while encoding this node (interior
  // Tseitin auxiliaries included; nested child ranges overlap harmlessly) —
  // EncodingCone needs them all.
  const Var range_lo = static_cast<Var>(solver_.num_vars());
  const ExprNode& node = pool_.node(ref);
  const size_t w = static_cast<size_t>(pool_.width());
  std::vector<Lit> out;
  switch (node.op) {
    case ExprOp::kConst: {
      out.resize(w);
      const uint64_t value = static_cast<uint64_t>(node.imm);
      for (size_t i = 0; i < w; ++i) {
        out[i] = (value >> i) & 1 ? TrueLit() : FalseLit();
      }
      break;
    }
    case ExprOp::kVar: {
      const auto& bits = VarBits(node.var_id);
      out.resize(w);
      for (size_t i = 0; i < w; ++i) {
        out[i] = MakeLit(bits[i], false);
      }
      break;
    }
    case ExprOp::kAdd:
      out = Adder(Encode(node.a), Encode(node.b), FalseLit());
      break;
    case ExprOp::kSub: {
      const std::vector<Lit> a = Encode(node.a);
      const std::vector<Lit> b = Encode(node.b);
      std::vector<Lit> inverted(b.size());
      for (size_t i = 0; i < b.size(); ++i) {
        inverted[i] = Negate(b[i]);
      }
      out = Adder(a, inverted, TrueLit());
      break;
    }
    case ExprOp::kMul: {
      // Shift-and-add multiplier.
      const std::vector<Lit> a = Encode(node.a);
      const std::vector<Lit> b = Encode(node.b);
      std::vector<Lit> acc(w, FalseLit());
      for (size_t i = 0; i < w; ++i) {
        // partial = (a << i) gated by b[i].
        std::vector<Lit> partial(w, FalseLit());
        for (size_t j = i; j < w; ++j) {
          partial[j] = AndGate(a[j - i], b[i]);
        }
        acc = Adder(acc, partial, FalseLit());
      }
      out = acc;
      break;
    }
    case ExprOp::kNeg:
      out = Negated(Encode(node.a));
      break;
    case ExprOp::kNot: {
      const std::vector<Lit> a = Encode(node.a);
      out.resize(w);
      for (size_t i = 0; i < w; ++i) {
        out[i] = Negate(a[i]);
      }
      break;
    }
    case ExprOp::kAnd:
    case ExprOp::kOr:
    case ExprOp::kXor: {
      const std::vector<Lit> a = Encode(node.a);
      const std::vector<Lit> b = Encode(node.b);
      out.resize(w);
      for (size_t i = 0; i < w; ++i) {
        out[i] = node.op == ExprOp::kAnd  ? AndGate(a[i], b[i])
                 : node.op == ExprOp::kOr ? OrGate(a[i], b[i])
                                          : XorGate(a[i], b[i]);
      }
      break;
    }
    case ExprOp::kShl:
    case ExprOp::kShr: {
      // Barrel shifter over log2(w) mux stages using the low shift bits.
      const std::vector<Lit> a = Encode(node.a);
      const std::vector<Lit> s = Encode(node.b);
      std::vector<Lit> current = a;
      size_t stages = 0;
      while ((1ULL << stages) < w) {
        ++stages;
      }
      for (size_t stage = 0; stage < stages; ++stage) {
        const size_t amount = 1ULL << stage;
        std::vector<Lit> shifted(w, FalseLit());
        for (size_t i = 0; i < w; ++i) {
          if (node.op == ExprOp::kShl) {
            if (i >= amount) {
              shifted[i] = current[i - amount];
            }
          } else {
            if (i + amount < w) {
              shifted[i] = current[i + amount];
            }
          }
        }
        std::vector<Lit> next(w);
        for (size_t i = 0; i < w; ++i) {
          next[i] = MuxGate(s[stage], shifted[i], current[i]);
        }
        current = std::move(next);
      }
      out = current;
      break;
    }
    case ExprOp::kEq:
      out = BoolToVec(EqualBits(Encode(node.a), Encode(node.b)));
      break;
    case ExprOp::kNe:
      out = BoolToVec(Negate(EqualBits(Encode(node.a), Encode(node.b))));
      break;
    case ExprOp::kSlt:
      out = BoolToVec(SignedLess(Encode(node.a), Encode(node.b), /*or_equal=*/false));
      break;
    case ExprOp::kSle:
      out = BoolToVec(SignedLess(Encode(node.a), Encode(node.b), /*or_equal=*/true));
      break;
    case ExprOp::kBoolNot:
      out = BoolToVec(Negate(NonZero(Encode(node.a))));
      break;
    case ExprOp::kIte: {
      const Lit sel = NonZero(Encode(node.a));
      const std::vector<Lit> b = Encode(node.b);
      const std::vector<Lit> c = Encode(node.c);
      out.resize(w);
      for (size_t i = 0; i < w; ++i) {
        out[i] = MuxGate(sel, b[i], c[i]);
      }
      break;
    }
  }
  assert(out.size() == w);
  encode_range_[static_cast<size_t>(ref)] = {range_lo,
                                             static_cast<Var>(solver_.num_vars())};
  cache_[static_cast<size_t>(ref)] = std::move(out);
  return cache_[static_cast<size_t>(ref)];
}

void BitBlaster::AssertTrue(ExprRef ref) {
  const std::vector<Lit> bits = Encode(ref);
  std::vector<Lit> clause;
  clause.reserve(bits.size());
  for (const Lit bit : bits) {
    if (bit == TrueLit()) {
      return;  // Trivially satisfied.
    }
    if (bit != FalseLit()) {
      clause.push_back(bit);
    }
  }
  solver_.AddClause(std::move(clause));  // Empty clause => UNSAT, as desired.
}

void BitBlaster::AssertTrueUnder(Lit act, ExprRef ref) {
  const std::vector<Lit> bits = Encode(ref);
  std::vector<Lit> clause;
  clause.reserve(bits.size() + 1);
  clause.push_back(Negate(act));
  for (const Lit bit : bits) {
    if (bit == TrueLit()) {
      return;  // act → true: vacuous, no clause needed.
    }
    if (bit != FalseLit()) {
      clause.push_back(bit);
    }
  }
  // All bits false leaves {¬act}: assuming `act` is then immediately UNSAT.
  solver_.AddClause(std::move(clause));
}

void BitBlaster::AssertFalse(ExprRef ref) {
  const std::vector<Lit> bits = Encode(ref);
  for (const Lit bit : bits) {
    if (bit == TrueLit()) {
      solver_.AddClause({});  // Unsatisfiable.
      return;
    }
    if (bit != FalseLit()) {
      solver_.AddUnit(Negate(bit));
    }
  }
}

}  // namespace symx
