// Symbolic bitvector expressions.
//
// The symbolic executor builds these as it interprets the IR; the solver
// bit-blasts them to CNF. Expressions are hash-consed into an ExprPool so a
// path condition is a set of small integer handles, and structurally equal
// subterms encode to the same CNF variables.
//
// Width model: all MiniC values are W-bit two's-complement (W =
// ExprPool::width(), default 32). The concrete interpreter uses 64-bit
// arithmetic; for corpus programs (small constants) the semantics coincide —
// the symexec tests cross-validate every path against the interpreter.
#ifndef SRC_SYMEXEC_EXPR_H_
#define SRC_SYMEXEC_EXPR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/lang/ast.h"

namespace symx {

using ExprRef = int32_t;
inline constexpr ExprRef kNoExpr = -1;

enum class ExprOp : uint8_t {
  kConst,  // value in `imm`
  kVar,    // symbolic input; `var_id` indexes the pool's variable table
  kAdd,
  kSub,
  kMul,
  kNeg,
  kNot,     // Bitwise complement.
  kAnd,     // Bitwise.
  kOr,      // Bitwise.
  kXor,
  kShl,     // Shift amount taken modulo width.
  kShr,     // Logical shift right (MiniC >> on non-negative corpus values).
  kEq,      // Result is 0/1 in W bits.
  kNe,
  kSlt,     // Signed less-than, 0/1 result.
  kSle,
  kBoolNot,  // !x : 0/1 result.
  kIte,      // a ? b : c  (a is a 0/1 value).
};

struct ExprNode {
  ExprOp op = ExprOp::kConst;
  int64_t imm = 0;      // kConst.
  int32_t var_id = -1;  // kVar.
  ExprRef a = kNoExpr;
  ExprRef b = kNoExpr;
  ExprRef c = kNoExpr;
  // Saturating tree size (ignores DAG sharing); used by the executor to
  // concretize runaway expressions before they make bit-blasting explode.
  uint32_t tree_size = 1;
};

class ExprPool {
 public:
  explicit ExprPool(int width = 32);

  int width() const { return width_; }
  uint64_t Mask() const { return width_ == 64 ? ~0ULL : ((1ULL << width_) - 1); }

  ExprRef Const(int64_t value);
  // Creates a fresh symbolic variable. `name` is for diagnostics.
  ExprRef FreshVar(const std::string& name);
  int num_vars() const { return static_cast<int>(var_names_.size()); }
  const std::string& VarName(int var_id) const { return var_names_[static_cast<size_t>(var_id)]; }

  ExprRef Unary(ExprOp op, ExprRef a);
  ExprRef Binary(ExprOp op, ExprRef a, ExprRef b);
  ExprRef Ite(ExprRef cond, ExprRef then_e, ExprRef else_e);

  // Builds the expression for a MiniC binary operator. Division/modulo by a
  // symbolic divisor is over-approximated with a fresh variable (the executor
  // has already forked on divisor==0); `made_fresh` reports that.
  ExprRef FromBinaryOp(lang::BinaryOp op, ExprRef a, ExprRef b, bool& made_fresh);
  ExprRef FromUnaryOp(lang::UnaryOp op, ExprRef a);

  // Boolean coercion: x != 0 as a 0/1 expression.
  ExprRef Truthy(ExprRef a);
  // Logical negation of a truthy value.
  ExprRef Falsy(ExprRef a);

  // Number of constructions the normalizing simplifier resolved without
  // interning a new node: constant folds, identity/annihilator rules (x&0,
  // x|0, x^x, x*1, shift-by-0, ...), double negation, self-comparisons, and
  // Ite with a constant condition or equal arms. Each avoided node is CNF the
  // bit-blaster never has to emit; many branch conditions collapse to
  // constants and never reach the SAT solver at all.
  uint64_t simplifier_folds() const { return simplifier_folds_; }

  const ExprNode& node(ExprRef ref) const { return nodes_[static_cast<size_t>(ref)]; }
  uint32_t TreeSize(ExprRef ref) const { return nodes_[static_cast<size_t>(ref)].tree_size; }
  size_t size() const { return nodes_.size(); }

  // Concrete evaluation under an assignment of variable values (sign-extended
  // from W bits into int64). Used by the sampling counter and by tests.
  int64_t Eval(ExprRef ref, const std::vector<int64_t>& var_values) const;

  // True if `ref` contains no kVar nodes.
  bool IsConcrete(ExprRef ref) const;

  std::string ToString(ExprRef ref) const;

  // Sign-extends a W-bit value into int64.
  int64_t SignExtend(uint64_t value) const;

 private:
  ExprRef Intern(const ExprNode& node);
  // Constant folding for fully-concrete operands.
  bool TryFold(const ExprNode& node, int64_t& out) const;

  int width_;
  uint64_t simplifier_folds_ = 0;
  std::vector<ExprNode> nodes_;
  std::vector<std::string> var_names_;
  std::unordered_map<uint64_t, std::vector<ExprRef>> intern_;
  mutable std::vector<int64_t> eval_cache_;
  mutable std::vector<uint32_t> eval_stamp_;
  mutable uint32_t eval_epoch_ = 0;
};

}  // namespace symx

#endif  // SRC_SYMEXEC_EXPR_H_
