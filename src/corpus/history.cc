#include "src/corpus/history.h"

#include <algorithm>
#include <utility>

#include "src/lang/parser.h"
#include "src/support/strings.h"

namespace corpus {
namespace {

// Mirrors ecosystem.cc's per-app stream salting (FNV-1a over the name);
// a distinct final xor keeps the history stream independent of both source
// generation and CVE sampling.
uint64_t NameHash(const std::string& name) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    hash = (hash ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  return hash;
}

constexpr uint64_t kHistorySalt = 0x5e1f9a3c0de1ULL;

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      if (start < text.size()) {
        lines.push_back(text.substr(start));
      }
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

// Rebuilds `text` with `insertions[line]` (1-based) spliced in after that
// line. Every generated file ends in a newline; the rebuild preserves that.
std::string SpliceLines(const std::string& text,
                        const std::map<int, std::vector<std::string>>& insertions) {
  const std::vector<std::string> lines = SplitLines(text);
  std::string out;
  out.reserve(text.size() + 64 * insertions.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    out += lines[i];
    out += '\n';
    const auto it = insertions.find(static_cast<int>(i) + 1);
    if (it != insertions.end()) {
      for (const auto& inserted : it->second) {
        out += inserted;
        out += '\n';
      }
    }
  }
  return out;
}

}  // namespace

cvedb::DayStamp CollectionDay() {
  // Same reference day the CVE generator uses (ecosystem.cc): the paper's
  // 2017 snapshot, 100 days in.
  return (2017 - 1999) * cvedb::kDaysPerYear + 100;
}

VersionHistory VersionHistory::ForApp(const EcosystemGenerator& ecosystem,
                                      const AppSpec& spec) {
  VersionHistory history;
  history.spec_ = spec;
  history.head_ = ecosystem.GenerateSourcesProfiled(spec);

  // Candidate functions in emission order, with the latent hazard profile
  // driving touch weights: hazardous and large functions churn more, so the
  // proc.* features carry label-correlated signal (as process metrics do on
  // real projects), without the attribution ever being read here.
  std::vector<double> weights;
  for (const auto& entry : history.head_) {
    if (entry.file.language != metrics::Language::kMiniC) {
      continue;
    }
    for (const auto& fn : entry.functions) {
      FunctionBirth birth;
      birth.path = entry.file.path;
      birth.name = fn.name;
      history.births_.push_back(std::move(birth));
      weights.push_back(fn.HazardWeight() + 0.25 +
                        static_cast<double>(fn.lines) / 50.0);
    }
  }
  if (history.births_.empty()) {
    return history;  // Non-C-family app: no MiniC history to model.
  }

  support::Rng rng(ecosystem.options().seed ^ NameHash(spec.name) ^ kHistorySalt);
  const cvedb::DayStamp start = spec.history_start;
  const cvedb::DayStamp span = std::max<cvedb::DayStamp>(
      spec.history_end - spec.history_start, 0);

  // Births: most functions date from the initial import; a minority appear
  // during the first quarter of the history, so age varies within one app.
  for (auto& birth : history.births_) {
    birth.born = start + static_cast<cvedb::DayStamp>(
                             rng.NextBelow(static_cast<uint64_t>(span / 4) + 1));
  }

  // Commit stream: size scales gently with the function count so the edit
  // stream stays cheap to materialize even for the largest apps.
  const uint64_t base = 6 + history.births_.size() / 6;
  const size_t commit_count =
      static_cast<size_t>(std::min<uint64_t>(base + rng.NextBelow(7), 48));
  std::vector<cvedb::DayStamp> days;
  days.reserve(commit_count);
  for (size_t j = 0; j < commit_count; ++j) {
    days.push_back(start + static_cast<cvedb::DayStamp>(
                               rng.NextBelow(static_cast<uint64_t>(span) + 1)));
  }
  std::sort(days.begin(), days.end());

  for (size_t j = 0; j < commit_count; ++j) {
    Commit commit;
    commit.index = static_cast<int>(j);
    commit.day = days[j];
    size_t touched = 1 + static_cast<size_t>(rng.NextBelow(3));
    touched = std::min(touched, history.births_.size());
    // Sample distinct functions, hazard+size weighted, without replacement.
    std::vector<double> local = weights;
    for (size_t t = 0; t < touched; ++t) {
      double total = 0.0;
      for (const double w : local) {
        total += w;
      }
      if (total <= 0.0) {
        break;
      }
      const size_t pick = rng.Categorical(local);
      local[pick] = 0.0;
      FunctionBirth& birth = history.births_[pick];
      FunctionEdit edit;
      edit.path = birth.path;
      edit.function = birth.name;
      edit.lines_added = 1 + static_cast<int>(rng.NextBelow(24));
      edit.lines_deleted = static_cast<int>(rng.NextBelow(16));
      commit.edits.push_back(std::move(edit));
      // A touch before the drawn birth day means the function existed
      // earlier than modeled; reconcile by moving the birth back.
      birth.born = std::min(birth.born, commit.day);
    }
    history.commits_.push_back(std::move(commit));
  }
  return history;
}

std::vector<metrics::SourceFile> VersionHistory::Materialize(size_t version) const {
  version = std::min(version, head_version());
  // Pending edits (commits not yet applied at `version`):
  // path -> function -> marker lines, in commit order.
  std::map<std::string, std::map<std::string, std::vector<std::string>>> pending;
  for (size_t j = version; j < commits_.size(); ++j) {
    const Commit& commit = commits_[j];
    for (size_t e = 0; e < commit.edits.size(); ++e) {
      const FunctionEdit& edit = commit.edits[e];
      // The marker models the old code the pending commit later replaces:
      // one inert declaration, unique per (commit, edit), parse- and
      // lower-clean, and token-visible so the diff planner sees the change.
      pending[edit.path][edit.function].push_back(
          support::Format("    int rev%d_%d = %d;", commit.index,
                          static_cast<int>(e), commit.index));
    }
  }

  std::vector<metrics::SourceFile> files;
  files.reserve(head_.size());
  for (const auto& entry : head_) {
    metrics::SourceFile file = entry.file;
    const auto file_pending = pending.find(file.path);
    if (file_pending != pending.end() &&
        file.language == metrics::Language::kMiniC) {
      auto unit = lang::Parse(file.text);
      if (unit.ok()) {
        std::map<int, std::vector<std::string>> insertions;
        for (const auto& fn : unit.value().functions) {
          const auto marks = file_pending->second.find(fn.name);
          if (marks != file_pending->second.end()) {
            auto& at_line = insertions[fn.line];
            at_line.insert(at_line.end(), marks->second.begin(),
                           marks->second.end());
          }
        }
        if (!insertions.empty()) {
          file.text = SpliceLines(file.text, insertions);
        }
      }
    }
    files.push_back(std::move(file));
  }
  return files;
}

std::map<std::string, std::map<std::string, metrics::ProcessMetrics>>
VersionHistory::ProcessMetricsAt(size_t version) const {
  version = std::min(version, head_version());
  const cvedb::DayStamp as_of =
      version >= commits_.size()
          ? std::max(CollectionDay(), spec_.history_end)
          : (version == 0 ? spec_.history_start : commits_[version - 1].day);

  std::map<std::string, std::map<std::string, metrics::ProcessMetrics>> out;
  std::map<std::string, std::map<std::string, cvedb::DayStamp>> last_change;
  for (const auto& birth : births_) {
    metrics::ProcessMetrics pm;
    pm.age_days = static_cast<double>(std::max<cvedb::DayStamp>(as_of - birth.born, 0));
    out[birth.path][birth.name] = pm;
    last_change[birth.path][birth.name] = birth.born;
  }
  for (size_t j = 0; j < version; ++j) {
    for (const auto& edit : commits_[j].edits) {
      auto& pm = out[edit.path][edit.function];
      pm.touches += 1.0;
      pm.lines_added += static_cast<double>(edit.lines_added);
      pm.lines_deleted += static_cast<double>(edit.lines_deleted);
      auto& last = last_change[edit.path][edit.function];
      last = std::max(last, commits_[j].day);
    }
  }
  for (auto& [path, fns] : out) {
    for (auto& [name, pm] : fns) {
      pm.days_since_change = static_cast<double>(
          std::max<cvedb::DayStamp>(as_of - last_change[path][name], 0));
    }
  }
  return out;
}

std::map<std::string, metrics::ProcessMetrics> VersionHistory::HeadProcessMetrics()
    const {
  std::map<std::string, metrics::ProcessMetrics> flat;
  for (const auto& [path, fns] : ProcessMetricsAt(head_version())) {
    for (const auto& [name, pm] : fns) {
      flat[path + "::" + name] = pm;
    }
  }
  return flat;
}

bool ApplyFunctionEdit(metrics::SourceFile& file, const std::string& function,
                       const std::string& statement) {
  if (file.language != metrics::Language::kMiniC) {
    return false;
  }
  auto unit = lang::Parse(file.text);
  if (!unit.ok()) {
    return false;
  }
  for (const auto& fn : unit.value().functions) {
    if (fn.name == function) {
      std::map<int, std::vector<std::string>> insertions;
      insertions[fn.line].push_back("    " + statement);
      file.text = SpliceLines(file.text, insertions);
      return true;
    }
  }
  return false;
}

}  // namespace corpus
