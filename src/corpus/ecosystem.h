// Synthetic open-source ecosystem generator — the repository's substitute
// for the NVD/CVE feed and the 164 real applications of the paper's study
// (see DESIGN.md §2 for the substitution argument).
//
// The generator draws, per application: a primary language (126 C / 20 C++ /
// 6 Python / 12 Java at the default scale), a size target (log-normal kLoC),
// a latent style (complexity, unsafety, taintiness, maturity), and a CVE
// history whose count follows the paper's Figure 2 marginal structure:
//
//   log10(vulns) = 0.17 + 0.39·log10(kLoC) + f(style) + noise
//
// with f(style) carrying signal that IS recoverable from the generated
// source text (the style knobs drive the code generator), and
// maturity+noise carrying variance that is NOT — calibrated so the log–log
// LoC regression lands near the paper's R² ≈ 24.66%. CVE records receive
// CWE classes and CVSS vectors from per-language, per-style profiles.
//
// Everything is deterministic given CorpusOptions::seed.
#ifndef SRC_CORPUS_ECOSYSTEM_H_
#define SRC_CORPUS_ECOSYSTEM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/cvedb/cvedb.h"
#include "src/metrics/cloc.h"
#include "src/metrics/extract.h"
#include "src/support/rng.h"

namespace corpus {

// Latent per-application style knobs, each in [0, 1].
struct AppStyle {
  double complexity = 0.5;  // Nesting, branches, function length.
  double unsafety = 0.5;    // Unchecked indexing, unguarded division.
  double taintiness = 0.5;  // Density of external input handling.
  double maturity = 0.5;    // Review/testing quality: suppresses vulns but
                            // is intentionally NOT visible in the code.
};

// Latent per-function hazard bookkeeping recorded while MiniC text is
// generated. This is the generator's ground truth about which functions
// carry the vulnerability patterns — the label model attributes synthetic
// CVEs to functions in proportion to HazardWeight(), and the ranking
// evaluator scores predictions against that attribution. Profiling is pure
// observation: it consumes no RNG draws, so profiled and unprofiled
// generation emit byte-identical text.
struct FunctionProfile {
  std::string name;
  int lines = 0;
  int unchecked_taint_index = 0;  // Unguarded array[externally-tainted].
  int unguarded_index = 0;        // Unguarded array[untainted index].
  int unguarded_div = 0;          // Division without a zero guard.
  int tainted_sinks = 0;          // Tainted value reaching sink()/print().

  // Relative odds that a CVE is rooted in this function. Unchecked tainted
  // indexing dominates (the paper's signature memory-safety pattern),
  // unguarded division and plain unguarded indexing follow, taint reaching
  // a sink contributes exposure.
  double HazardWeight() const {
    return 3.0 * unchecked_taint_index + 1.0 * unguarded_index +
           1.5 * unguarded_div + 0.5 * tainted_sinks;
  }
};

// A generated source file together with the generator's latent function
// profiles (empty for non-MiniC languages, which the structural analyses
// do not parse).
struct ProfiledSourceFile {
  metrics::SourceFile file;
  std::vector<FunctionProfile> functions;
};

struct AppSpec {
  std::string name;
  metrics::Language language = metrics::Language::kC;
  double kloc_nominal = 10.0;  // Unscaled size driving the vuln model.
  double kloc_target = 10.0;   // Scaled size actually generated
                               // (kloc_nominal × CorpusOptions::size_scale).
  AppStyle style;
  int vuln_count = 0;
  cvedb::DayStamp history_start = 0;
  cvedb::DayStamp history_end = 0;

  double HistoryYears() const {
    return static_cast<double>(history_end - history_start) / cvedb::kDaysPerYear;
  }
};

struct CorpusOptions {
  // Applications with a >= 5-year ("converging") CVE history; at the default
  // 164 the language mix matches the paper: 126 C, 20 C++, 6 Python, 12 Java.
  int mature_apps = 164;
  // Additional young applications that the selection policy must filter out.
  int immature_apps = 24;
  uint64_t seed = 20170508;  // HotOS'17 started 2017-05-08.
  // Scales every app's kLoC target; < 1 makes feature-extraction-heavy
  // experiments affordable without changing the corpus's statistical shape.
  double size_scale = 1.0;
  // Figure 2 calibration targets.
  double loc_log_intercept = 0.17;
  double loc_log_slope = 0.39;
  double target_r_squared = 0.2466;
};

class EcosystemGenerator {
 public:
  explicit EcosystemGenerator(const CorpusOptions& options);

  const CorpusOptions& options() const { return options_; }
  const std::vector<AppSpec>& specs() const { return specs_; }
  const cvedb::Database& database() const { return database_; }

  // Finds a spec by application name (nullptr if absent).
  const AppSpec* FindSpec(const std::string& name) const;

  // Generates the application's source files. Deterministic per app and
  // independent of generation order (each app forks its own RNG stream).
  std::vector<metrics::SourceFile> GenerateSources(const AppSpec& spec) const;

  // Same files (byte-identical text — profiling consumes no RNG draws), plus
  // the latent per-function hazard profiles for MiniC files.
  std::vector<ProfiledSourceFile> GenerateSourcesProfiled(const AppSpec& spec) const;

  // The function-granular label model: attributes each of the app's
  // `vuln_count` synthetic CVEs to a culpable function, sampled in
  // proportion to FunctionProfile::HazardWeight() (plus a small floor so
  // hazard-free functions stay reachable — real CVE root causes are
  // occasionally surprising). Keys are "path::function"; values are CVE
  // counts. Deterministic per app (own salted RNG stream, independent of
  // generation order). Empty for non-C-family apps, whose sources carry no
  // function profiles.
  std::map<std::string, int> AttributeCves(
      const AppSpec& spec, const std::vector<ProfiledSourceFile>& files) const;

 private:
  void GenerateSpecs();
  void GenerateCveHistories();

  CorpusOptions options_;
  std::vector<AppSpec> specs_;
  cvedb::Database database_;
};

}  // namespace corpus

#endif  // SRC_CORPUS_ECOSYSTEM_H_
