// The paper-survey corpus behind Figure 1: papers from five top venues
// tagged with the security-evaluation method(s) they use. Totals match the
// paper's reported numbers — 384 papers using lines of code, 116 using CVE
// report counts, 31 formally verified/proved — with the per-venue split
// read off the paper's stacked bars.
#ifndef SRC_CORPUS_SURVEY_H_
#define SRC_CORPUS_SURVEY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace corpus {

enum class EvalMethod : uint8_t { kLinesOfCode, kCveReports, kFormalVerification };
const char* EvalMethodName(EvalMethod method);

struct SurveyPaper {
  std::string title;
  std::string venue;  // "CCS", "PLDI", "SOSP", "ASPLOS", "EuroSys".
  EvalMethod method = EvalMethod::kLinesOfCode;
};

// The full tagged corpus (deterministic).
std::vector<SurveyPaper> GenerateSurveyCorpus();

// Venue order used in the figure.
const std::vector<std::string>& SurveyVenues();

// Counts papers using `method` at `venue`.
int CountSurvey(const std::vector<SurveyPaper>& papers, const std::string& venue,
                EvalMethod method);

}  // namespace corpus

#endif  // SRC_CORPUS_SURVEY_H_
