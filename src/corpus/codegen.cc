#include "src/corpus/codegen.h"

#include <vector>

#include "src/support/strings.h"

namespace corpus {
namespace {

const char* const kNouns[] = {"count", "size",  "index", "total", "value", "flag",
                              "state", "limit", "depth", "width", "score", "level"};
const char* const kVerbs[] = {"update", "compute", "handle", "process", "scan",
                              "merge",  "filter",  "pack",   "route",   "check"};

std::string Pick(support::Rng& rng, const char* const* table, size_t size) {
  return table[rng.NextBelow(size)];
}

// ---------------------------------------------------------------------------
// MiniC generation. The generator tracks declared scalar/array locals so it
// only references names that exist; everything it emits parses and lowers.
// ---------------------------------------------------------------------------

class MiniCGenerator {
 public:
  MiniCGenerator(support::Rng& rng, const AppStyle& style) : rng_(rng), style_(style) {}

  GeneratedMiniC GenerateProfiled(int target_lines) {
    GeneratedMiniC result;
    result.text = Generate(target_lines);
    result.functions = std::move(profiles_);
    return result;
  }

  std::string Generate(int target_lines) {
    EmitFileHeader();
    // A couple of globals.
    const int globals = 1 + static_cast<int>(rng_.NextBelow(3));
    for (int g = 0; g < globals; ++g) {
      const std::string name = support::Format("g_%s%d", Pick(rng_, kNouns, 12).c_str(), g);
      if (rng_.NextBool(0.3)) {
        Line(support::Format("int %s[%d];", name.c_str(),
                             8 << rng_.NextBelow(4)));
        global_arrays_.push_back({name, 8});
      } else {
        Line(support::Format("int %s = %d;", name.c_str(),
                             static_cast<int>(rng_.NextBelow(100))));
        global_scalars_.push_back(name);
      }
    }
    Blank();
    while (lines_ < target_lines) {
      EmitFunction();
      Blank();
    }
    return std::move(out_);
  }

 private:
  struct ArrayVar {
    std::string name;
    int size;
  };

  void Line(const std::string& text) {
    for (int i = 0; i < indent_; ++i) {
      out_ += "  ";
    }
    out_ += text;
    out_ += '\n';
    ++lines_;
  }

  void Blank() {
    out_ += '\n';
    ++lines_;
  }

  void EmitFileHeader() {
    Line(support::Format("// Module %04d — synthetic translation unit.",
                         static_cast<int>(rng_.NextBelow(10000))));
    const int extra = CommentBudget(3);
    for (int i = 0; i < extra; ++i) {
      Line("// Maintained by the build robot; do not edit by hand.");
    }
    Blank();
  }

  // More comments in mature-looking (low-complexity) code.
  int CommentBudget(int base) {
    const double ratio = 0.4 + 0.6 * (1.0 - style_.complexity);
    return static_cast<int>(base * ratio * rng_.NextDouble() * 2.0);
  }

  std::string FreshLocal(const char* stem) {
    return support::Format("%s_%d", stem, next_local_++);
  }

  // An expression over declared scalars and literals, `depth` controls size.
  std::string Expr(int depth) {
    if (depth <= 0 || scalars_.empty() || rng_.NextBool(0.3)) {
      if (!scalars_.empty() && rng_.NextBool(0.6)) {
        return scalars_[rng_.NextBelow(scalars_.size())];
      }
      // Magic numbers appear more in unsafe code.
      const bool magic = rng_.NextBool(0.2 + 0.4 * style_.unsafety);
      return std::to_string(magic ? 17 + rng_.NextBelow(4000)
                                  : rng_.NextBelow(3));
    }
    static const char* const kOps[] = {"+", "-", "*", "&", "|", "^"};
    return support::Format("(%s %s %s)", Expr(depth - 1).c_str(),
                           Pick(rng_, kOps, 6).c_str(), Expr(depth - 1).c_str());
  }

  std::string CondExpr() {
    if (scalars_.empty()) {
      return "1 < 2";
    }
    static const char* const kCmps[] = {"<", "<=", ">", ">=", "==", "!="};
    const std::string lhs = scalars_[rng_.NextBelow(scalars_.size())];
    const std::string rhs =
        rng_.NextBool(0.5) ? std::to_string(rng_.NextBelow(64))
                           : scalars_[rng_.NextBelow(scalars_.size())];
    std::string cond =
        support::Format("%s %s %s", lhs.c_str(), Pick(rng_, kCmps, 6).c_str(), rhs.c_str());
    if (rng_.NextBool(0.2 * style_.complexity)) {
      cond += rng_.NextBool() ? " && " : " || ";
      cond += support::Format("%s %s %d", scalars_[rng_.NextBelow(scalars_.size())].c_str(),
                              Pick(rng_, kCmps, 6).c_str(),
                              static_cast<int>(rng_.NextBelow(32)));
    }
    return cond;
  }

  void EmitDecl() {
    const std::string name = FreshLocal(Pick(rng_, kNouns, 12).c_str());
    if (rng_.NextBool(0.18)) {
      const int size = 4 << rng_.NextBelow(4);
      Line(support::Format("int %s[%d];", name.c_str(), size));
      arrays_.push_back({name, size});
    } else {
      Line(support::Format("int %s = %s;", name.c_str(), Expr(1).c_str()));
      scalars_.push_back(name);
    }
  }

  void EmitInputRead() {
    const std::string name = FreshLocal("in");
    Line(support::Format("int %s = input();", name.c_str()));
    scalars_.push_back(name);
    tainted_.push_back(name);
  }

  // The signature vulnerability pattern: index an array with (possibly
  // unchecked) externally controlled data.
  void EmitIndexing() {
    if (arrays_.empty()) {
      EmitDecl();
      if (arrays_.empty()) {
        return;
      }
    }
    const ArrayVar& arr = arrays_[rng_.NextBelow(arrays_.size())];
    std::string index;
    const bool use_taint = !tainted_.empty() && rng_.NextBool(0.35 + 0.5 * style_.taintiness);
    if (use_taint) {
      index = tainted_[rng_.NextBelow(tainted_.size())];
    } else if (!scalars_.empty()) {
      index = scalars_[rng_.NextBelow(scalars_.size())];
    } else {
      index = std::to_string(rng_.NextBelow(static_cast<uint64_t>(arr.size)));
    }
    const bool guard = !rng_.NextBool(0.15 + 0.7 * style_.unsafety);
    if (guard) {
      Line(support::Format("if (%s >= 0 && %s < %d) {", index.c_str(), index.c_str(),
                           arr.size));
      ++indent_;
      Line(support::Format("%s[%s] = %s;", arr.name.c_str(), index.c_str(),
                           Expr(1).c_str()));
      --indent_;
      Line("}");
    } else {
      Line(support::Format("%s[%s] = %s;", arr.name.c_str(), index.c_str(),
                           Expr(1).c_str()));
      if (use_taint) {
        ++current_.unchecked_taint_index;
      } else {
        ++current_.unguarded_index;
      }
    }
  }

  void EmitDivision() {
    if (scalars_.empty()) {
      return;
    }
    const std::string divisor = scalars_[rng_.NextBelow(scalars_.size())];
    const std::string name = FreshLocal("ratio");
    const bool guard = !rng_.NextBool(0.1 + 0.6 * style_.unsafety);
    if (guard) {
      Line(support::Format("int %s = 0;", name.c_str()));
      Line(support::Format("if (%s != 0) {", divisor.c_str()));
      ++indent_;
      Line(support::Format("%s = %s / %s;", name.c_str(), Expr(1).c_str(), divisor.c_str()));
      --indent_;
      Line("}");
    } else {
      Line(support::Format("int %s = %s / %s;", name.c_str(), Expr(1).c_str(),
                           divisor.c_str()));
      ++current_.unguarded_div;
    }
    scalars_.push_back(name);
  }

  void EmitSink() {
    if (scalars_.empty()) {
      return;
    }
    // Same short-circuit RNG order as the original ternary; the split lets
    // the profiler see whether the tainted branch was taken.
    const bool taint_sink = !tainted_.empty() && rng_.NextBool(0.6);
    const std::string& value = taint_sink ? tainted_[rng_.NextBelow(tainted_.size())]
                                          : scalars_[rng_.NextBelow(scalars_.size())];
    if (taint_sink) {
      ++current_.tainted_sinks;
    }
    Line(support::Format("%s(%s);", rng_.NextBool(0.4) ? "sink" : "print", value.c_str()));
  }

  void EmitCall() {
    if (functions_.empty()) {
      return;
    }
    const FunctionSig& callee = functions_[rng_.NextBelow(functions_.size())];
    std::string args;
    for (int p = 0; p < callee.params; ++p) {
      if (p > 0) {
        args += ", ";
      }
      args += scalars_.empty() ? std::to_string(rng_.NextBelow(16))
                               : scalars_[rng_.NextBelow(scalars_.size())];
    }
    const std::string name = FreshLocal("r");
    Line(support::Format("int %s = %s(%s);", name.c_str(), callee.name.c_str(),
                         args.c_str()));
    scalars_.push_back(name);
  }

  // Snapshot/restore of the visible-name lists so names declared inside a
  // nested block are not referenced after the block closes (that would fail
  // name resolution in the lowering pass).
  struct ScopeMark {
    size_t scalars;
    size_t arrays;
    size_t tainted;
  };

  ScopeMark OpenScope() const { return {scalars_.size(), arrays_.size(), tainted_.size()}; }

  void CloseScope(const ScopeMark& mark) {
    scalars_.resize(mark.scalars);
    arrays_.resize(mark.arrays);
    tainted_.resize(mark.tainted);
  }

  void EmitLoop(int depth) {
    const ScopeMark mark = OpenScope();
    const std::string iter = FreshLocal("i");
    const int bound = 2 + static_cast<int>(rng_.NextBelow(30));
    Line(support::Format("for (int %s = 0; %s < %d; ++%s) {", iter.c_str(), iter.c_str(),
                         bound, iter.c_str()));
    ++indent_;
    scalars_.push_back(iter);
    EmitBlockBody(depth - 1, 1 + static_cast<int>(rng_.NextBelow(3)));
    --indent_;
    Line("}");
    CloseScope(mark);
  }

  void EmitIf(int depth) {
    Line(support::Format("if (%s) {", CondExpr().c_str()));
    ++indent_;
    const ScopeMark then_mark = OpenScope();
    EmitBlockBody(depth - 1, 1 + static_cast<int>(rng_.NextBelow(3)));
    CloseScope(then_mark);
    --indent_;
    if (rng_.NextBool(0.4)) {
      Line("} else {");
      ++indent_;
      const ScopeMark else_mark = OpenScope();
      EmitBlockBody(depth - 1, 1 + static_cast<int>(rng_.NextBelow(2)));
      CloseScope(else_mark);
      --indent_;
    }
    Line("}");
  }

  void EmitSwitch(int depth) {
    if (scalars_.empty()) {
      return;
    }
    Line(support::Format("switch (%s) {", scalars_[rng_.NextBelow(scalars_.size())].c_str()));
    ++indent_;
    const int cases = 2 + static_cast<int>(rng_.NextBelow(4));
    for (int c = 0; c < cases; ++c) {
      Line(support::Format("case %d:", c));
      ++indent_;
      const ScopeMark mark = OpenScope();
      EmitBlockBody(depth - 1, 1);
      CloseScope(mark);
      Line("break;");
      --indent_;
    }
    Line("default:");
    ++indent_;
    const ScopeMark mark = OpenScope();
    EmitBlockBody(depth - 1, 1);
    CloseScope(mark);
    --indent_;
    --indent_;
    Line("}");
  }

  void EmitBlockBody(int depth, int statements) {
    for (int s = 0; s < statements; ++s) {
      const double roll = rng_.NextDouble();
      const double nest_p = depth > 0 ? 0.15 + 0.35 * style_.complexity : 0.0;
      // Taint-heavy applications genuinely read more external input: the
      // input-statement band widens with the style knob so the density is
      // recoverable from the code (dataflow.input_sites_per_kloc).
      const double input_w = 0.04 + 0.20 * style_.taintiness;
      if (roll < nest_p) {
        const double which = rng_.NextDouble();
        if (which < 0.45) {
          EmitIf(depth);
        } else if (which < 0.8) {
          EmitLoop(depth);
        } else {
          EmitSwitch(depth);
        }
      } else if (roll < nest_p + input_w) {
        EmitInputRead();
      } else if (roll < nest_p + input_w + 0.20) {
        EmitIndexing();
      } else if (roll < nest_p + input_w + 0.30) {
        EmitDivision();
      } else if (roll < nest_p + input_w + 0.38) {
        EmitSink();
      } else if (roll < nest_p + input_w + 0.48) {
        EmitCall();
      } else if (roll < nest_p + input_w + 0.66) {
        EmitDecl();
      } else if (!scalars_.empty()) {
        // Plain assignment / update.
        const std::string& target = scalars_[rng_.NextBelow(scalars_.size())];
        Line(support::Format("%s %s %s;", target.c_str(),
                             rng_.NextBool(0.5) ? "=" : "+=", Expr(2).c_str()));
      } else {
        EmitDecl();
      }
    }
  }

  void EmitFunction() {
    scalars_.clear();
    arrays_.clear();
    tainted_.clear();
    current_ = FunctionProfile{};
    // Globals are in scope everywhere.
    for (const auto& g : global_scalars_) {
      scalars_.push_back(g);
    }
    const std::string name = support::Format(
        "%s_%s_%d", Pick(rng_, kVerbs, 10).c_str(), Pick(rng_, kNouns, 12).c_str(),
        next_function_++);
    const int params = static_cast<int>(rng_.NextBelow(
        2 + static_cast<uint64_t>(4.0 * style_.complexity)));
    std::string signature = "int " + name + "(";
    for (int p = 0; p < params; ++p) {
      if (p > 0) {
        signature += ", ";
      }
      const std::string param = support::Format("arg%d", p);
      signature += "int " + param;
      scalars_.push_back(param);
    }
    signature += ") {";
    const int budget = CommentBudget(2);
    for (int i = 0; i < budget; ++i) {
      Line(support::Format("// %s the %s buffer.", Pick(rng_, kVerbs, 10).c_str(),
                           Pick(rng_, kNouns, 12).c_str()));
    }
    const int body_start = lines_;
    Line(signature);
    ++indent_;
    const int depth = 1 + static_cast<int>(rng_.NextBelow(
        1 + static_cast<uint64_t>(3.0 * style_.complexity)));
    const int statements = 4 + static_cast<int>(rng_.NextBelow(8));
    EmitBlockBody(depth, statements);
    Line(support::Format("return %s;", Expr(1).c_str()));
    --indent_;
    Line("}");
    functions_.push_back({name, params});
    current_.name = name;
    current_.lines = lines_ - body_start;
    profiles_.push_back(std::move(current_));
  }

  support::Rng& rng_;
  const AppStyle& style_;
  std::string out_;
  int lines_ = 0;
  int indent_ = 0;
  int next_local_ = 0;
  int next_function_ = 0;
  std::vector<std::string> scalars_;
  std::vector<ArrayVar> arrays_;
  std::vector<std::string> tainted_;
  struct FunctionSig {
    std::string name;
    int params;
  };
  std::vector<FunctionSig> functions_;
  std::vector<std::string> global_scalars_;
  std::vector<ArrayVar> global_arrays_;
  FunctionProfile current_;
  std::vector<FunctionProfile> profiles_;
};

}  // namespace

std::string GenerateMiniCFile(support::Rng& rng, const AppStyle& style, int target_lines) {
  return MiniCGenerator(rng, style).Generate(target_lines);
}

GeneratedMiniC GenerateMiniCFileProfiled(support::Rng& rng, const AppStyle& style,
                                         int target_lines) {
  return MiniCGenerator(rng, style).GenerateProfiled(target_lines);
}

std::string GeneratePythonFile(support::Rng& rng, const AppStyle& style, int target_lines) {
  std::string out = "# Synthetic module.\n\"\"\"Docstring describing the module.\n";
  int lines = 2;
  const int doc = 1 + static_cast<int>(rng.NextBelow(4));
  for (int i = 0; i < doc; ++i) {
    out += "Detailed behaviour notes for maintainers.\n";
    ++lines;
  }
  out += "\"\"\"\n\n";
  lines += 2;
  int fn = 0;
  while (lines < target_lines) {
    out += support::Format("def %s_%s_%d(value, limit):\n", Pick(rng, kVerbs, 10).c_str(),
                           Pick(rng, kNouns, 12).c_str(), fn++);
    ++lines;
    if (rng.NextBool(0.5 * (1.0 - style.complexity) + 0.2)) {
      out += "    # Normalise the inputs before processing.\n";
      ++lines;
    }
    const int body = 3 + static_cast<int>(rng.NextBelow(8));
    for (int s = 0; s < body; ++s) {
      const double roll = rng.NextDouble();
      if (roll < 0.3 * style.complexity) {
        out += support::Format("    if value > %d:\n        value -= limit\n",
                               static_cast<int>(rng.NextBelow(100)));
        lines += 2;
      } else if (roll < 0.5) {
        out += support::Format("    value = value * %d + %d\n",
                               static_cast<int>(rng.NextBelow(9) + 1),
                               static_cast<int>(rng.NextBelow(17)));
        ++lines;
      } else if (roll < 0.6) {
        out += "    value = parse_external(value)\n";
        ++lines;
      } else {
        out += support::Format("    limit = limit + %d\n",
                               static_cast<int>(rng.NextBelow(5)));
        ++lines;
      }
    }
    out += "    return value\n\n";
    lines += 2;
  }
  return out;
}

std::string GenerateJavaFile(support::Rng& rng, const AppStyle& style, int target_lines) {
  std::string out = support::Format(
      "/* Synthetic class. */\npublic class Module%04d {\n",
      static_cast<int>(rng.NextBelow(10000)));
  int lines = 2;
  int fn = 0;
  while (lines < target_lines - 1) {
    if (rng.NextBool(0.4 * (1.0 - style.complexity) + 0.2)) {
      out += "    // Validates and transforms the payload.\n";
      ++lines;
    }
    out += support::Format("    public int %s%s%d(int value, int limit) {\n",
                           Pick(rng, kVerbs, 10).c_str(), Pick(rng, kNouns, 12).c_str(),
                           fn++);
    ++lines;
    const int body = 3 + static_cast<int>(rng.NextBelow(8));
    for (int s = 0; s < body; ++s) {
      const double roll = rng.NextDouble();
      if (roll < 0.3 * style.complexity) {
        out += support::Format("        if (value > %d) { value -= limit; }\n",
                               static_cast<int>(rng.NextBelow(100)));
        ++lines;
      } else {
        out += support::Format("        value = value * %d + %d;\n",
                               static_cast<int>(rng.NextBelow(9) + 1),
                               static_cast<int>(rng.NextBelow(17)));
        ++lines;
      }
    }
    out += "        return value;\n    }\n\n";
    lines += 3;
  }
  out += "}\n";
  return out;
}

}  // namespace corpus
