#include "src/corpus/survey.h"

#include "src/support/strings.h"

namespace corpus {

const char* EvalMethodName(EvalMethod method) {
  switch (method) {
    case EvalMethod::kLinesOfCode:
      return "lines-of-code";
    case EvalMethod::kCveReports:
      return "cve-reports";
    case EvalMethod::kFormalVerification:
      return "formal-verification";
  }
  return "<bad>";
}

const std::vector<std::string>& SurveyVenues() {
  static const std::vector<std::string> kVenues = {"CCS", "PLDI", "SOSP", "ASPLOS",
                                                   "EuroSys"};
  return kVenues;
}

std::vector<SurveyPaper> GenerateSurveyCorpus() {
  // Per-venue counts read off the paper's Figure 1 stacked bars; each row
  // sums to the paper's totals (384 / 116 / 31).
  struct VenueCounts {
    const char* venue;
    int loc;
    int cve;
    int formal;
  };
  static const VenueCounts kCounts[] = {
      {"CCS", 150, 80, 12}, {"PLDI", 40, 5, 8},    {"SOSP", 60, 10, 6},
      {"ASPLOS", 70, 12, 2}, {"EuroSys", 64, 9, 3},
  };
  std::vector<SurveyPaper> papers;
  int serial = 1;
  for (const auto& row : kCounts) {
    auto emit = [&](int count, EvalMethod method) {
      for (int i = 0; i < count; ++i) {
        SurveyPaper paper;
        paper.title = support::Format("%s paper #%03d", row.venue, serial++);
        paper.venue = row.venue;
        paper.method = method;
        papers.push_back(std::move(paper));
      }
    };
    emit(row.loc, EvalMethod::kLinesOfCode);
    emit(row.cve, EvalMethod::kCveReports);
    emit(row.formal, EvalMethod::kFormalVerification);
  }
  return papers;
}

int CountSurvey(const std::vector<SurveyPaper>& papers, const std::string& venue,
                EvalMethod method) {
  int count = 0;
  for (const auto& paper : papers) {
    if (paper.venue == venue && paper.method == method) {
      ++count;
    }
  }
  return count;
}

}  // namespace corpus
