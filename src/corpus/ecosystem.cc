#include "src/corpus/ecosystem.h"

#include <algorithm>
#include <cmath>

#include "src/corpus/codegen.h"
#include "src/cvss/cwe.h"
#include "src/support/strings.h"

namespace corpus {
namespace {

const char* const kNamePrefixes[] = {"open", "lib",  "net",   "fast", "micro", "core",
                                     "sys",  "data", "turbo", "zen",  "iron",  "ultra"};
const char* const kNameStems[] = {"cache", "proxy", "parse", "mail",  "http", "vault",
                                  "queue", "forge", "store", "trace", "gate", "sock"};

// April 2017 (data-collection date in the paper), in days since 1999-01-01.
constexpr cvedb::DayStamp kCollectionDay = (2017 - 1999) * cvedb::kDaysPerYear + 100;

metrics::Language PickLanguage(int index, int total) {
  // Deterministic proportional mix: 126 C : 20 C++ : 6 Python : 12 Java.
  const double f = (static_cast<double>(index) + 0.5) / total;
  if (f < 126.0 / 164.0) {
    return metrics::Language::kC;
  }
  if (f < 146.0 / 164.0) {
    return metrics::Language::kCpp;
  }
  if (f < 152.0 / 164.0) {
    return metrics::Language::kPython;
  }
  return metrics::Language::kJava;
}

bool IsCFamily(metrics::Language lang) {
  return lang == metrics::Language::kC || lang == metrics::Language::kCpp ||
         lang == metrics::Language::kMiniC;
}

// CWE sampling profiles: (cwe id, weight) per language family; unsafety
// tilts the memory-safety mass for C-family apps.
int SampleCwe(support::Rng& rng, metrics::Language lang, const AppStyle& style) {
  struct Entry {
    int cwe;
    double weight;
  };
  static const Entry kCFamily[] = {
      {cvss::kCweStackBufferOverflow, 14.0}, {cvss::kCweHeapBufferOverflow, 10.0},
      {cvss::kCweOutOfBoundsRead, 12.0},     {cvss::kCweOutOfBoundsWrite, 10.0},
      {cvss::kCweUseAfterFree, 8.0},         {cvss::kCweDoubleFree, 3.0},
      {cvss::kCweNullDeref, 8.0},            {cvss::kCweIntegerOverflow, 7.0},
      {cvss::kCweDivideByZero, 2.0},         {cvss::kCweInputValidation, 8.0},
      {cvss::kCwePathTraversal, 3.0},        {cvss::kCweFormatString, 3.0},
      {cvss::kCweCommandInjection, 3.0},     {cvss::kCweInfoExposure, 4.0},
      {cvss::kCweAuthBypass, 2.0},           {cvss::kCweRaceCondition, 3.0},
      {cvss::kCweResourceExhaustion, 3.0},   {cvss::kCweWeakCrypto, 2.0},
  };
  static const Entry kManaged[] = {
      {cvss::kCweSqlInjection, 12.0},      {cvss::kCweXss, 12.0},
      {cvss::kCweCommandInjection, 6.0},   {cvss::kCwePathTraversal, 8.0},
      {cvss::kCweInputValidation, 14.0},   {cvss::kCweAuthBypass, 10.0},
      {cvss::kCweInfoExposure, 10.0},      {cvss::kCwePermissions, 6.0},
      {cvss::kCweWeakCrypto, 8.0},         {cvss::kCweHardcodedCreds, 4.0},
      {cvss::kCweResourceExhaustion, 5.0}, {cvss::kCweIntegerOverflow, 3.0},
      {cvss::kCweRaceCondition, 2.0},
  };
  std::vector<double> weights;
  const Entry* table;
  size_t size;
  if (IsCFamily(lang)) {
    table = kCFamily;
    size = sizeof(kCFamily) / sizeof(kCFamily[0]);
  } else {
    table = kManaged;
    size = sizeof(kManaged) / sizeof(kManaged[0]);
  }
  weights.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    double w = table[i].weight;
    if (cvss::CategoryOf(table[i].cwe) == cvss::CweCategory::kMemorySafety) {
      w *= 0.6 + 0.8 * style.unsafety;
    }
    weights.push_back(w);
  }
  return table[rng.Categorical(weights)].cwe;
}

cvss::Vector SampleCvssVector(support::Rng& rng, int cwe, const AppStyle& style) {
  cvss::Vector v;
  // Attack vector: network bias grows with how much external input the app
  // handles.
  const double p_network = 0.40 + 0.35 * style.taintiness;
  const double roll = rng.NextDouble();
  if (roll < p_network) {
    v.av = cvss::AttackVector::kNetwork;
  } else if (roll < p_network + 0.15) {
    v.av = cvss::AttackVector::kAdjacent;
  } else if (roll < p_network + 0.50) {
    v.av = cvss::AttackVector::kLocal;
  } else {
    v.av = cvss::AttackVector::kPhysical;
  }
  v.ac = rng.NextBool(0.65) ? cvss::AttackComplexity::kLow : cvss::AttackComplexity::kHigh;
  const double pr_roll = rng.NextDouble();
  v.pr = pr_roll < 0.55   ? cvss::PrivilegesRequired::kNone
         : pr_roll < 0.85 ? cvss::PrivilegesRequired::kLow
                          : cvss::PrivilegesRequired::kHigh;
  v.ui = rng.NextBool(0.7) ? cvss::UserInteraction::kNone : cvss::UserInteraction::kRequired;
  v.scope = rng.NextBool(0.12) ? cvss::Scope::kChanged : cvss::Scope::kUnchanged;

  auto impact = [&rng](double p_high, double p_low) {
    const double r = rng.NextDouble();
    if (r < p_high) {
      return cvss::Impact::kHigh;
    }
    if (r < p_high + p_low) {
      return cvss::Impact::kLow;
    }
    return cvss::Impact::kNone;
  };
  switch (cvss::CategoryOf(cwe)) {
    case cvss::CweCategory::kMemorySafety:
      v.confidentiality = impact(0.55, 0.25);
      v.integrity = impact(0.55, 0.25);
      v.availability = impact(0.70, 0.20);
      break;
    case cvss::CweCategory::kInjection:
      v.confidentiality = impact(0.65, 0.25);
      v.integrity = impact(0.60, 0.25);
      v.availability = impact(0.25, 0.35);
      break;
    case cvss::CweCategory::kInformationLeak:
      v.confidentiality = impact(0.75, 0.25);
      v.integrity = impact(0.05, 0.20);
      v.availability = impact(0.05, 0.15);
      break;
    case cvss::CweCategory::kAccessControl:
      v.confidentiality = impact(0.50, 0.30);
      v.integrity = impact(0.50, 0.30);
      v.availability = impact(0.20, 0.30);
      break;
    case cvss::CweCategory::kResourceManagement:
      v.confidentiality = impact(0.05, 0.15);
      v.integrity = impact(0.05, 0.15);
      v.availability = impact(0.80, 0.15);
      break;
    default:
      v.confidentiality = impact(0.35, 0.35);
      v.integrity = impact(0.35, 0.35);
      v.availability = impact(0.35, 0.35);
      break;
  }
  // Ensure at least some impact (a CVE with no impact would not be filed).
  if (v.confidentiality == cvss::Impact::kNone && v.integrity == cvss::Impact::kNone &&
      v.availability == cvss::Impact::kNone) {
    v.availability = cvss::Impact::kLow;
  }
  return v;
}

}  // namespace

EcosystemGenerator::EcosystemGenerator(const CorpusOptions& options) : options_(options) {
  GenerateSpecs();
  GenerateCveHistories();
}

const AppSpec* EcosystemGenerator::FindSpec(const std::string& name) const {
  for (const auto& spec : specs_) {
    if (spec.name == name) {
      return &spec;
    }
  }
  return nullptr;
}

void EcosystemGenerator::GenerateSpecs() {
  support::Rng rng(options_.seed);
  const int total = options_.mature_apps + options_.immature_apps;
  // Noise budget: the style terms plus residual noise must leave the log–log
  // LoC regression at target_r_squared given slope and Var(log10 kLoC).
  const double x_sigma = 0.75;
  const double explained = options_.loc_log_slope * options_.loc_log_slope * x_sigma * x_sigma;
  const double noise_total =
      explained * (1.0 - options_.target_r_squared) / options_.target_r_squared;
  // Four uniform style terms with coefficient alpha contribute
  // 4·alpha²/12 of variance; the Gaussian residual supplies the rest.
  const double alpha = 0.55;
  const double style_var = 4.0 * alpha * alpha / 12.0;
  const double residual_sigma = std::sqrt(std::max(noise_total - style_var, 0.01));

  for (int i = 0; i < total; ++i) {
    AppSpec spec;
    const bool mature = i < options_.mature_apps;
    spec.language = PickLanguage(mature ? i : i - options_.mature_apps,
                                 mature ? options_.mature_apps : options_.immature_apps);
    spec.name = support::Format("%s%s%02d", kNamePrefixes[rng.NextBelow(12)],
                                kNameStems[rng.NextBelow(12)], i);
    double log_kloc = rng.Normal(1.55, x_sigma);
    log_kloc = std::clamp(log_kloc, 0.0, 3.1);
    spec.kloc_nominal = std::pow(10.0, log_kloc);
    spec.kloc_target = spec.kloc_nominal * options_.size_scale;
    spec.style.complexity = rng.NextDouble();
    spec.style.unsafety = rng.NextDouble();
    spec.style.taintiness = rng.NextDouble();
    spec.style.maturity = rng.NextDouble();

    double log_vulns = options_.loc_log_intercept + options_.loc_log_slope * log_kloc +
                       alpha * (spec.style.complexity - 0.5) +
                       alpha * (spec.style.unsafety - 0.5) +
                       alpha * (spec.style.taintiness - 0.5) -
                       alpha * (spec.style.maturity - 0.5) +
                       rng.Normal(0.0, residual_sigma);
    if (spec.language == metrics::Language::kJava) {
      // The paper's (small) Java sample shows systematically fewer vulns.
      log_vulns -= 0.25;
    }
    // At least two reports: a converging history needs both a first and a
    // last CVE to define its span.
    spec.vuln_count =
        std::max(2, static_cast<int>(std::lround(std::pow(10.0, log_vulns))));

    if (mature) {
      const double span_years = 5.0 + rng.Uniform(0.0, 13.0);
      spec.history_end = kCollectionDay - static_cast<cvedb::DayStamp>(rng.NextBelow(200));
      spec.history_start =
          spec.history_end -
          static_cast<cvedb::DayStamp>(span_years * cvedb::kDaysPerYear);
    } else {
      const double span_years = rng.Uniform(0.2, 4.5);
      spec.history_end = kCollectionDay - static_cast<cvedb::DayStamp>(rng.NextBelow(200));
      spec.history_start =
          spec.history_end -
          static_cast<cvedb::DayStamp>(span_years * cvedb::kDaysPerYear);
      spec.vuln_count = 1 + static_cast<int>(rng.NextBelow(5));
    }
    specs_.push_back(std::move(spec));
  }
}

void EcosystemGenerator::GenerateCveHistories() {
  support::Rng rng(options_.seed ^ 0xc0ffee);
  int sequence = 10000;
  for (const auto& spec : specs_) {
    support::Rng app_rng = rng.Fork();
    for (int k = 0; k < spec.vuln_count; ++k) {
      cvedb::CveRecord record;
      // Pin the first and last report to the span endpoints so the selected
      // history length is exact; the rest fall uniformly in between.
      if (k == 0) {
        record.published = spec.history_start;
      } else if (k == 1) {
        record.published = spec.history_end;
      } else {
        record.published =
            spec.history_start +
            static_cast<cvedb::DayStamp>(app_rng.NextBelow(static_cast<uint64_t>(
                spec.history_end - spec.history_start + 1)));
      }
      record.app = spec.name;
      record.cwe = SampleCwe(app_rng, spec.language, spec.style);
      record.vector = SampleCvssVector(app_rng, record.cwe, spec.style);
      record.id = support::Format("CVE-%d-%05d", record.Year(), sequence++);
      database_.Add(std::move(record));
    }
  }
}

namespace {

// FNV-1a over the app name: the per-app stream selector for source
// generation and CVE attribution (different salts keep the two independent).
uint64_t AppHash(const std::string& name) {
  uint64_t app_hash = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    app_hash = (app_hash ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  return app_hash;
}

}  // namespace

std::vector<metrics::SourceFile> EcosystemGenerator::GenerateSources(
    const AppSpec& spec) const {
  auto profiled = GenerateSourcesProfiled(spec);
  std::vector<metrics::SourceFile> files;
  files.reserve(profiled.size());
  for (auto& entry : profiled) {
    files.push_back(std::move(entry.file));
  }
  return files;
}

std::vector<ProfiledSourceFile> EcosystemGenerator::GenerateSourcesProfiled(
    const AppSpec& spec) const {
  // Per-app deterministic stream, independent of other apps.
  support::Rng rng(options_.seed ^ AppHash(spec.name));
  std::vector<ProfiledSourceFile> files;
  long long remaining = static_cast<long long>(spec.kloc_target * 1000.0);
  remaining = std::max(remaining, 60LL);
  int index = 0;
  while (remaining > 0) {
    const int target =
        static_cast<int>(std::min<long long>(remaining, 150 + rng.NextBelow(350)));
    ProfiledSourceFile entry;
    metrics::SourceFile& file = entry.file;
    switch (spec.language) {
      case metrics::Language::kC:
      case metrics::Language::kCpp:
      case metrics::Language::kMiniC: {
        file.language = metrics::Language::kMiniC;
        file.path = support::Format("%s/src/module_%04d.%s", spec.name.c_str(), index,
                                    spec.language == metrics::Language::kCpp ? "cc" : "c");
        GeneratedMiniC generated = GenerateMiniCFileProfiled(rng, spec.style, target);
        file.text = std::move(generated.text);
        entry.functions = std::move(generated.functions);
        break;
      }
      case metrics::Language::kPython:
        file.language = metrics::Language::kPython;
        file.path = support::Format("%s/src/module_%04d.py", spec.name.c_str(), index);
        file.text = GeneratePythonFile(rng, spec.style, target);
        break;
      case metrics::Language::kJava:
        file.language = metrics::Language::kJava;
        file.path = support::Format("%s/src/Module%04d.java", spec.name.c_str(), index);
        file.text = GenerateJavaFile(rng, spec.style, target);
        break;
    }
    // Count what was actually produced (generators overshoot slightly).
    long long produced = 0;
    for (const char c : file.text) {
      if (c == '\n') {
        ++produced;
      }
    }
    remaining -= std::max(produced, 1LL);
    files.push_back(std::move(entry));
    ++index;
  }
  return files;
}

std::map<std::string, int> EcosystemGenerator::AttributeCves(
    const AppSpec& spec, const std::vector<ProfiledSourceFile>& files) const {
  std::map<std::string, int> attribution;
  if (!IsCFamily(spec.language)) {
    return attribution;
  }
  // Flatten the corpus's functions with their hazard mass. The floor keeps
  // every function reachable: attribution truth should be concentrated on
  // hazardous code, not perfectly aligned with it, or ranking would be a
  // trivially solvable pattern-match.
  constexpr double kBaseWeight = 0.05;
  std::vector<std::string> keys;
  std::vector<double> weights;
  for (const auto& entry : files) {
    for (const auto& fn : entry.functions) {
      keys.push_back(entry.file.path + "::" + fn.name);
      weights.push_back(fn.HazardWeight() + kBaseWeight);
    }
  }
  if (keys.empty()) {
    return attribution;
  }
  // Fresh salted stream: independent of both source generation and CVE
  // history sampling, and of the order apps are processed in.
  support::Rng rng(options_.seed ^ AppHash(spec.name) ^ 0xa77b1b07e0ULL);
  for (int k = 0; k < spec.vuln_count; ++k) {
    ++attribution[keys[rng.Categorical(weights)]];
  }
  return attribution;
}

}  // namespace corpus
