// Per-commit version history for synthetic applications.
//
// The ecosystem generator models each app's multi-year CVE history; this
// layer materializes the matching *source* history: a deterministic stream
// of commits, each touching a few functions (hazard- and size-weighted, so
// churn correlates with where vulnerabilities live, as it does in real
// projects), with day stamps spread over [history_start, history_end].
//
// Two consumers:
//   - the incremental-extraction layer replays adjacent versions through
//     the diff planner (a commit's touched set is the ground truth the
//     planner must recover), and
//   - the function-rank extractor derives proc.* process features (churn,
//     age, touch counts — Viszkok et al., PAPERS.md) from the same stream.
//
// Version k is "the tree after the first k commits"; the final version is
// byte-identical to EcosystemGenerator::GenerateSources, so HEAD sweeps are
// unaffected by the history machinery. Earlier versions differ from HEAD
// only inside the functions later commits touch (one marker declaration per
// pending edit, inserted after the function's opening line) — token streams
// of untouched functions are identical across versions by construction.
#ifndef SRC_CORPUS_HISTORY_H_
#define SRC_CORPUS_HISTORY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/corpus/ecosystem.h"
#include "src/metrics/extract.h"

namespace corpus {

// One function modification inside a commit.
struct FunctionEdit {
  std::string path;
  std::string function;
  int lines_added = 0;   // Modeled churn (metadata for proc.* features).
  int lines_deleted = 0;
};

struct Commit {
  int index = 0;            // Chronological, 0-based.
  cvedb::DayStamp day = 0;  // Within the app's [history_start, history_end].
  std::vector<FunctionEdit> edits;  // Distinct functions per commit.
};

// The day the paper's study snapshots the ecosystem (mirrors the CVE
// database's collection day in ecosystem.cc).
cvedb::DayStamp CollectionDay();

class VersionHistory {
 public:
  // Builds the app's deterministic edit stream. Independent of generation
  // order (fresh salted RNG stream per app) and consumes no draws from the
  // source generator, so HEAD text is unaffected.
  static VersionHistory ForApp(const EcosystemGenerator& ecosystem,
                               const AppSpec& spec);

  const AppSpec& spec() const { return spec_; }
  const std::vector<Commit>& commits() const { return commits_; }

  // Versions 0..commits().size(); num_versions()-1 is HEAD.
  size_t num_versions() const { return commits_.size() + 1; }
  size_t head_version() const { return commits_.size(); }

  // Source tree after the first `version` commits. Materialize(head_version())
  // returns GenerateSources(spec) byte-for-byte; earlier versions carry one
  // pending-edit marker declaration per not-yet-applied edit.
  std::vector<metrics::SourceFile> Materialize(size_t version) const;

  // Process metrics as of `version`, keyed path -> function name. Ages and
  // recency are measured from the last applied commit's day (or the
  // collection day for HEAD); churn counts fold the applied prefix of the
  // stream.
  std::map<std::string, std::map<std::string, metrics::ProcessMetrics>>
  ProcessMetricsAt(size_t version) const;

  // HEAD process metrics flattened to "path::function" keys (the label
  // model's key shape).
  std::map<std::string, metrics::ProcessMetrics> HeadProcessMetrics() const;

 private:
  struct FunctionBirth {
    std::string path;
    std::string name;
    cvedb::DayStamp born = 0;
  };

  AppSpec spec_;
  std::vector<ProfiledSourceFile> head_;  // HEAD text + latent profiles.
  std::vector<FunctionBirth> births_;     // Emission order.
  std::vector<Commit> commits_;
};

// Applies a synthetic one-line edit to `function` inside `file`: inserts
// `statement` (a complete MiniC statement, e.g. "int hotfix = 1;") after the
// function's opening line. Returns false when the file does not parse or has
// no such function. Shared by the incremental bench, the CI-gate example,
// and tests — a reproducible "developer touched one function" event.
bool ApplyFunctionEdit(metrics::SourceFile& file, const std::string& function,
                       const std::string& statement);

}  // namespace corpus

#endif  // SRC_CORPUS_HISTORY_H_
