// Source-text generators for the synthetic corpus. The MiniC generator
// emits parseable translation units whose structure reflects the app's
// latent style (complexity, unsafety, taintiness) so the static analyses
// can recover that signal; the Python/Java generators emit text with
// realistic line-class and declaration structure for the text-level
// extractors.
#ifndef SRC_CORPUS_CODEGEN_H_
#define SRC_CORPUS_CODEGEN_H_

#include <string>
#include <vector>

#include "src/corpus/ecosystem.h"
#include "src/support/rng.h"

namespace corpus {

// `FunctionProfile` (the per-function hazard bookkeeping filled in during
// generation) lives in ecosystem.h next to the rest of the latent ground
// truth; this header only adds the profiled entry point.
struct GeneratedMiniC {
  std::string text;
  std::vector<FunctionProfile> functions;  // In emission order.
};

// Generates one MiniC translation unit of roughly `target_lines` lines.
// Guaranteed to parse and lower cleanly (validated by tests over many seeds).
std::string GenerateMiniCFile(support::Rng& rng, const AppStyle& style, int target_lines);

// Same text, plus the per-function hazard profiles (same RNG consumption:
// GenerateMiniCFile(rng, ...) == GenerateMiniCFileProfiled(rng, ...).text
// for equal starting rng states).
GeneratedMiniC GenerateMiniCFileProfiled(support::Rng& rng, const AppStyle& style,
                                         int target_lines);

// Generates Python-flavoured text (defs, #-comments, docstrings).
std::string GeneratePythonFile(support::Rng& rng, const AppStyle& style, int target_lines);

// Generates Java-flavoured text (class with methods, /* */ and // comments).
std::string GenerateJavaFile(support::Rng& rng, const AppStyle& style, int target_lines);

}  // namespace corpus

#endif  // SRC_CORPUS_CODEGEN_H_
