#include "src/attack/surface.h"

#include <cmath>
#include <limits>

namespace attack {

const char* SurfaceElementName(SurfaceElement element) {
  switch (element) {
    case SurfaceElement::kOpenSocket:
      return "open-socket";
    case SurfaceElement::kRpcEndpoint:
      return "rpc-endpoint";
    case SurfaceElement::kNamedPipe:
      return "named-pipe";
    case SurfaceElement::kDefaultService:
      return "default-service";
    case SurfaceElement::kPrivilegedService:
      return "privileged-service";
    case SurfaceElement::kWebHandler:
      return "web-handler";
    case SurfaceElement::kDynamicContentPage:
      return "dynamic-content-page";
    case SurfaceElement::kEnabledAccount:
      return "enabled-account";
    case SurfaceElement::kAdminAccount:
      return "admin-account";
    case SurfaceElement::kGuestAccessPath:
      return "guest-access-path";
    case SurfaceElement::kWeakAcl:
      return "weak-acl";
    case SurfaceElement::kWorldWritableFile:
      return "world-writable-file";
    case SurfaceElement::kEnvironmentInput:
      return "environment-input";
    case SurfaceElement::kCommandLineInput:
      return "command-line-input";
    case SurfaceElement::kFileFormatParser:
      return "file-format-parser";
  }
  return "<bad>";
}

double SurfaceElementWeight(SurfaceElement element) {
  switch (element) {
    case SurfaceElement::kOpenSocket:
      return 1.0;
    case SurfaceElement::kRpcEndpoint:
      return 0.9;
    case SurfaceElement::kNamedPipe:
      return 0.8;
    case SurfaceElement::kDefaultService:
      return 0.8;
    case SurfaceElement::kPrivilegedService:
      return 0.9;
    case SurfaceElement::kWebHandler:
      return 1.0;
    case SurfaceElement::kDynamicContentPage:
      return 0.6;
    case SurfaceElement::kEnabledAccount:
      return 0.7;
    case SurfaceElement::kAdminAccount:
      return 0.9;
    case SurfaceElement::kGuestAccessPath:
      return 0.9;
    case SurfaceElement::kWeakAcl:
      return 0.7;
    case SurfaceElement::kWorldWritableFile:
      return 0.6;
    case SurfaceElement::kEnvironmentInput:
      return 0.3;
    case SurfaceElement::kCommandLineInput:
      return 0.2;
    case SurfaceElement::kFileFormatParser:
      return 0.5;
  }
  return 0.0;
}

void SurfaceProfile::Set(SurfaceElement element, int count) { counts_[element] = count; }

void SurfaceProfile::Add(SurfaceElement element, int count) { counts_[element] += count; }

int SurfaceProfile::Count(SurfaceElement element) const {
  const auto it = counts_.find(element);
  return it == counts_.end() ? 0 : it->second;
}

double SurfaceProfile::Rasq() const {
  double total = 0.0;
  for (const auto& [element, count] : counts_) {
    total += SurfaceElementWeight(element) * count;
  }
  return total;
}

SurfaceProfile SurfaceProfile::FromFeatures(const std::string& name,
                                            const metrics::FeatureVector& features) {
  SurfaceProfile profile(name);
  // Every untrusted-input site is an externally reachable channel.
  profile.Add(SurfaceElement::kOpenSocket,
              static_cast<int>(features.Get("dataflow.input_sites")));
  // Taint reaching sinks exposes data targets.
  profile.Add(SurfaceElement::kWorldWritableFile,
              static_cast<int>(features.Get("dataflow.tainted_sinks")));
  // Call-graph roots behave like exported entry points / RPC methods.
  profile.Add(SurfaceElement::kRpcEndpoint,
              static_cast<int>(features.Get("callgraph.roots")));
  // Parsing-heavy code (many branches on tainted data) acts like a file
  // format parser exposed to attackers.
  profile.Add(SurfaceElement::kFileFormatParser,
              static_cast<int>(std::ceil(features.Get("dataflow.tainted_branches") / 8.0)));
  return profile;
}

double RelativeRasq(const SurfaceProfile& a, const SurfaceProfile& b) {
  const double rb = b.Rasq();
  if (rb <= 0.0) {
    return a.Rasq() > 0.0 ? std::numeric_limits<double>::infinity() : 1.0;
  }
  return a.Rasq() / rb;
}

}  // namespace attack
