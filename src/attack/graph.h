// Attack-graph generation and analysis, after Sheyner et al. (§4.1: "we can
// estimate how difficult it is to attack a program by building an
// attack-graph").
//
// Model: a network of hosts running services; services carry exploitable
// vulnerabilities with a required source privilege, a network precondition
// (connectivity), and a granted privilege on the target host. Attack-graph
// nodes are (host, privilege) states; edges are exploit applications. The
// analyses answer: can the attacker reach the goal, what is the cheapest
// attack path, and what is the smallest set of exploits whose removal
// disconnects the goal (the patch set).
#ifndef SRC_ATTACK_GRAPH_H_
#define SRC_ATTACK_GRAPH_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace attack {

enum class Privilege : uint8_t { kNone = 0, kUser = 1, kRoot = 2 };

const char* PrivilegeName(Privilege privilege);

struct Exploit {
  std::string id;              // e.g. a CVE id.
  std::string service;         // Service that must run on the target.
  Privilege required_on_source = Privilege::kUser;  // Attacker's foothold.
  Privilege granted_on_target = Privilege::kUser;
  bool remote = true;          // Remote exploits need connectivity;
                               // local ones need a foothold on the host itself.
  double cost = 1.0;           // Relative attacker effort.
};

struct Host {
  std::string name;
  std::set<std::string> services;
};

class NetworkModel {
 public:
  // Returns the host index.
  int AddHost(std::string name, std::set<std::string> services);
  void AddExploit(Exploit exploit);
  // Directed connectivity: `from` can open connections to `to`.
  void Connect(int from, int to);
  void ConnectBoth(int a, int b);

  const std::vector<Host>& hosts() const { return hosts_; }
  const std::vector<Exploit>& exploits() const { return exploits_; }
  bool Connected(int from, int to) const;
  int HostIndex(const std::string& name) const;

 private:
  std::vector<Host> hosts_;
  std::vector<Exploit> exploits_;
  std::set<std::pair<int, int>> edges_;
};

struct AttackState {
  int host = 0;
  Privilege privilege = Privilege::kNone;
  auto operator<=>(const AttackState&) const = default;
};

struct AttackEdge {
  AttackState from;
  AttackState to;
  int exploit = 0;  // Index into NetworkModel::exploits().
  double cost = 1.0;
};

class AttackGraph {
 public:
  // Builds the full reachable state graph from `start` (attacker's initial
  // foothold, typically an internet host with kRoot on their own machine).
  AttackGraph(const NetworkModel& model, AttackState start);

  const std::vector<AttackState>& states() const { return states_; }
  const std::vector<AttackEdge>& edges() const { return edges_; }

  bool CanReach(AttackState goal) const;
  // Cheapest attack path (sum of exploit costs); empty if unreachable.
  std::vector<AttackEdge> ShortestPath(AttackState goal) const;

  // Minimum number of *exploit classes* whose removal makes `goal`
  // unreachable, with the chosen class ids (greedy over exploit classes —
  // exact for the small models used here, verified by re-checking
  // reachability after each removal).
  std::vector<std::string> MinimalCut(const NetworkModel& model, AttackState goal) const;

 private:
  int StateIndex(AttackState state) const;

  AttackState start_;
  std::vector<AttackState> states_;
  std::vector<AttackEdge> edges_;
  std::map<AttackState, int> state_index_;
  std::vector<std::vector<int>> adjacency_;  // State index -> edge indices.
};

}  // namespace attack

#endif  // SRC_ATTACK_GRAPH_H_
