// Relative Attack Surface Quotient (RASQ), after Howard, Pincus & Wing
// (§3.2/§4.1): the attack surface is a weighted sum over root attack
// vectors — channels, process targets, and data items an attacker can reach.
// The quotient is only meaningful *relative* to another configuration of the
// same system, which is exactly how the clair library uses it (comparing two
// versions or two candidate libraries).
#ifndef SRC_ATTACK_SURFACE_H_
#define SRC_ATTACK_SURFACE_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/metrics/feature_vector.h"

namespace attack {

enum class SurfaceElement : uint8_t {
  kOpenSocket,
  kRpcEndpoint,
  kNamedPipe,
  kDefaultService,
  kPrivilegedService,     // Running as root/SYSTEM.
  kWebHandler,
  kDynamicContentPage,
  kEnabledAccount,
  kAdminAccount,
  kGuestAccessPath,
  kWeakAcl,
  kWorldWritableFile,
  kEnvironmentInput,
  kCommandLineInput,
  kFileFormatParser,
};

const char* SurfaceElementName(SurfaceElement element);
// Relative severity weight of one element instance (Howard et al.'s root
// attack-vector weights, normalised so kOpenSocket == 1.0).
double SurfaceElementWeight(SurfaceElement element);

class SurfaceProfile {
 public:
  explicit SurfaceProfile(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void Set(SurfaceElement element, int count);
  void Add(SurfaceElement element, int count = 1);
  int Count(SurfaceElement element) const;

  // The attack-surface score: sum over elements of count × weight.
  double Rasq() const;

  // Derives a coarse profile from static code features (input sites become
  // channel instances, taint sinks become data targets, and so on). Used
  // when only source code, not a deployment description, is available.
  static SurfaceProfile FromFeatures(const std::string& name,
                                     const metrics::FeatureVector& features);

 private:
  std::string name_;
  std::map<SurfaceElement, int> counts_;
};

// RASQ of `a` relative to `b` (> 1 means `a` exposes more surface).
double RelativeRasq(const SurfaceProfile& a, const SurfaceProfile& b);

}  // namespace attack

#endif  // SRC_ATTACK_SURFACE_H_
