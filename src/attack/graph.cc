#include "src/attack/graph.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace attack {

const char* PrivilegeName(Privilege privilege) {
  switch (privilege) {
    case Privilege::kNone:
      return "none";
    case Privilege::kUser:
      return "user";
    case Privilege::kRoot:
      return "root";
  }
  return "<bad>";
}

int NetworkModel::AddHost(std::string name, std::set<std::string> services) {
  hosts_.push_back({std::move(name), std::move(services)});
  return static_cast<int>(hosts_.size() - 1);
}

void NetworkModel::AddExploit(Exploit exploit) { exploits_.push_back(std::move(exploit)); }

void NetworkModel::Connect(int from, int to) { edges_.emplace(from, to); }

void NetworkModel::ConnectBoth(int a, int b) {
  Connect(a, b);
  Connect(b, a);
}

bool NetworkModel::Connected(int from, int to) const {
  return edges_.contains({from, to});
}

int NetworkModel::HostIndex(const std::string& name) const {
  for (size_t i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

AttackGraph::AttackGraph(const NetworkModel& model, AttackState start) : start_(start) {
  // Monotonic attack semantics: the attacker accumulates (host, privilege)
  // pairs. We build the graph over *single* states but allow an exploit from
  // any previously reached state — a standard simplification that coincides
  // with the monotonic model for privilege-escalation analyses because
  // privileges only grow along a path.
  std::queue<AttackState> frontier;
  auto visit = [this, &frontier](AttackState state) {
    if (!state_index_.contains(state)) {
      state_index_[state] = static_cast<int>(states_.size());
      states_.push_back(state);
      adjacency_.emplace_back();
      frontier.push(state);
    }
  };
  visit(start);
  while (!frontier.empty()) {
    const AttackState current = frontier.front();
    frontier.pop();
    for (size_t e = 0; e < model.exploits().size(); ++e) {
      const Exploit& exploit = model.exploits()[e];
      if (current.privilege < exploit.required_on_source) {
        continue;
      }
      for (size_t target = 0; target < model.hosts().size(); ++target) {
        const auto target_host = static_cast<int>(target);
        if (!model.hosts()[target].services.contains(exploit.service)) {
          continue;
        }
        if (exploit.remote) {
          if (!model.Connected(current.host, target_host)) {
            continue;
          }
        } else if (current.host != target_host) {
          continue;
        }
        const AttackState next{target_host, exploit.granted_on_target};
        // Only add transitions that gain something: a new host or a higher
        // privilege on a known host.
        if (next.host == current.host && next.privilege <= current.privilege) {
          continue;
        }
        visit(next);
        const int edge_index = static_cast<int>(edges_.size());
        edges_.push_back({current, next, static_cast<int>(e), exploit.cost});
        adjacency_[static_cast<size_t>(state_index_[current])].push_back(edge_index);
      }
    }
  }
}

int AttackGraph::StateIndex(AttackState state) const {
  const auto it = state_index_.find(state);
  return it == state_index_.end() ? -1 : it->second;
}

bool AttackGraph::CanReach(AttackState goal) const {
  // A goal of privilege P is reached by any state on the same host with
  // privilege >= P.
  for (const auto& state : states_) {
    if (state.host == goal.host && state.privilege >= goal.privilege) {
      return true;
    }
  }
  return false;
}

std::vector<AttackEdge> AttackGraph::ShortestPath(AttackState goal) const {
  // Dijkstra over states.
  const size_t n = states_.size();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<int> via_edge(n, -1);
  using QueueEntry = std::pair<double, int>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue;
  const int start_index = StateIndex(start_);
  if (start_index < 0) {
    return {};
  }
  dist[static_cast<size_t>(start_index)] = 0.0;
  queue.emplace(0.0, start_index);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[static_cast<size_t>(u)]) {
      continue;
    }
    for (const int edge_index : adjacency_[static_cast<size_t>(u)]) {
      const AttackEdge& edge = edges_[static_cast<size_t>(edge_index)];
      const int v = StateIndex(edge.to);
      const double nd = d + edge.cost;
      if (nd < dist[static_cast<size_t>(v)]) {
        dist[static_cast<size_t>(v)] = nd;
        via_edge[static_cast<size_t>(v)] = edge_index;
        queue.emplace(nd, v);
      }
    }
  }
  // Best matching goal state.
  int best = -1;
  for (size_t i = 0; i < n; ++i) {
    if (states_[i].host == goal.host && states_[i].privilege >= goal.privilege &&
        dist[i] < std::numeric_limits<double>::infinity()) {
      if (best < 0 || dist[i] < dist[static_cast<size_t>(best)]) {
        best = static_cast<int>(i);
      }
    }
  }
  if (best < 0) {
    return {};
  }
  std::vector<AttackEdge> path;
  int current = best;
  while (via_edge[static_cast<size_t>(current)] >= 0) {
    const AttackEdge& edge = edges_[static_cast<size_t>(via_edge[static_cast<size_t>(
        current)])];
    path.push_back(edge);
    current = StateIndex(edge.from);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::string> AttackGraph::MinimalCut(const NetworkModel& model,
                                                 AttackState goal) const {
  if (!CanReach(goal)) {
    return {};
  }
  // Exhaustive search over exploit-class subsets in increasing size — exact
  // for the handful of exploit classes realistic models carry.
  const size_t k = model.exploits().size();
  std::vector<std::string> best;
  const uint32_t limit = k >= 20 ? (1u << 20) : (1u << k);
  size_t best_size = k + 1;
  uint32_t best_mask = 0;
  for (uint32_t mask = 1; mask < limit; ++mask) {
    const size_t size = static_cast<size_t>(__builtin_popcount(mask));
    if (size >= best_size) {
      continue;
    }
    // Rebuild a model without the masked exploits and test reachability.
    NetworkModel pruned;
    for (const auto& host : model.hosts()) {
      pruned.AddHost(host.name, host.services);
    }
    for (size_t a = 0; a < model.hosts().size(); ++a) {
      for (size_t b = 0; b < model.hosts().size(); ++b) {
        if (model.Connected(static_cast<int>(a), static_cast<int>(b))) {
          pruned.Connect(static_cast<int>(a), static_cast<int>(b));
        }
      }
    }
    for (size_t e = 0; e < k; ++e) {
      if ((mask & (1u << e)) == 0) {
        pruned.AddExploit(model.exploits()[e]);
      }
    }
    const AttackGraph regraph(pruned, start_);
    if (!regraph.CanReach(goal)) {
      best_size = size;
      best_mask = mask;
    }
  }
  for (size_t e = 0; e < k; ++e) {
    if (best_mask & (1u << e)) {
      best.push_back(model.exploits()[e].id);
    }
  }
  return best;
}

}  // namespace attack
