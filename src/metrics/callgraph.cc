#include "src/metrics/callgraph.h"

namespace metrics {
namespace {

// Tarjan-style cycle membership: a function is recursive if it can reach
// itself through the callee relation.
std::set<std::string> FindRecursive(const std::map<std::string, std::set<std::string>>& callees,
                                    const std::set<std::string>& defined) {
  std::set<std::string> recursive;
  for (const auto& start : defined) {
    // BFS from each function's callees looking for the function itself.
    std::set<std::string> seen;
    std::vector<std::string> stack;
    const auto it = callees.find(start);
    if (it != callees.end()) {
      for (const auto& c : it->second) {
        stack.push_back(c);
      }
    }
    bool found = false;
    while (!stack.empty() && !found) {
      const std::string current = stack.back();
      stack.pop_back();
      if (current == start) {
        found = true;
        break;
      }
      if (!seen.insert(current).second) {
        continue;
      }
      const auto cit = callees.find(current);
      if (cit != callees.end()) {
        for (const auto& c : cit->second) {
          stack.push_back(c);
        }
      }
    }
    if (found) {
      recursive.insert(start);
    }
  }
  return recursive;
}

}  // namespace

CallGraph::CallGraph(const lang::IrModule& module) {
  for (const auto& fn : module.functions) {
    defined_.insert(fn.name);
    callees_[fn.name];  // Ensure presence even with no calls.
    callers_[fn.name];
    call_sites_[fn.name] = 0;
  }
  for (const auto& fn : module.functions) {
    for (const auto& block : fn.blocks) {
      for (const auto& instr : block.instrs) {
        if (instr.op != lang::IrOpcode::kCall) {
          continue;
        }
        ++call_sites_[fn.name];
        if (defined_.contains(instr.callee)) {
          callees_[fn.name].insert(instr.callee);
          callers_[instr.callee].insert(fn.name);
        }
      }
    }
  }
  recursive_ = FindRecursive(callees_, defined_);
}

int CallGraph::FanOut(const std::string& fn) const {
  const auto it = callees_.find(fn);
  return it == callees_.end() ? 0 : static_cast<int>(it->second.size());
}

int CallGraph::FanIn(const std::string& fn) const {
  const auto it = callers_.find(fn);
  return it == callers_.end() ? 0 : static_cast<int>(it->second.size());
}

int CallGraph::CallSites(const std::string& fn) const {
  const auto it = call_sites_.find(fn);
  return it == call_sites_.end() ? 0 : it->second;
}

bool CallGraph::IsRecursive(const std::string& fn) const { return recursive_.contains(fn); }

std::set<std::string> CallGraph::ReachableFrom(const std::string& entry) const {
  std::set<std::string> seen;
  if (!defined_.contains(entry)) {
    return seen;
  }
  std::vector<std::string> stack = {entry};
  while (!stack.empty()) {
    const std::string current = stack.back();
    stack.pop_back();
    if (!seen.insert(current).second) {
      continue;
    }
    const auto it = callees_.find(current);
    if (it != callees_.end()) {
      for (const auto& callee : it->second) {
        stack.push_back(callee);
      }
    }
  }
  return seen;
}

std::vector<std::string> CallGraph::Roots() const {
  std::vector<std::string> roots;
  for (const auto& [name, callers] : callers_) {
    // Self-recursion alone does not disqualify a root.
    bool external_caller = false;
    for (const auto& caller : callers) {
      if (caller != name) {
        external_caller = true;
        break;
      }
    }
    if (!external_caller) {
      roots.push_back(name);
    }
  }
  return roots;
}

const std::set<std::string>& CallGraph::Callees(const std::string& fn) const {
  const auto it = callees_.find(fn);
  return it == callees_.end() ? empty_ : it->second;
}

}  // namespace metrics
