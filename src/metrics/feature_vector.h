// A named bag of numeric code properties.
//
// Every analysis in the testbed contributes features into one of these;
// `clair::Testbed` flattens them into ml::Dataset columns. Keys are stable,
// lowercase, dot-separated (e.g. "loc.code", "mccabe.total").
#ifndef SRC_METRICS_FEATURE_VECTOR_H_
#define SRC_METRICS_FEATURE_VECTOR_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace metrics {

class FeatureVector {
 public:
  // Sets (overwrites) a feature.
  void Set(std::string_view name, double value);
  // Adds to an existing feature (creating it at 0 first).
  void Add(std::string_view name, double value);

  bool Has(std::string_view name) const;
  // Returns the value or `fallback` when absent.
  double Get(std::string_view name, double fallback = 0.0) const;

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  // Merges `other` into this vector, summing shared keys. Used to aggregate
  // per-file vectors into a per-application vector.
  void MergeSum(const FeatureVector& other);
  // Merges taking the max of shared keys (for peak-style features).
  void MergeMax(const FeatureVector& other);

  // Sorted, deterministic iteration.
  const std::map<std::string, double>& values() const { return values_; }
  std::vector<std::string> Names() const;

  // All (name, value) pairs whose name starts with `prefix`, in sorted
  // order. Cheap: walks only the matching subrange of the ordered map.
  std::vector<std::pair<std::string, double>> WithPrefix(std::string_view prefix) const;

  std::string ToString() const;

 private:
  std::map<std::string, double> values_;
};

}  // namespace metrics

#endif  // SRC_METRICS_FEATURE_VECTOR_H_
