#include "src/metrics/complexity.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace metrics {
namespace {

// DFS over the CFG collecting reachable blocks.
std::vector<bool> ReachableBlocks(const lang::IrFunction& fn) {
  std::vector<bool> seen(fn.blocks.size(), false);
  std::vector<lang::BlockId> stack = {0};
  while (!stack.empty()) {
    const lang::BlockId block = stack.back();
    stack.pop_back();
    if (seen[static_cast<size_t>(block)]) {
      continue;
    }
    seen[static_cast<size_t>(block)] = true;
    for (lang::BlockId succ : fn.Successors(block)) {
      stack.push_back(succ);
    }
  }
  return seen;
}

int CountDecisionsExpr(const lang::Expr& expr) {
  int count = 0;
  if (expr.kind == lang::ExprKind::kBinary &&
      (expr.binary_op == lang::BinaryOp::kAnd || expr.binary_op == lang::BinaryOp::kOr)) {
    ++count;
  }
  if (expr.kind == lang::ExprKind::kConditional) {
    ++count;
  }
  for (const auto& child : expr.children) {
    count += CountDecisionsExpr(*child);
  }
  return count;
}

struct StmtWalkResult {
  int decisions = 0;
  int max_depth = 0;
};

void WalkStmt(const lang::Stmt& stmt, int depth, StmtWalkResult& result);

void WalkBody(const std::vector<std::unique_ptr<lang::Stmt>>& body, int depth,
              StmtWalkResult& result) {
  for (const auto& child : body) {
    WalkStmt(*child, depth, result);
  }
}

void WalkStmt(const lang::Stmt& stmt, int depth, StmtWalkResult& result) {
  if (depth > result.max_depth) {
    result.max_depth = depth;
  }
  if (stmt.expr) {
    result.decisions += CountDecisionsExpr(*stmt.expr);
  }
  if (stmt.decl_init) {
    result.decisions += CountDecisionsExpr(*stmt.decl_init);
  }
  if (stmt.step_expr) {
    result.decisions += CountDecisionsExpr(*stmt.step_expr);
  }
  switch (stmt.kind) {
    case lang::StmtKind::kIf:
      ++result.decisions;
      WalkBody(stmt.then_body, depth + 1, result);
      WalkBody(stmt.else_body, depth + 1, result);
      break;
    case lang::StmtKind::kWhile:
    case lang::StmtKind::kFor:
      ++result.decisions;
      if (stmt.init_stmt) {
        WalkStmt(*stmt.init_stmt, depth, result);
      }
      WalkBody(stmt.then_body, depth + 1, result);
      break;
    case lang::StmtKind::kSwitch:
      for (const auto& sc : stmt.cases) {
        if (!sc.is_default) {
          ++result.decisions;
        }
        WalkBody(sc.body, depth + 1, result);
      }
      break;
    case lang::StmtKind::kBlock:
      WalkBody(stmt.block, depth, result);
      break;
    default:
      break;
  }
}

}  // namespace

int CyclomaticComplexity(const lang::IrFunction& fn) {
  const auto reachable = ReachableBlocks(fn);
  int nodes = 0;
  int edges = 0;
  for (size_t b = 0; b < fn.blocks.size(); ++b) {
    if (!reachable[b]) {
      continue;
    }
    ++nodes;
    edges += static_cast<int>(fn.Successors(static_cast<lang::BlockId>(b)).size());
  }
  const int m = edges - nodes + 2;
  return m < 1 ? 1 : m;
}

long long TotalCyclomaticComplexity(const lang::IrModule& module) {
  long long total = 0;
  for (const auto& fn : module.functions) {
    total += CyclomaticComplexity(fn);
  }
  return total;
}

int MaxNestingDepth(const lang::FunctionDecl& fn) {
  StmtWalkResult result;
  WalkBody(fn.body, 0, result);
  return result.max_depth;
}

int DecisionPoints(const lang::FunctionDecl& fn) {
  StmtWalkResult result;
  WalkBody(fn.body, 0, result);
  return result.decisions;
}

long long EstimateCyclomaticFromText(std::string_view text) {
  auto is_word = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
           c == '_';
  };
  auto count_word = [&](std::string_view word) {
    long long count = 0;
    size_t pos = 0;
    while ((pos = text.find(word, pos)) != std::string_view::npos) {
      const bool left_ok = pos == 0 || !is_word(text[pos - 1]);
      const size_t end = pos + word.size();
      const bool right_ok = end >= text.size() || !is_word(text[end]);
      if (left_ok && right_ok) {
        ++count;
      }
      pos = end;
    }
    return count;
  };
  auto count_plain = [&](std::string_view needle) {
    long long count = 0;
    size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string_view::npos) {
      ++count;
      pos += needle.size();
    }
    return count;
  };
  long long decisions = 0;
  for (const std::string_view keyword :
       {"if", "for", "while", "case", "catch", "elif", "except"}) {
    decisions += count_word(keyword);
  }
  decisions += count_plain("&&");
  decisions += count_plain("||");
  // One per function-ish definition keyword (def / methods are approximated
  // by 'return' sites divided by two as a floor of 1 per file).
  const long long functions = std::max(count_word("def") + count_word("public"),
                                       count_word("return") / 2);
  return decisions + std::max(functions, 1LL);
}

HalsteadMeasures ComputeHalstead(std::span<const lang::Token> tokens) {
  HalsteadMeasures hm;
  std::set<std::string> operators;
  std::set<std::string> operands;
  for (const auto& tok : tokens) {
    if (lang::IsOperatorToken(tok.kind)) {
      operators.insert(lang::TokenKindName(tok.kind));
      ++hm.total_operators;
    } else if (lang::IsOperandToken(tok.kind)) {
      // Distinguish the literal "1" from the identifier "x1" by prefixing.
      const std::string key =
          tok.kind == lang::TokenKind::kIdentifier ? "id:" + tok.text : "lit:" + tok.text;
      operands.insert(key);
      ++hm.total_operands;
    }
  }
  hm.distinct_operators = static_cast<int>(operators.size());
  hm.distinct_operands = static_cast<int>(operands.size());
  hm.vocabulary = static_cast<double>(hm.distinct_operators + hm.distinct_operands);
  hm.length = static_cast<double>(hm.total_operators + hm.total_operands);
  if (hm.vocabulary > 0.0) {
    hm.volume = hm.length * std::log2(hm.vocabulary);
  }
  if (hm.distinct_operands > 0) {
    hm.difficulty = (static_cast<double>(hm.distinct_operators) / 2.0) *
                    (static_cast<double>(hm.total_operands) /
                     static_cast<double>(hm.distinct_operands));
  }
  hm.effort = hm.difficulty * hm.volume;
  hm.estimated_bugs = hm.volume / 3000.0;
  return hm;
}

}  // namespace metrics
