// cloc-style line classification for the languages the paper's corpus spans
// (the study in §3.1 computed lines of code "using cloc").
//
// Works on raw text with per-language comment syntax; it does not require a
// parse, so it applies to the Python/Java members of the corpus as well as to
// MiniC/C/C++ sources.
#ifndef SRC_METRICS_CLOC_H_
#define SRC_METRICS_CLOC_H_

#include <string_view>

namespace metrics {

enum class Language {
  kC,
  kCpp,
  kPython,
  kJava,
  kMiniC,  // The in-repo substrate language; C-style comments.
};

const char* LanguageName(Language lang);

struct LineCount {
  long long code = 0;
  long long comment = 0;
  long long blank = 0;

  long long total() const { return code + comment + blank; }

  LineCount& operator+=(const LineCount& other) {
    code += other.code;
    comment += other.comment;
    blank += other.blank;
    return *this;
  }
};

// Classifies every line of `text` as code, comment, or blank.
// A line containing both code and a trailing comment counts as code.
// For C-family languages this understands // and /* */ (including multi-line
// block comments and block comments embedded in code lines). For Python it
// understands # comments and treats module/function-level triple-quoted
// strings that start a line as comments (docstring convention).
LineCount CountLines(std::string_view text, Language lang);

}  // namespace metrics

#endif  // SRC_METRICS_CLOC_H_
