// Structural complexity measures: McCabe cyclomatic complexity (Figure 3's
// x-axis) and Halstead's software-science measures, plus nesting depth.
#ifndef SRC_METRICS_COMPLEXITY_H_
#define SRC_METRICS_COMPLEXITY_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/lang/ast.h"
#include "src/lang/ir.h"
#include "src/lang/token.h"

namespace metrics {

// McCabe (1976): M = E - N + 2P computed per function over the IR CFG
// (P = 1 per function). Only blocks reachable from the entry participate —
// lowering can leave dead continuation blocks behind `abort()`.
int CyclomaticComplexity(const lang::IrFunction& fn);

// Sum over all functions in the module (how CCCC/Metrix++ report a project).
long long TotalCyclomaticComplexity(const lang::IrModule& module);

// Maximum lexical nesting depth of control statements within a function body.
int MaxNestingDepth(const lang::FunctionDecl& fn);

// Number of decision points (if/while/for/case/&&/||/?:) in a function —
// the classic source-level estimate M = decisions + 1.
int DecisionPoints(const lang::FunctionDecl& fn);

// Halstead (1977) software-science measures over a token stream.
struct HalsteadMeasures {
  int distinct_operators = 0;  // n1
  int distinct_operands = 0;   // n2
  long long total_operators = 0;  // N1
  long long total_operands = 0;   // N2
  double vocabulary = 0.0;     // n = n1 + n2
  double length = 0.0;         // N = N1 + N2
  double volume = 0.0;         // V = N log2 n
  double difficulty = 0.0;     // D = (n1/2) * (N2/n2)
  double effort = 0.0;         // E = D * V
  double estimated_bugs = 0.0;  // B = V / 3000 (classic rule of thumb)
};

HalsteadMeasures ComputeHalstead(std::span<const lang::Token> tokens);

// Rough text-level cyclomatic estimate for languages without a frontend
// (decision-keyword counting — the approach of regex-based tools like
// Metrix++). Counts word-boundary occurrences of if/for/while/case/catch/
// elif/except plus && and ||, plus one per detected function.
long long EstimateCyclomaticFromText(std::string_view text);

}  // namespace metrics

#endif  // SRC_METRICS_COMPLEXITY_H_
