#include "src/metrics/smells.h"

#include <cstdlib>
#include <set>

#include "src/lang/ir_walk.h"

namespace metrics {
namespace {

void CountMagicNumbersExpr(const lang::Expr& expr, int min_magnitude, long long& count) {
  if (expr.kind == lang::ExprKind::kIntLiteral &&
      std::llabs(static_cast<long long>(expr.int_value)) > min_magnitude) {
    ++count;
  }
  for (const auto& child : expr.children) {
    CountMagicNumbersExpr(*child, min_magnitude, count);
  }
}

void CountMagicNumbersStmt(const lang::Stmt& stmt, int min_magnitude, long long& count) {
  if (stmt.expr) {
    CountMagicNumbersExpr(*stmt.expr, min_magnitude, count);
  }
  if (stmt.decl_init) {
    CountMagicNumbersExpr(*stmt.decl_init, min_magnitude, count);
  }
  if (stmt.step_expr) {
    CountMagicNumbersExpr(*stmt.step_expr, min_magnitude, count);
  }
  if (stmt.init_stmt) {
    CountMagicNumbersStmt(*stmt.init_stmt, min_magnitude, count);
  }
  for (const auto& child : stmt.then_body) {
    CountMagicNumbersStmt(*child, min_magnitude, count);
  }
  for (const auto& child : stmt.else_body) {
    CountMagicNumbersStmt(*child, min_magnitude, count);
  }
  for (const auto& child : stmt.block) {
    CountMagicNumbersStmt(*child, min_magnitude, count);
  }
  for (const auto& sc : stmt.cases) {
    for (const auto& child : sc.body) {
      CountMagicNumbersStmt(*child, min_magnitude, count);
    }
  }
}

int NestingDepth(const std::vector<std::unique_ptr<lang::Stmt>>& body);

int NestingDepthStmt(const lang::Stmt& stmt) {
  switch (stmt.kind) {
    case lang::StmtKind::kIf: {
      const int a = NestingDepth(stmt.then_body);
      const int b = NestingDepth(stmt.else_body);
      return 1 + (a > b ? a : b);
    }
    case lang::StmtKind::kWhile:
    case lang::StmtKind::kFor:
      return 1 + NestingDepth(stmt.then_body);
    case lang::StmtKind::kSwitch: {
      int deepest = 0;
      for (const auto& sc : stmt.cases) {
        const int d = NestingDepth(sc.body);
        if (d > deepest) {
          deepest = d;
        }
      }
      return 1 + deepest;
    }
    case lang::StmtKind::kBlock:
      return NestingDepth(stmt.block);
    default:
      return 0;
  }
}

int NestingDepth(const std::vector<std::unique_ptr<lang::Stmt>>& body) {
  int deepest = 0;
  for (const auto& stmt : body) {
    const int d = NestingDepthStmt(*stmt);
    if (d > deepest) {
      deepest = d;
    }
  }
  return deepest;
}

void CollectCalleesExpr(const lang::Expr& expr, std::set<std::string>& callees) {
  if (expr.kind == lang::ExprKind::kCall && !lang::IsBuiltinFunction(expr.name)) {
    callees.insert(expr.name);
  }
  for (const auto& child : expr.children) {
    CollectCalleesExpr(*child, callees);
  }
}

void CollectCalleesStmt(const lang::Stmt& stmt, std::set<std::string>& callees) {
  if (stmt.expr) {
    CollectCalleesExpr(*stmt.expr, callees);
  }
  if (stmt.decl_init) {
    CollectCalleesExpr(*stmt.decl_init, callees);
  }
  if (stmt.step_expr) {
    CollectCalleesExpr(*stmt.step_expr, callees);
  }
  if (stmt.init_stmt) {
    CollectCalleesStmt(*stmt.init_stmt, callees);
  }
  for (const auto& child : stmt.then_body) {
    CollectCalleesStmt(*child, callees);
  }
  for (const auto& child : stmt.else_body) {
    CollectCalleesStmt(*child, callees);
  }
  for (const auto& child : stmt.block) {
    CollectCalleesStmt(*child, callees);
  }
  for (const auto& sc : stmt.cases) {
    for (const auto& child : sc.body) {
      CollectCalleesStmt(*child, callees);
    }
  }
}

}  // namespace

SmellReport DetectSmells(const lang::TranslationUnit& unit, const SmellThresholds& thresholds) {
  SmellReport report;
  report.functions = static_cast<int>(unit.functions.size());
  for (const auto& fn : unit.functions) {
    const int body_lines = fn.end_line > fn.line ? fn.end_line - fn.line + 1 : 1;
    if (body_lines > thresholds.long_method_lines) {
      ++report.long_methods;
    }
    if (static_cast<int>(fn.params.size()) > thresholds.long_param_list) {
      ++report.long_param_lists;
    }
    if (NestingDepth(fn.body) > thresholds.deep_nesting) {
      ++report.deeply_nested;
    }
    std::set<std::string> callees;
    for (const auto& stmt : fn.body) {
      CollectCalleesStmt(*stmt, callees);
    }
    if (static_cast<int>(callees.size()) > thresholds.god_function_callees) {
      ++report.god_functions;
    }
    for (const auto& stmt : fn.body) {
      CountMagicNumbersStmt(*stmt, thresholds.magic_number_min, report.magic_numbers);
    }
  }
  return report;
}

const char* BugSignalKindName(BugSignal::Kind kind) {
  switch (kind) {
    case BugSignal::Kind::kUncheckedInputIndex:
      return "unchecked-input-index";
    case BugSignal::Kind::kNonConstantDivisor:
      return "non-constant-divisor";
    case BugSignal::Kind::kConstantCondition:
      return "constant-condition";
    case BugSignal::Kind::kDeadStore:
      return "dead-store";
    case BugSignal::Kind::kUnreachableCode:
      return "unreachable-code";
    case BugSignal::Kind::kInfiniteLoopRisk:
      return "infinite-loop-risk";
    case BugSignal::Kind::kSignedOverflowRisk:
      return "signed-overflow-risk";
  }
  return "<bad>";
}

namespace {

// Per-function lint pass over the IR.
class IrLinter {
 public:
  explicit IrLinter(const lang::IrFunction& fn, std::vector<BugSignal>& out)
      : fn_(fn), out_(out) {}

  void Run() {
    AnalyzeConstants();
    CheckUncheckedInputIndices();
    CheckDivisors();
    CheckConstantConditions();
    CheckDeadStores();
    CheckUnreachable();
  }

 private:
  void Report(BugSignal::Kind kind, int line) { out_.push_back({kind, fn_.name, line}); }

  // Very small abstract interpretation: which registers are (a) directly
  // input-derived and (b) known constants. One linear pass per block is
  // enough for lint-grade signals (no fixpoint across loops).
  void AnalyzeConstants() {
    input_derived_.assign(static_cast<size_t>(fn_.reg_count), false);
    is_const_.assign(static_cast<size_t>(fn_.reg_count), false);
    const_value_.assign(static_cast<size_t>(fn_.reg_count), 0);
    compared_.assign(static_cast<size_t>(fn_.reg_count), false);
    for (const auto& block : fn_.blocks) {
      for (const auto& instr : block.instrs) {
        switch (instr.op) {
          case lang::IrOpcode::kConst:
            is_const_[static_cast<size_t>(instr.dst)] = true;
            const_value_[static_cast<size_t>(instr.dst)] = instr.imm;
            break;
          case lang::IrOpcode::kInput:
            input_derived_[static_cast<size_t>(instr.dst)] = true;
            break;
          case lang::IrOpcode::kCopy:
            input_derived_[static_cast<size_t>(instr.dst)] =
                input_derived_[static_cast<size_t>(instr.a)];
            break;
          case lang::IrOpcode::kBinOp: {
            const bool derived = input_derived_[static_cast<size_t>(instr.a)] ||
                                 input_derived_[static_cast<size_t>(instr.b)];
            input_derived_[static_cast<size_t>(instr.dst)] = derived;
            // Comparisons against input-derived registers mark them checked.
            if (IsComparison(instr.binary_op)) {
              if (input_derived_[static_cast<size_t>(instr.a)]) {
                compared_[static_cast<size_t>(instr.a)] = true;
              }
              if (input_derived_[static_cast<size_t>(instr.b)]) {
                compared_[static_cast<size_t>(instr.b)] = true;
              }
            }
            break;
          }
          case lang::IrOpcode::kUnOp:
            input_derived_[static_cast<size_t>(instr.dst)] =
                input_derived_[static_cast<size_t>(instr.a)];
            break;
          default:
            break;
        }
      }
    }
  }

  static bool IsComparison(lang::BinaryOp op) {
    switch (op) {
      case lang::BinaryOp::kEq:
      case lang::BinaryOp::kNe:
      case lang::BinaryOp::kLt:
      case lang::BinaryOp::kLe:
      case lang::BinaryOp::kGt:
      case lang::BinaryOp::kGe:
        return true;
      default:
        return false;
    }
  }

  void CheckUncheckedInputIndices() {
    for (const auto& block : fn_.blocks) {
      for (const auto& instr : block.instrs) {
        if (instr.op != lang::IrOpcode::kArrayLoad &&
            instr.op != lang::IrOpcode::kArrayStore) {
          continue;
        }
        const auto index = static_cast<size_t>(instr.a);
        if (input_derived_[index] && !compared_[index]) {
          Report(BugSignal::Kind::kUncheckedInputIndex, instr.line);
        }
      }
    }
  }

  void CheckDivisors() {
    for (const auto& block : fn_.blocks) {
      for (const auto& instr : block.instrs) {
        if (instr.op != lang::IrOpcode::kBinOp) {
          continue;
        }
        if (instr.binary_op != lang::BinaryOp::kDiv &&
            instr.binary_op != lang::BinaryOp::kRem) {
          continue;
        }
        const auto divisor = static_cast<size_t>(instr.b);
        if (!is_const_[divisor] || const_value_[divisor] == 0) {
          if (!is_const_[divisor]) {
            Report(BugSignal::Kind::kNonConstantDivisor, instr.line);
          }
        }
      }
    }
  }

  void CheckConstantConditions() {
    for (size_t b = 0; b < fn_.blocks.size(); ++b) {
      const auto& term = fn_.blocks[b].term;
      if (term.kind != lang::TerminatorKind::kBranch) {
        continue;
      }
      const auto cond = static_cast<size_t>(term.cond);
      if (is_const_[cond]) {
        // Loop headers with constant-true conditions are an infinite-loop
        // risk rather than dead code; distinguish by back-edge shape.
        if (const_value_[cond] != 0 && HasBackEdgeTo(static_cast<lang::BlockId>(b))) {
          Report(BugSignal::Kind::kInfiniteLoopRisk, term.line);
        } else {
          Report(BugSignal::Kind::kConstantCondition, term.line);
        }
      }
    }
  }

  bool HasBackEdgeTo(lang::BlockId header) const {
    for (size_t b = static_cast<size_t>(header); b < fn_.blocks.size(); ++b) {
      for (lang::BlockId succ : fn_.Successors(static_cast<lang::BlockId>(b))) {
        if (succ == header && static_cast<size_t>(succ) <= b) {
          return true;
        }
      }
    }
    return false;
  }

  void CheckDeadStores() {
    // A named (non-temp) register written by kCopy but never read anywhere.
    std::vector<bool> read(static_cast<size_t>(fn_.reg_count), false);
    auto mark = [&read](lang::RegId reg) {
      if (reg != lang::kNoReg) {
        read[static_cast<size_t>(reg)] = true;
      }
    };
    for (const auto& block : fn_.blocks) {
      for (const auto& instr : block.instrs) {
        lang::ForEachUse(instr, mark);
      }
      mark(block.term.cond);
      mark(block.term.value);
    }
    std::vector<int> first_write_line(static_cast<size_t>(fn_.reg_count), 0);
    std::vector<bool> written(static_cast<size_t>(fn_.reg_count), false);
    for (const auto& block : fn_.blocks) {
      for (const auto& instr : block.instrs) {
        if (instr.op == lang::IrOpcode::kCopy && instr.dst != lang::kNoReg) {
          const auto dst = static_cast<size_t>(instr.dst);
          if (!written[dst]) {
            written[dst] = true;
            first_write_line[dst] = instr.line;
          }
        }
      }
    }
    for (lang::RegId reg = 0; reg < fn_.reg_count; ++reg) {
      const auto r = static_cast<size_t>(reg);
      if (!written[r] || read[r]) {
        continue;
      }
      const std::string& name = fn_.reg_names[r];
      if (!name.empty() && name[0] != 't') {  // Skip compiler temps.
        Report(BugSignal::Kind::kDeadStore, first_write_line[r]);
      }
    }
  }

  void CheckUnreachable() {
    std::vector<bool> reachable(fn_.blocks.size(), false);
    std::vector<lang::BlockId> stack = {0};
    while (!stack.empty()) {
      const lang::BlockId block = stack.back();
      stack.pop_back();
      if (reachable[static_cast<size_t>(block)]) {
        continue;
      }
      reachable[static_cast<size_t>(block)] = true;
      for (lang::BlockId succ : fn_.Successors(block)) {
        stack.push_back(succ);
      }
    }
    for (size_t b = 0; b < fn_.blocks.size(); ++b) {
      if (!reachable[b] && !fn_.blocks[b].instrs.empty()) {
        Report(BugSignal::Kind::kUnreachableCode, fn_.blocks[b].instrs.front().line);
      }
    }
  }

  const lang::IrFunction& fn_;
  std::vector<BugSignal>& out_;
  std::vector<bool> input_derived_;
  std::vector<bool> is_const_;
  std::vector<int64_t> const_value_;
  std::vector<bool> compared_;
};

}  // namespace

std::vector<BugSignal> FindBugSignals(const lang::IrModule& module) {
  std::vector<BugSignal> signals;
  for (const auto& fn : module.functions) {
    IrLinter(fn, signals).Run();
  }
  return signals;
}

}  // namespace metrics
