// Static call graph over an IR module: fan-in/fan-out, recursion detection,
// and reachability from entry points. Contributes the "control flow analysis
// can determine numbers of calling and returning targets" features of §4.1.
#ifndef SRC_METRICS_CALLGRAPH_H_
#define SRC_METRICS_CALLGRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/lang/ir.h"

namespace metrics {

class CallGraph {
 public:
  explicit CallGraph(const lang::IrModule& module);

  // Distinct user-defined callees of `fn` (excludes builtins and externals).
  int FanOut(const std::string& fn) const;
  // Distinct user-defined callers of `fn`.
  int FanIn(const std::string& fn) const;
  // Total call sites inside `fn` (including builtins and externals).
  int CallSites(const std::string& fn) const;

  // True if `fn` participates in a call cycle (direct or mutual recursion).
  bool IsRecursive(const std::string& fn) const;

  // Functions reachable from `entry` (inclusive). Unknown entry -> empty.
  std::set<std::string> ReachableFrom(const std::string& entry) const;

  // Names of functions never called by any other function (roots / exports).
  std::vector<std::string> Roots() const;

  const std::set<std::string>& Callees(const std::string& fn) const;

 private:
  std::map<std::string, std::set<std::string>> callees_;
  std::map<std::string, std::set<std::string>> callers_;
  std::map<std::string, int> call_sites_;
  std::set<std::string> recursive_;
  std::set<std::string> defined_;
  std::set<std::string> empty_;
};

}  // namespace metrics

#endif  // SRC_METRICS_CALLGRAPH_H_
