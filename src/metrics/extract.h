// Top-level static feature extraction — the "automated framework to collect
// all the code properties from the sample applications" of §5.1 (the paper
// names CCCC and Metrix++ as the comparable tools).
//
// MiniC sources get the full treatment (parse, lower, CFG/call-graph
// analyses). Python/Java sources receive text-level features only (line
// classes and lightweight declaration counting), mirroring how cloc treats
// languages it cannot parse deeply.
#ifndef SRC_METRICS_EXTRACT_H_
#define SRC_METRICS_EXTRACT_H_

#include <string>
#include <vector>

#include "src/lang/ast.h"
#include "src/lang/ir.h"
#include "src/metrics/cloc.h"
#include "src/metrics/feature_vector.h"
#include "src/support/result.h"

namespace metrics {

struct SourceFile {
  std::string path;
  Language language = Language::kMiniC;
  std::string text;
};

// Extracts features for a single file. Never fails: unparseable MiniC
// degrades to text-level features plus "parse.failed"=1.
FeatureVector ExtractFileFeatures(const SourceFile& file);

// Extracts and aggregates features across an application's files, adding
// app-level features (file count, language mix, call-graph shape, mean and
// max per-function complexity).
FeatureVector ExtractAppFeatures(const std::vector<SourceFile>& files);

// The Shin et al. per-function features the paper cites in §4 (LoC, number
// of functions, declarations, branches, preprocessed lines, in/out args);
// exposed separately for tests.
FeatureVector ShinFeatures(const lang::TranslationUnit& unit, const lang::IrModule& module);

// ---------------------------------------------------------------------------
// Function-granular extraction, for LEOPARD-style ranking of individual
// functions rather than whole applications. The schema is FIXED — every
// function yields the same feature names in the same order — so per-function
// rows from different files can stream straight into a columnar store
// without schema reconciliation.
// ---------------------------------------------------------------------------

// The fixed schema, in column order. Structural counts ("fn."), call-graph
// shape ("cg."), and per-function static bug signals ("sig.", one column
// per BugSignal::Kind).
const std::vector<std::string>& FunctionFeatureNames();

struct FunctionFeatures {
  std::string name;            // Function name (unique within a MiniC file).
  std::vector<double> values;  // Parallel to FunctionFeatureNames().
};

// One entry per function in `unit`, in declaration order. `module` must be
// the lowering of `unit` (names are matched; functions missing from the IR
// get zeros for IR-derived columns).
std::vector<FunctionFeatures> ExtractFunctionFeatures(const lang::TranslationUnit& unit,
                                                      const lang::IrModule& module);

}  // namespace metrics

#endif  // SRC_METRICS_EXTRACT_H_
