// Top-level static feature extraction — the "automated framework to collect
// all the code properties from the sample applications" of §5.1 (the paper
// names CCCC and Metrix++ as the comparable tools).
//
// MiniC sources get the full treatment (parse, lower, CFG/call-graph
// analyses). Python/Java sources receive text-level features only (line
// classes and lightweight declaration counting), mirroring how cloc treats
// languages it cannot parse deeply.
#ifndef SRC_METRICS_EXTRACT_H_
#define SRC_METRICS_EXTRACT_H_

#include <map>
#include <string>
#include <vector>

#include "src/lang/ast.h"
#include "src/lang/ir.h"
#include "src/metrics/cloc.h"
#include "src/metrics/feature_vector.h"
#include "src/support/result.h"

namespace metrics {

struct SourceFile {
  std::string path;
  Language language = Language::kMiniC;
  std::string text;
};

// Extracts features for a single file. Never fails: unparseable MiniC
// degrades to text-level features plus "parse.failed"=1.
FeatureVector ExtractFileFeatures(const SourceFile& file);

// Extracts and aggregates features across an application's files, adding
// app-level features (file count, language mix, call-graph shape, mean and
// max per-function complexity).
FeatureVector ExtractAppFeatures(const std::vector<SourceFile>& files);

// The Shin et al. per-function features the paper cites in §4 (LoC, number
// of functions, declarations, branches, preprocessed lines, in/out args);
// exposed separately for tests.
FeatureVector ShinFeatures(const lang::TranslationUnit& unit, const lang::IrModule& module);

// ---------------------------------------------------------------------------
// Function-granular extraction, for LEOPARD-style ranking of individual
// functions rather than whole applications. The schema is FIXED — every
// function yields the same feature names in the same order — so per-function
// rows from different files can stream straight into a columnar store
// without schema reconciliation.
// ---------------------------------------------------------------------------

// The fixed schema, in column order. Structural counts ("fn."), call-graph
// shape ("cg."), per-function static bug signals ("sig.", one column per
// BugSignal::Kind), and version-history process metrics ("proc.", zeros
// when no history is supplied).
const std::vector<std::string>& FunctionFeatureNames();

struct FunctionFeatures {
  std::string name;            // Function name (unique within a MiniC file).
  std::vector<double> values;  // Parallel to FunctionFeatureNames().
};

// Version-history ("process") metrics for one function — Viszkok et al.
// show churn/age/touch features materially improve vulnerability prediction
// over static metrics alone. Produced by corpus::VersionHistory for the
// synthetic corpus; any VCS walker can fill them for real code. This layer
// only consumes the numbers.
struct ProcessMetrics {
  double touches = 0.0;            // Commits that modified the function.
  double age_days = 0.0;           // Days since the function first appeared.
  double days_since_change = 0.0;  // Days since its last modification.
  double lines_added = 0.0;        // Lines added across its history.
  double lines_deleted = 0.0;      // Lines deleted across its history.
};

// One entry per function in `unit`, in declaration order. `module` must be
// the lowering of `unit` (names are matched; functions missing from the IR
// get zeros for IR-derived columns). `process`, when non-null, maps function
// name to its history metrics; absent functions (and a null map) yield
// all-zero proc.* columns, so schemas never fork.
std::vector<FunctionFeatures> ExtractFunctionFeatures(
    const lang::TranslationUnit& unit, const lang::IrModule& module,
    const std::map<std::string, ProcessMetrics>* process = nullptr);

}  // namespace metrics

#endif  // SRC_METRICS_EXTRACT_H_
