#include "src/metrics/extract.h"

#include <algorithm>
#include <array>
#include <map>

#include "src/lang/lexer.h"
#include "src/lang/parser.h"
#include "src/metrics/callgraph.h"
#include "src/metrics/complexity.h"
#include "src/metrics/smells.h"
#include "src/support/strings.h"

namespace metrics {
namespace {

void AddLineFeatures(FeatureVector& fv, const LineCount& lines) {
  fv.Add("loc.code", static_cast<double>(lines.code));
  fv.Add("loc.comment", static_cast<double>(lines.comment));
  fv.Add("loc.blank", static_cast<double>(lines.blank));
  fv.Add("loc.total", static_cast<double>(lines.total()));
}

// Counts statements of each kind (declaration/branch counts for the Shin
// feature family).
struct StmtCounts {
  long long declarations = 0;
  long long branches = 0;
  long long loops = 0;
  long long returns = 0;
  long long statements = 0;
};

void CountStmts(const std::vector<std::unique_ptr<lang::Stmt>>& body, StmtCounts& counts);

void CountStmt(const lang::Stmt& stmt, StmtCounts& counts) {
  ++counts.statements;
  switch (stmt.kind) {
    case lang::StmtKind::kVarDecl:
      ++counts.declarations;
      break;
    case lang::StmtKind::kIf:
      ++counts.branches;
      CountStmts(stmt.then_body, counts);
      CountStmts(stmt.else_body, counts);
      break;
    case lang::StmtKind::kWhile:
    case lang::StmtKind::kFor:
      ++counts.loops;
      if (stmt.init_stmt) {
        CountStmt(*stmt.init_stmt, counts);
      }
      CountStmts(stmt.then_body, counts);
      break;
    case lang::StmtKind::kSwitch:
      counts.branches += static_cast<long long>(stmt.cases.size());
      for (const auto& sc : stmt.cases) {
        CountStmts(sc.body, counts);
      }
      break;
    case lang::StmtKind::kReturn:
      ++counts.returns;
      break;
    case lang::StmtKind::kBlock:
      CountStmts(stmt.block, counts);
      break;
    default:
      break;
  }
}

void CountStmts(const std::vector<std::unique_ptr<lang::Stmt>>& body, StmtCounts& counts) {
  for (const auto& stmt : body) {
    CountStmt(*stmt, counts);
  }
}

// Text-level declaration heuristics for languages without a frontend:
// counts lines that look like function/method definitions.
long long HeuristicFunctionCount(std::string_view text, Language lang) {
  long long count = 0;
  size_t start = 0;
  auto next_line = [&](std::string_view& line) {
    if (start >= text.size()) {
      return false;
    }
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    line = text.substr(start, end - start);
    start = end + 1;
    return true;
  };
  std::string_view line;
  while (next_line(line)) {
    const auto trimmed = support::Trim(line);
    if (lang == Language::kPython) {
      if (support::StartsWith(trimmed, "def ")) {
        ++count;
      }
    } else {
      // C/C++/Java: a line ending in ") {" whose first token looks like a
      // type or qualifier. Deliberately rough — mirrors regex-based tools.
      if (support::EndsWith(trimmed, "{") && trimmed.find('(') != std::string_view::npos &&
          trimmed.find(')') != std::string_view::npos &&
          !support::StartsWith(trimmed, "if") && !support::StartsWith(trimmed, "for") &&
          !support::StartsWith(trimmed, "while") && !support::StartsWith(trimmed, "switch")) {
        ++count;
      }
    }
  }
  return count;
}

}  // namespace

FeatureVector ShinFeatures(const lang::TranslationUnit& unit, const lang::IrModule& module) {
  FeatureVector fv;
  fv.Set("shin.functions", static_cast<double>(unit.functions.size()));
  fv.Set("shin.globals", static_cast<double>(unit.globals.size()));
  StmtCounts counts;
  long long total_params = 0;
  long long value_returning = 0;
  for (const auto& fn : unit.functions) {
    CountStmts(fn.body, counts);
    total_params += static_cast<long long>(fn.params.size());
    if (fn.return_type.base != lang::BaseType::kVoid) {
      ++value_returning;
    }
  }
  fv.Set("shin.declarations", static_cast<double>(counts.declarations));
  fv.Set("shin.branches", static_cast<double>(counts.branches));
  fv.Set("shin.loops", static_cast<double>(counts.loops));
  fv.Set("shin.returns", static_cast<double>(counts.returns));
  fv.Set("shin.statements", static_cast<double>(counts.statements));
  fv.Set("shin.input_args", static_cast<double>(total_params));
  fv.Set("shin.output_args", static_cast<double>(value_returning));
  // MiniC has no preprocessor; preprocessed lines == statements is the
  // closest analogue and keeps the feature family complete.
  fv.Set("shin.preprocessed_lines", static_cast<double>(counts.statements));
  // Register pressure as a declaration-density proxy.
  long long regs = 0;
  for (const auto& fn : module.functions) {
    regs += fn.reg_count;
  }
  fv.Set("shin.virtual_regs", static_cast<double>(regs));
  return fv;
}

const std::vector<std::string>& FunctionFeatureNames() {
  static const std::vector<std::string> kNames = {
      "fn.lines",
      "fn.params",
      "fn.returns_value",
      "fn.statements",
      "fn.declarations",
      "fn.branches",
      "fn.loops",
      "fn.return_stmts",
      "fn.mccabe",
      "fn.decision_points",
      "fn.max_nesting",
      "fn.virtual_regs",
      "cg.fan_in",
      "cg.fan_out",
      "cg.call_sites",
      "cg.recursive",
      "sig.unchecked_input_index",
      "sig.non_constant_divisor",
      "sig.constant_condition",
      "sig.dead_store",
      "sig.unreachable_code",
      "sig.infinite_loop_risk",
      "sig.signed_overflow_risk",
      "proc.touches",
      "proc.age_days",
      "proc.days_since_change",
      "proc.lines_added",
      "proc.lines_deleted",
  };
  return kNames;
}

std::vector<FunctionFeatures> ExtractFunctionFeatures(
    const lang::TranslationUnit& unit, const lang::IrModule& module,
    const std::map<std::string, ProcessMetrics>* process) {
  // Column indices, kept in lockstep with FunctionFeatureNames().
  enum Column : size_t {
    kLines = 0,
    kParams,
    kReturnsValue,
    kStatements,
    kDeclarations,
    kBranches,
    kLoops,
    kReturnStmts,
    kMccabe,
    kDecisionPoints,
    kMaxNesting,
    kVirtualRegs,
    kFanIn,
    kFanOut,
    kCallSites,
    kRecursive,
    kSigFirst,              // BugSignal::Kind columns follow in enum order.
    kProcFirst = kSigFirst + 7,  // proc.* columns follow the 7 signal kinds.
  };
  const size_t width = FunctionFeatureNames().size();

  std::map<std::string, const lang::IrFunction*> ir_by_name;
  for (const auto& fn : module.functions) {
    ir_by_name.emplace(fn.name, &fn);
  }
  std::map<std::string, std::array<double, 7>> signal_counts;
  for (const auto& signal : FindBugSignals(module)) {
    signal_counts[signal.function][static_cast<size_t>(signal.kind)] += 1.0;
  }
  const CallGraph graph(module);

  std::vector<FunctionFeatures> out;
  out.reserve(unit.functions.size());
  for (const auto& fn : unit.functions) {
    FunctionFeatures row;
    row.name = fn.name;
    row.values.assign(width, 0.0);
    row.values[kLines] = static_cast<double>(fn.end_line - fn.line + 1);
    row.values[kParams] = static_cast<double>(fn.params.size());
    row.values[kReturnsValue] = fn.return_type.base != lang::BaseType::kVoid ? 1.0 : 0.0;
    StmtCounts counts;
    CountStmts(fn.body, counts);
    row.values[kStatements] = static_cast<double>(counts.statements);
    row.values[kDeclarations] = static_cast<double>(counts.declarations);
    row.values[kBranches] = static_cast<double>(counts.branches);
    row.values[kLoops] = static_cast<double>(counts.loops);
    row.values[kReturnStmts] = static_cast<double>(counts.returns);
    row.values[kDecisionPoints] = static_cast<double>(DecisionPoints(fn));
    row.values[kMaxNesting] = static_cast<double>(MaxNestingDepth(fn));
    const auto ir = ir_by_name.find(fn.name);
    if (ir != ir_by_name.end()) {
      row.values[kMccabe] = static_cast<double>(CyclomaticComplexity(*ir->second));
      row.values[kVirtualRegs] = static_cast<double>(ir->second->reg_count);
    }
    row.values[kFanIn] = static_cast<double>(graph.FanIn(fn.name));
    row.values[kFanOut] = static_cast<double>(graph.FanOut(fn.name));
    row.values[kCallSites] = static_cast<double>(graph.CallSites(fn.name));
    row.values[kRecursive] = graph.IsRecursive(fn.name) ? 1.0 : 0.0;
    const auto signals = signal_counts.find(fn.name);
    if (signals != signal_counts.end()) {
      for (size_t k = 0; k < signals->second.size(); ++k) {
        row.values[kSigFirst + k] = signals->second[k];
      }
    }
    if (process != nullptr) {
      const auto proc = process->find(fn.name);
      if (proc != process->end()) {
        row.values[kProcFirst + 0] = proc->second.touches;
        row.values[kProcFirst + 1] = proc->second.age_days;
        row.values[kProcFirst + 2] = proc->second.days_since_change;
        row.values[kProcFirst + 3] = proc->second.lines_added;
        row.values[kProcFirst + 4] = proc->second.lines_deleted;
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

FeatureVector ExtractFileFeatures(const SourceFile& file) {
  FeatureVector fv;
  AddLineFeatures(fv, CountLines(file.text, file.language));
  fv.Add(std::string("lang.") + support::ToLower(LanguageName(file.language)) + ".files", 1.0);

  if (file.language != Language::kMiniC) {
    fv.Set("shin.functions", static_cast<double>(HeuristicFunctionCount(file.text,
                                                                        file.language)));
    return fv;
  }

  auto lexed = lang::Lex(file.text);
  if (!lexed.ok()) {
    fv.Set("parse.failed", 1.0);
    return fv;
  }
  const auto halstead = ComputeHalstead(lexed.value().tokens);
  fv.Set("halstead.vocabulary", halstead.vocabulary);
  fv.Set("halstead.length", halstead.length);
  fv.Set("halstead.volume", halstead.volume);
  fv.Set("halstead.difficulty", halstead.difficulty);
  fv.Set("halstead.effort", halstead.effort);
  fv.Set("halstead.estimated_bugs", halstead.estimated_bugs);

  auto unit = lang::Parse(file.text);
  if (!unit.ok()) {
    fv.Set("parse.failed", 1.0);
    return fv;
  }
  auto module = lang::LowerToIr(unit.value());
  if (!module.ok()) {
    fv.Set("parse.failed", 1.0);
    return fv;
  }

  fv.MergeSum(ShinFeatures(unit.value(), module.value()));

  // Cyclomatic complexity: total plus per-function max/mean.
  long long total_mccabe = 0;
  int max_mccabe = 0;
  for (const auto& fn : module.value().functions) {
    const int m = CyclomaticComplexity(fn);
    total_mccabe += m;
    max_mccabe = std::max(max_mccabe, m);
  }
  fv.Set("mccabe.total", static_cast<double>(total_mccabe));
  fv.Set("mccabe.max", static_cast<double>(max_mccabe));
  if (!module.value().functions.empty()) {
    fv.Set("mccabe.mean", static_cast<double>(total_mccabe) /
                              static_cast<double>(module.value().functions.size()));
  }
  int max_nesting = 0;
  for (const auto& fn : unit.value().functions) {
    max_nesting = std::max(max_nesting, MaxNestingDepth(fn));
  }
  fv.Set("nesting.max", static_cast<double>(max_nesting));

  const auto smells = DetectSmells(unit.value());
  fv.Set("smell.long_methods", static_cast<double>(smells.long_methods));
  fv.Set("smell.long_param_lists", static_cast<double>(smells.long_param_lists));
  fv.Set("smell.deeply_nested", static_cast<double>(smells.deeply_nested));
  fv.Set("smell.god_functions", static_cast<double>(smells.god_functions));
  fv.Set("smell.magic_numbers", static_cast<double>(smells.magic_numbers));
  fv.Set("smell.total", static_cast<double>(smells.Total()));

  const auto signals = FindBugSignals(module.value());
  fv.Set("lint.total", static_cast<double>(signals.size()));
  for (const auto& signal : signals) {
    fv.Add(std::string("lint.") + BugSignalKindName(signal.kind), 1.0);
  }

  const CallGraph graph(module.value());
  long long fan_out_sum = 0;
  int fan_out_max = 0;
  long long recursive = 0;
  for (const auto& fn : module.value().functions) {
    const int fo = graph.FanOut(fn.name);
    fan_out_sum += fo;
    fan_out_max = std::max(fan_out_max, fo);
    if (graph.IsRecursive(fn.name)) {
      ++recursive;
    }
  }
  fv.Set("callgraph.fan_out_sum", static_cast<double>(fan_out_sum));
  fv.Set("callgraph.fan_out_max", static_cast<double>(fan_out_max));
  fv.Set("callgraph.recursive_functions", static_cast<double>(recursive));
  fv.Set("callgraph.roots", static_cast<double>(graph.Roots().size()));
  return fv;
}

FeatureVector ExtractAppFeatures(const std::vector<SourceFile>& files) {
  FeatureVector app;
  for (const auto& file : files) {
    app.MergeSum(ExtractFileFeatures(file));
  }
  app.Set("app.files", static_cast<double>(files.size()));
  const double code = app.Get("loc.code");
  const double comment = app.Get("loc.comment");
  if (code > 0.0) {
    app.Set("loc.comment_ratio", comment / code);
  }
  return app;
}

}  // namespace metrics
