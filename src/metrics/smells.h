// "Code smell" detectors (§3: lines of comments, long methods, etc.) and
// lint-style bug-finding signals (§4.2: feeding bug-report counts into the
// learner). Both operate on the parsed MiniC AST / lowered IR.
#ifndef SRC_METRICS_SMELLS_H_
#define SRC_METRICS_SMELLS_H_

#include <string>
#include <vector>

#include "src/lang/ast.h"
#include "src/lang/ir.h"

namespace metrics {

// Thresholds follow common defaults from the code-smell literature.
struct SmellThresholds {
  int long_method_lines = 60;
  int long_param_list = 5;
  int deep_nesting = 4;
  int god_function_callees = 8;
  int magic_number_min = 2;  // Literals > this magnitude count as magic.
};

struct SmellReport {
  int long_methods = 0;
  int long_param_lists = 0;
  int deeply_nested = 0;
  int god_functions = 0;    // Functions calling many distinct callees.
  long long magic_numbers = 0;
  int functions = 0;

  long long Total() const {
    return long_methods + long_param_lists + deeply_nested + god_functions + magic_numbers;
  }
};

SmellReport DetectSmells(const lang::TranslationUnit& unit,
                         const SmellThresholds& thresholds = {});

// A single static bug-finding diagnostic (the §4.2 signal).
struct BugSignal {
  enum class Kind {
    kUncheckedInputIndex,   // input() value used as array index with no guard.
    kNonConstantDivisor,    // Division/modulo by a non-literal value.
    kConstantCondition,     // Branch condition is a literal constant.
    kDeadStore,             // Register written but never read.
    kUnreachableCode,       // IR block not reachable from the entry.
    kInfiniteLoopRisk,      // Loop with constant-true condition and no break.
    kSignedOverflowRisk,    // Arithmetic on values near INT bounds (heuristic).
  };
  Kind kind;
  std::string function;
  int line = 0;
};

const char* BugSignalKindName(BugSignal::Kind kind);

// Runs all detectors over the module; deterministic order (function order,
// then line).
std::vector<BugSignal> FindBugSignals(const lang::IrModule& module);

}  // namespace metrics

#endif  // SRC_METRICS_SMELLS_H_
