#include "src/metrics/cloc.h"

#include <cctype>
#include <string>
#include <vector>

namespace metrics {
namespace {

bool IsBlank(std::string_view line) {
  for (char c : line) {
    if (!std::isspace(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      lines.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (start < text.size()) {
    lines.push_back(text.substr(start));
  }
  return lines;
}

// C/C++/Java/MiniC: line-comment "//" and block comment "/* ... */".
// String and char literals shield comment markers.
LineCount CountCFamily(std::string_view text) {
  LineCount count;
  bool in_block_comment = false;
  for (std::string_view line : SplitLines(text)) {
    if (!in_block_comment && IsBlank(line)) {
      ++count.blank;
      continue;
    }
    bool saw_code = false;
    bool saw_comment = in_block_comment;
    size_t i = 0;
    char string_delim = '\0';
    while (i < line.size()) {
      const char c = line[i];
      if (in_block_comment) {
        saw_comment = true;
        if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        ++i;
        continue;
      }
      if (string_delim != '\0') {
        saw_code = true;
        if (c == '\\') {
          i += 2;
          continue;
        }
        if (c == string_delim) {
          string_delim = '\0';
        }
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        string_delim = c;
        saw_code = true;
        ++i;
        continue;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        saw_comment = true;
        break;  // Rest of line is comment.
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        saw_comment = true;
        i += 2;
        continue;
      }
      if (!std::isspace(static_cast<unsigned char>(c))) {
        saw_code = true;
      }
      ++i;
    }
    if (saw_code) {
      ++count.code;
    } else if (saw_comment) {
      ++count.comment;
    } else {
      ++count.blank;
    }
  }
  return count;
}

// Python: "#" comments; a triple-quoted string that *starts* a line opens a
// docstring region counted as comment lines until the closing triple quote.
LineCount CountPython(std::string_view text) {
  LineCount count;
  bool in_docstring = false;
  char doc_quote = '"';
  for (std::string_view line : SplitLines(text)) {
    if (in_docstring) {
      ++count.comment;
      const std::string closer(3, doc_quote);
      if (line.find(closer) != std::string_view::npos) {
        in_docstring = false;
      }
      continue;
    }
    if (IsBlank(line)) {
      ++count.blank;
      continue;
    }
    // Leading whitespace then content.
    size_t first = 0;
    while (first < line.size() && std::isspace(static_cast<unsigned char>(line[first]))) {
      ++first;
    }
    const std::string_view body = line.substr(first);
    if (body[0] == '#') {
      ++count.comment;
      continue;
    }
    if (body.size() >= 3 && (body.substr(0, 3) == "\"\"\"" || body.substr(0, 3) == "'''")) {
      doc_quote = body[0];
      ++count.comment;
      // One-line docstring closes on the same line.
      const std::string closer(3, doc_quote);
      if (body.size() >= 6 && body.find(closer, 3) != std::string_view::npos) {
        continue;
      }
      in_docstring = true;
      continue;
    }
    ++count.code;
  }
  return count;
}

}  // namespace

const char* LanguageName(Language lang) {
  switch (lang) {
    case Language::kC:
      return "C";
    case Language::kCpp:
      return "C++";
    case Language::kPython:
      return "Python";
    case Language::kJava:
      return "Java";
    case Language::kMiniC:
      return "MiniC";
  }
  return "<bad>";
}

LineCount CountLines(std::string_view text, Language lang) {
  switch (lang) {
    case Language::kC:
    case Language::kCpp:
    case Language::kJava:
    case Language::kMiniC:
      return CountCFamily(text);
    case Language::kPython:
      return CountPython(text);
  }
  return {};
}

}  // namespace metrics
