#include "src/metrics/feature_vector.h"

#include <algorithm>

#include "src/support/strings.h"

namespace metrics {

void FeatureVector::Set(std::string_view name, double value) {
  values_[std::string(name)] = value;
}

void FeatureVector::Add(std::string_view name, double value) {
  values_[std::string(name)] += value;
}

bool FeatureVector::Has(std::string_view name) const {
  return values_.find(std::string(name)) != values_.end();
}

double FeatureVector::Get(std::string_view name, double fallback) const {
  const auto it = values_.find(std::string(name));
  return it == values_.end() ? fallback : it->second;
}

void FeatureVector::MergeSum(const FeatureVector& other) {
  for (const auto& [name, value] : other.values_) {
    values_[name] += value;
  }
}

void FeatureVector::MergeMax(const FeatureVector& other) {
  for (const auto& [name, value] : other.values_) {
    const auto it = values_.find(name);
    if (it == values_.end()) {
      values_[name] = value;
    } else {
      it->second = std::max(it->second, value);
    }
  }
}

std::vector<std::pair<std::string, double>> FeatureVector::WithPrefix(
    std::string_view prefix) const {
  std::vector<std::pair<std::string, double>> out;
  for (auto it = values_.lower_bound(std::string(prefix)); it != values_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    out.emplace_back(it->first, it->second);
  }
  return out;
}

std::vector<std::string> FeatureVector::Names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, _] : values_) {
    names.push_back(name);
  }
  return names;
}

std::string FeatureVector::ToString() const {
  std::string out;
  for (const auto& [name, value] : values_) {
    out += support::Format("%s=%.6g\n", name.c_str(), value);
  }
  return out;
}

}  // namespace metrics
