// A curated subtree of the Common Weakness Enumeration (CWE) taxonomy — the
// classification half of the paper's prediction targets ("Does an
// application suffer any stack-based buffer overflow (CWE = 121)?").
#ifndef SRC_CVSS_CWE_H_
#define SRC_CVSS_CWE_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace cvss {

// Weakness categories the corpus generator and hypotheses group CWEs into.
enum class CweCategory : uint8_t {
  kMemorySafety,
  kInjection,
  kInputValidation,
  kCrypto,
  kConcurrency,
  kResourceManagement,
  kInformationLeak,
  kAccessControl,
  kNumeric,
  kOther,
};

const char* CweCategoryName(CweCategory category);

struct CweEntry {
  int id = 0;
  const char* name = "";
  CweCategory category = CweCategory::kOther;
  int parent = 0;  // 0 = taxonomy root.
};

// The full curated table (sorted by id).
const std::vector<CweEntry>& CweTable();

// Lookup by id; nullptr if the id is not in the curated subtree.
const CweEntry* FindCwe(int id);

// Category for an id (kOther for unknown ids).
CweCategory CategoryOf(int id);

// True if `id` equals `ancestor` or `ancestor` is reachable via parents.
bool IsA(int id, int ancestor);

// Well-known ids used throughout the library.
inline constexpr int kCweStackBufferOverflow = 121;
inline constexpr int kCweHeapBufferOverflow = 122;
inline constexpr int kCweBufferOverflowParent = 119;  // Improper memory bounds.
inline constexpr int kCweOutOfBoundsRead = 125;
inline constexpr int kCweOutOfBoundsWrite = 787;
inline constexpr int kCweUseAfterFree = 416;
inline constexpr int kCweDoubleFree = 415;
inline constexpr int kCweNullDeref = 476;
inline constexpr int kCweIntegerOverflow = 190;
inline constexpr int kCweDivideByZero = 369;
inline constexpr int kCweSqlInjection = 89;
inline constexpr int kCweCommandInjection = 78;
inline constexpr int kCweXss = 79;
inline constexpr int kCwePathTraversal = 22;
inline constexpr int kCweFormatString = 134;
inline constexpr int kCweInputValidation = 20;
inline constexpr int kCweRaceCondition = 362;
inline constexpr int kCweInfoExposure = 200;
inline constexpr int kCweAuthBypass = 287;
inline constexpr int kCwePermissions = 732;
inline constexpr int kCweWeakCrypto = 327;
inline constexpr int kCweHardcodedCreds = 798;
inline constexpr int kCweResourceExhaustion = 400;
inline constexpr int kCweUncontrolledRecursion = 674;

}  // namespace cvss

#endif  // SRC_CVSS_CWE_H_
