// CVSS v3.0 (Common Vulnerability Scoring System) — full base + temporal
// scoring per the FIRST specification, including vector-string parsing and
// emission. The paper's prediction targets (§5.2) are built from these
// factors: attack vector, attack complexity, privileges required, C/I/A
// impact, and the aggregated score.
#ifndef SRC_CVSS_CVSS_H_
#define SRC_CVSS_CVSS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/support/result.h"

namespace cvss {

enum class AttackVector : uint8_t { kNetwork, kAdjacent, kLocal, kPhysical };
enum class AttackComplexity : uint8_t { kLow, kHigh };
enum class PrivilegesRequired : uint8_t { kNone, kLow, kHigh };
enum class UserInteraction : uint8_t { kNone, kRequired };
enum class Scope : uint8_t { kUnchanged, kChanged };
enum class Impact : uint8_t { kNone, kLow, kHigh };

// Temporal metrics; kNotDefined leaves the multiplier at 1.0.
enum class ExploitMaturity : uint8_t {
  kNotDefined,
  kUnproven,
  kProofOfConcept,
  kFunctional,
  kHigh,
};
enum class RemediationLevel : uint8_t {
  kNotDefined,
  kOfficialFix,
  kTemporaryFix,
  kWorkaround,
  kUnavailable,
};
enum class ReportConfidence : uint8_t { kNotDefined, kUnknown, kReasonable, kConfirmed };

enum class Severity : uint8_t { kNone, kLow, kMedium, kHigh, kCritical };

const char* SeverityName(Severity severity);

struct Vector {
  AttackVector av = AttackVector::kNetwork;
  AttackComplexity ac = AttackComplexity::kLow;
  PrivilegesRequired pr = PrivilegesRequired::kNone;
  UserInteraction ui = UserInteraction::kNone;
  Scope scope = Scope::kUnchanged;
  Impact confidentiality = Impact::kNone;
  Impact integrity = Impact::kNone;
  Impact availability = Impact::kNone;
  ExploitMaturity exploit = ExploitMaturity::kNotDefined;
  RemediationLevel remediation = RemediationLevel::kNotDefined;
  ReportConfidence confidence = ReportConfidence::kNotDefined;

  bool operator==(const Vector&) const = default;
};

// Base score in [0.0, 10.0], rounded up to one decimal per the spec.
double BaseScore(const Vector& vector);
// Temporal score (base further scaled by E/RL/RC).
double TemporalScore(const Vector& vector);
// Severity band for a score.
Severity SeverityFor(double score);

// Canonical vector string, e.g. "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"
// (temporal metrics appended only when defined).
std::string ToVectorString(const Vector& vector);

// Parses a vector string. Requires the CVSS:3.0 prefix and all eight base
// metrics; temporal metrics are optional. Unknown keys are an error.
support::Result<Vector> ParseVectorString(std::string_view text);

// Spec rounding: smallest number, to one decimal, >= input ("round up").
double RoundUp1(double value);

}  // namespace cvss

#endif  // SRC_CVSS_CVSS_H_
