#include "src/cvss/cvss.h"

#include <cmath>
#include <map>
#include <vector>

#include "src/support/strings.h"

namespace cvss {
namespace {

using support::Error;

double AvWeight(AttackVector av) {
  switch (av) {
    case AttackVector::kNetwork:
      return 0.85;
    case AttackVector::kAdjacent:
      return 0.62;
    case AttackVector::kLocal:
      return 0.55;
    case AttackVector::kPhysical:
      return 0.20;
  }
  return 0.0;
}

double AcWeight(AttackComplexity ac) {
  return ac == AttackComplexity::kLow ? 0.77 : 0.44;
}

double PrWeight(PrivilegesRequired pr, Scope scope) {
  switch (pr) {
    case PrivilegesRequired::kNone:
      return 0.85;
    case PrivilegesRequired::kLow:
      return scope == Scope::kChanged ? 0.68 : 0.62;
    case PrivilegesRequired::kHigh:
      return scope == Scope::kChanged ? 0.50 : 0.27;
  }
  return 0.0;
}

double UiWeight(UserInteraction ui) {
  return ui == UserInteraction::kNone ? 0.85 : 0.62;
}

double ImpactWeight(Impact impact) {
  switch (impact) {
    case Impact::kHigh:
      return 0.56;
    case Impact::kLow:
      return 0.22;
    case Impact::kNone:
      return 0.0;
  }
  return 0.0;
}

double ExploitWeight(ExploitMaturity e) {
  switch (e) {
    case ExploitMaturity::kNotDefined:
    case ExploitMaturity::kHigh:
      return 1.0;
    case ExploitMaturity::kFunctional:
      return 0.97;
    case ExploitMaturity::kProofOfConcept:
      return 0.94;
    case ExploitMaturity::kUnproven:
      return 0.91;
  }
  return 1.0;
}

double RemediationWeight(RemediationLevel rl) {
  switch (rl) {
    case RemediationLevel::kNotDefined:
    case RemediationLevel::kUnavailable:
      return 1.0;
    case RemediationLevel::kWorkaround:
      return 0.97;
    case RemediationLevel::kTemporaryFix:
      return 0.96;
    case RemediationLevel::kOfficialFix:
      return 0.95;
  }
  return 1.0;
}

double ConfidenceWeight(ReportConfidence rc) {
  switch (rc) {
    case ReportConfidence::kNotDefined:
    case ReportConfidence::kConfirmed:
      return 1.0;
    case ReportConfidence::kReasonable:
      return 0.96;
    case ReportConfidence::kUnknown:
      return 0.92;
  }
  return 1.0;
}

}  // namespace

double RoundUp1(double value) {
  // ceil to one decimal with a tolerance for binary representation error.
  return std::ceil(value * 10.0 - 1e-9) / 10.0;
}

double BaseScore(const Vector& v) {
  const double iss = 1.0 - (1.0 - ImpactWeight(v.confidentiality)) *
                               (1.0 - ImpactWeight(v.integrity)) *
                               (1.0 - ImpactWeight(v.availability));
  double impact;
  if (v.scope == Scope::kUnchanged) {
    impact = 6.42 * iss;
  } else {
    impact = 7.52 * (iss - 0.029) - 3.25 * std::pow(iss - 0.02, 15.0);
  }
  const double exploitability =
      8.22 * AvWeight(v.av) * AcWeight(v.ac) * PrWeight(v.pr, v.scope) * UiWeight(v.ui);
  if (impact <= 0.0) {
    return 0.0;
  }
  if (v.scope == Scope::kUnchanged) {
    return RoundUp1(std::min(impact + exploitability, 10.0));
  }
  return RoundUp1(std::min(1.08 * (impact + exploitability), 10.0));
}

double TemporalScore(const Vector& v) {
  return RoundUp1(BaseScore(v) * ExploitWeight(v.exploit) * RemediationWeight(v.remediation) *
                  ConfidenceWeight(v.confidence));
}

Severity SeverityFor(double score) {
  if (score <= 0.0) {
    return Severity::kNone;
  }
  if (score < 4.0) {
    return Severity::kLow;
  }
  if (score < 7.0) {
    return Severity::kMedium;
  }
  if (score < 9.0) {
    return Severity::kHigh;
  }
  return Severity::kCritical;
}

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNone:
      return "None";
    case Severity::kLow:
      return "Low";
    case Severity::kMedium:
      return "Medium";
    case Severity::kHigh:
      return "High";
    case Severity::kCritical:
      return "Critical";
  }
  return "<bad>";
}

std::string ToVectorString(const Vector& v) {
  std::string out = "CVSS:3.0";
  auto append = [&out](const char* key, const char* value) {
    out += '/';
    out += key;
    out += ':';
    out += value;
  };
  append("AV", v.av == AttackVector::kNetwork    ? "N"
              : v.av == AttackVector::kAdjacent  ? "A"
              : v.av == AttackVector::kLocal     ? "L"
                                                 : "P");
  append("AC", v.ac == AttackComplexity::kLow ? "L" : "H");
  append("PR", v.pr == PrivilegesRequired::kNone  ? "N"
              : v.pr == PrivilegesRequired::kLow  ? "L"
                                                  : "H");
  append("UI", v.ui == UserInteraction::kNone ? "N" : "R");
  append("S", v.scope == Scope::kUnchanged ? "U" : "C");
  auto impact_code = [](Impact impact) {
    return impact == Impact::kHigh ? "H" : impact == Impact::kLow ? "L" : "N";
  };
  append("C", impact_code(v.confidentiality));
  append("I", impact_code(v.integrity));
  append("A", impact_code(v.availability));
  if (v.exploit != ExploitMaturity::kNotDefined) {
    append("E", v.exploit == ExploitMaturity::kHigh             ? "H"
               : v.exploit == ExploitMaturity::kFunctional      ? "F"
               : v.exploit == ExploitMaturity::kProofOfConcept  ? "P"
                                                                : "U");
  }
  if (v.remediation != RemediationLevel::kNotDefined) {
    append("RL", v.remediation == RemediationLevel::kOfficialFix    ? "O"
                : v.remediation == RemediationLevel::kTemporaryFix  ? "T"
                : v.remediation == RemediationLevel::kWorkaround    ? "W"
                                                                    : "U");
  }
  if (v.confidence != ReportConfidence::kNotDefined) {
    append("RC", v.confidence == ReportConfidence::kConfirmed   ? "C"
                : v.confidence == ReportConfidence::kReasonable ? "R"
                                                                : "U");
  }
  return out;
}

support::Result<Vector> ParseVectorString(std::string_view text) {
  const auto parts = support::Split(text, '/');
  if (parts.empty() || parts[0] != "CVSS:3.0") {
    return Error(Error::Code::kParseError, "vector must start with CVSS:3.0");
  }
  Vector v;
  bool seen[8] = {false, false, false, false, false, false, false, false};
  for (size_t i = 1; i < parts.size(); ++i) {
    const auto kv = support::Split(parts[i], ':');
    if (kv.size() != 2) {
      return Error(Error::Code::kParseError, "malformed metric '" + parts[i] + "'");
    }
    const std::string& key = kv[0];
    const std::string& val = kv[1];
    auto fail = [&]() {
      return Error(Error::Code::kParseError, "bad value for " + key + ": " + val);
    };
    if (key == "AV") {
      seen[0] = true;
      if (val == "N") {
        v.av = AttackVector::kNetwork;
      } else if (val == "A") {
        v.av = AttackVector::kAdjacent;
      } else if (val == "L") {
        v.av = AttackVector::kLocal;
      } else if (val == "P") {
        v.av = AttackVector::kPhysical;
      } else {
        return fail();
      }
    } else if (key == "AC") {
      seen[1] = true;
      if (val == "L") {
        v.ac = AttackComplexity::kLow;
      } else if (val == "H") {
        v.ac = AttackComplexity::kHigh;
      } else {
        return fail();
      }
    } else if (key == "PR") {
      seen[2] = true;
      if (val == "N") {
        v.pr = PrivilegesRequired::kNone;
      } else if (val == "L") {
        v.pr = PrivilegesRequired::kLow;
      } else if (val == "H") {
        v.pr = PrivilegesRequired::kHigh;
      } else {
        return fail();
      }
    } else if (key == "UI") {
      seen[3] = true;
      if (val == "N") {
        v.ui = UserInteraction::kNone;
      } else if (val == "R") {
        v.ui = UserInteraction::kRequired;
      } else {
        return fail();
      }
    } else if (key == "S") {
      seen[4] = true;
      if (val == "U") {
        v.scope = Scope::kUnchanged;
      } else if (val == "C") {
        v.scope = Scope::kChanged;
      } else {
        return fail();
      }
    } else if (key == "C" || key == "I" || key == "A") {
      Impact impact;
      if (val == "H") {
        impact = Impact::kHigh;
      } else if (val == "L") {
        impact = Impact::kLow;
      } else if (val == "N") {
        impact = Impact::kNone;
      } else {
        return fail();
      }
      if (key == "C") {
        seen[5] = true;
        v.confidentiality = impact;
      } else if (key == "I") {
        seen[6] = true;
        v.integrity = impact;
      } else {
        seen[7] = true;
        v.availability = impact;
      }
    } else if (key == "E") {
      if (val == "X") {
        v.exploit = ExploitMaturity::kNotDefined;
      } else if (val == "H") {
        v.exploit = ExploitMaturity::kHigh;
      } else if (val == "F") {
        v.exploit = ExploitMaturity::kFunctional;
      } else if (val == "P") {
        v.exploit = ExploitMaturity::kProofOfConcept;
      } else if (val == "U") {
        v.exploit = ExploitMaturity::kUnproven;
      } else {
        return fail();
      }
    } else if (key == "RL") {
      if (val == "X") {
        v.remediation = RemediationLevel::kNotDefined;
      } else if (val == "O") {
        v.remediation = RemediationLevel::kOfficialFix;
      } else if (val == "T") {
        v.remediation = RemediationLevel::kTemporaryFix;
      } else if (val == "W") {
        v.remediation = RemediationLevel::kWorkaround;
      } else if (val == "U") {
        v.remediation = RemediationLevel::kUnavailable;
      } else {
        return fail();
      }
    } else if (key == "RC") {
      if (val == "X") {
        v.confidence = ReportConfidence::kNotDefined;
      } else if (val == "C") {
        v.confidence = ReportConfidence::kConfirmed;
      } else if (val == "R") {
        v.confidence = ReportConfidence::kReasonable;
      } else if (val == "U") {
        v.confidence = ReportConfidence::kUnknown;
      } else {
        return fail();
      }
    } else {
      return Error(Error::Code::kParseError, "unknown metric '" + key + "'");
    }
  }
  for (const bool metric_seen : seen) {
    if (!metric_seen) {
      return Error(Error::Code::kParseError, "missing required base metric");
    }
  }
  return v;
}

}  // namespace cvss
