#include "src/cvss/cwe.h"

namespace cvss {

const char* CweCategoryName(CweCategory category) {
  switch (category) {
    case CweCategory::kMemorySafety:
      return "memory-safety";
    case CweCategory::kInjection:
      return "injection";
    case CweCategory::kInputValidation:
      return "input-validation";
    case CweCategory::kCrypto:
      return "crypto";
    case CweCategory::kConcurrency:
      return "concurrency";
    case CweCategory::kResourceManagement:
      return "resource-management";
    case CweCategory::kInformationLeak:
      return "information-leak";
    case CweCategory::kAccessControl:
      return "access-control";
    case CweCategory::kNumeric:
      return "numeric";
    case CweCategory::kOther:
      return "other";
  }
  return "<bad>";
}

const std::vector<CweEntry>& CweTable() {
  static const std::vector<CweEntry> kTable = {
      {20, "Improper Input Validation", CweCategory::kInputValidation, 0},
      {22, "Path Traversal", CweCategory::kInputValidation, 20},
      {78, "OS Command Injection", CweCategory::kInjection, 20},
      {79, "Cross-site Scripting", CweCategory::kInjection, 20},
      {89, "SQL Injection", CweCategory::kInjection, 20},
      {119, "Improper Restriction of Operations within Memory Buffer",
       CweCategory::kMemorySafety, 0},
      {121, "Stack-based Buffer Overflow", CweCategory::kMemorySafety, 119},
      {122, "Heap-based Buffer Overflow", CweCategory::kMemorySafety, 119},
      {125, "Out-of-bounds Read", CweCategory::kMemorySafety, 119},
      {134, "Uncontrolled Format String", CweCategory::kInjection, 20},
      {190, "Integer Overflow or Wraparound", CweCategory::kNumeric, 0},
      {200, "Exposure of Sensitive Information", CweCategory::kInformationLeak, 0},
      {287, "Improper Authentication", CweCategory::kAccessControl, 0},
      {327, "Broken or Risky Cryptographic Algorithm", CweCategory::kCrypto, 0},
      {362, "Race Condition", CweCategory::kConcurrency, 0},
      {369, "Divide By Zero", CweCategory::kNumeric, 0},
      {400, "Uncontrolled Resource Consumption", CweCategory::kResourceManagement, 0},
      {415, "Double Free", CweCategory::kMemorySafety, 119},
      {416, "Use After Free", CweCategory::kMemorySafety, 119},
      {476, "NULL Pointer Dereference", CweCategory::kMemorySafety, 0},
      {674, "Uncontrolled Recursion", CweCategory::kResourceManagement, 400},
      {732, "Incorrect Permission Assignment", CweCategory::kAccessControl, 0},
      {787, "Out-of-bounds Write", CweCategory::kMemorySafety, 119},
      {798, "Use of Hard-coded Credentials", CweCategory::kAccessControl, 287},
  };
  return kTable;
}

const CweEntry* FindCwe(int id) {
  for (const auto& entry : CweTable()) {
    if (entry.id == id) {
      return &entry;
    }
  }
  return nullptr;
}

CweCategory CategoryOf(int id) {
  const CweEntry* entry = FindCwe(id);
  return entry == nullptr ? CweCategory::kOther : entry->category;
}

bool IsA(int id, int ancestor) {
  int current = id;
  // The curated tree is shallow; bound the walk defensively anyway.
  for (int hops = 0; hops < 16; ++hops) {
    if (current == ancestor) {
      return true;
    }
    const CweEntry* entry = FindCwe(current);
    if (entry == nullptr || entry->parent == 0) {
      return ancestor == 0;
    }
    current = entry->parent;
  }
  return false;
}

}  // namespace cvss
