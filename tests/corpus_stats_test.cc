// Statistical property tests on the synthetic ecosystem: the latent style
// knobs must actually be expressed in the generated artifacts (code text and
// CVE records) — otherwise the learning pipeline has nothing to recover.
#include <gtest/gtest.h>

#include "src/corpus/codegen.h"
#include "src/corpus/ecosystem.h"
#include "src/cvss/cwe.h"
#include "src/support/rng.h"

namespace corpus {
namespace {

int CountOccurrences(const std::string& text, const std::string& needle) {
  int count = 0;
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST(GeneratorSignal, TaintinessRaisesInputDensity) {
  // Same RNG seed, opposite taintiness: the taint-heavy program must read
  // input() substantially more often per line.
  double low_total = 0;
  double high_total = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    AppStyle low;
    low.taintiness = 0.05;
    AppStyle high;
    high.taintiness = 0.95;
    support::Rng rng_low(seed);
    support::Rng rng_high(seed);
    low_total += CountOccurrences(GenerateMiniCFile(rng_low, low, 800), "input()");
    high_total += CountOccurrences(GenerateMiniCFile(rng_high, high, 800), "input()");
  }
  EXPECT_GT(high_total, 2.0 * low_total);
}

TEST(GeneratorSignal, UnsafetyLowersGuardDensity) {
  double safe_guards = 0;
  double unsafe_guards = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    AppStyle safe;
    safe.unsafety = 0.05;
    AppStyle unsafe_style;
    unsafe_style.unsafety = 0.95;
    support::Rng rng_safe(seed);
    support::Rng rng_unsafe(seed);
    safe_guards += CountOccurrences(GenerateMiniCFile(rng_safe, safe, 800), ">= 0 &&");
    unsafe_guards +=
        CountOccurrences(GenerateMiniCFile(rng_unsafe, unsafe_style, 800), ">= 0 &&");
  }
  EXPECT_GT(safe_guards, 1.5 * unsafe_guards);
}

TEST(GeneratorSignal, ComplexityRaisesNesting) {
  double simple_braces = 0;
  double complex_braces = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    AppStyle simple;
    simple.complexity = 0.05;
    AppStyle complex_style;
    complex_style.complexity = 0.95;
    support::Rng rng_simple(seed);
    support::Rng rng_complex(seed);
    // Deeply indented lines appear only under nesting.
    simple_braces +=
        CountOccurrences(GenerateMiniCFile(rng_simple, simple, 800), "\n      ");
    complex_braces +=
        CountOccurrences(GenerateMiniCFile(rng_complex, complex_style, 800), "\n      ");
  }
  EXPECT_GT(complex_braces, simple_braces);
}

TEST(CveSignal, TaintinessRaisesNetworkVectorShare) {
  CorpusOptions options;
  options.mature_apps = 164;
  options.immature_apps = 0;
  const EcosystemGenerator eco(options);
  // Split apps by taintiness; compare AV:N share of their CVEs.
  double low_n = 0;
  double low_total = 0;
  double high_n = 0;
  double high_total = 0;
  for (const auto& spec : eco.specs()) {
    const auto summary = eco.database().Summarize(spec.name);
    if (spec.style.taintiness < 0.3) {
      low_n += summary.network_vector;
      low_total += summary.total;
    } else if (spec.style.taintiness > 0.7) {
      high_n += summary.network_vector;
      high_total += summary.total;
    }
  }
  ASSERT_GT(low_total, 0);
  ASSERT_GT(high_total, 0);
  EXPECT_GT(high_n / high_total, low_n / low_total + 0.1);
}

TEST(CveSignal, LanguageShapesCweProfile) {
  CorpusOptions options;
  options.mature_apps = 164;
  options.immature_apps = 0;
  const EcosystemGenerator eco(options);
  double c_memory = 0;
  double c_total = 0;
  double managed_memory = 0;
  double managed_total = 0;
  for (const auto& record : eco.database().records()) {
    const AppSpec* spec = eco.FindSpec(record.app);
    ASSERT_NE(spec, nullptr);
    const bool is_memory =
        cvss::CategoryOf(record.cwe) == cvss::CweCategory::kMemorySafety;
    if (spec->language == metrics::Language::kC ||
        spec->language == metrics::Language::kCpp) {
      c_total += 1;
      c_memory += is_memory ? 1 : 0;
    } else {
      managed_total += 1;
      managed_memory += is_memory ? 1 : 0;
    }
  }
  ASSERT_GT(c_total, 0);
  ASSERT_GT(managed_total, 0);
  // C-family corpus is memory-safety heavy; Python/Java should be near zero.
  EXPECT_GT(c_memory / c_total, 0.3);
  EXPECT_LT(managed_memory / managed_total, 0.05);
}

TEST(CveSignal, UnsafetyRaisesMemoryCweShare) {
  CorpusOptions options;
  options.mature_apps = 164;
  options.immature_apps = 0;
  const EcosystemGenerator eco(options);
  double low_mem = 0;
  double low_total = 0;
  double high_mem = 0;
  double high_total = 0;
  for (const auto& record : eco.database().records()) {
    const AppSpec* spec = eco.FindSpec(record.app);
    if (spec->language != metrics::Language::kC &&
        spec->language != metrics::Language::kCpp) {
      continue;
    }
    const bool is_memory =
        cvss::CategoryOf(record.cwe) == cvss::CweCategory::kMemorySafety;
    if (spec->style.unsafety < 0.3) {
      low_total += 1;
      low_mem += is_memory ? 1 : 0;
    } else if (spec->style.unsafety > 0.7) {
      high_total += 1;
      high_mem += is_memory ? 1 : 0;
    }
  }
  ASSERT_GT(low_total, 0);
  ASSERT_GT(high_total, 0);
  EXPECT_GT(high_mem / high_total, low_mem / low_total);
}

TEST(CveSignal, CvssScoresSpanSeverityBands) {
  CorpusOptions options;
  options.mature_apps = 82;
  options.immature_apps = 0;
  const EcosystemGenerator eco(options);
  int low = 0;
  int medium = 0;
  int high = 0;
  int critical = 0;
  for (const auto& record : eco.database().records()) {
    switch (cvss::SeverityFor(record.BaseScore())) {
      case cvss::Severity::kLow:
        ++low;
        break;
      case cvss::Severity::kMedium:
        ++medium;
        break;
      case cvss::Severity::kHigh:
        ++high;
        break;
      case cvss::Severity::kCritical:
        ++critical;
        break;
      default:
        break;
    }
  }
  // A realistic feed spans all four bands with medium/high dominating.
  EXPECT_GT(low, 0);
  EXPECT_GT(medium, 0);
  EXPECT_GT(high, 0);
  EXPECT_GT(critical, 0);
  EXPECT_GT(medium + high, low + critical);
}

}  // namespace
}  // namespace corpus
