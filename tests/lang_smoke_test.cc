// Smoke tests for the MiniC frontend: lex → parse → lower → interpret.
#include <gtest/gtest.h>

#include "src/lang/interp.h"
#include "src/lang/ir.h"
#include "src/lang/lexer.h"
#include "src/lang/parser.h"

namespace lang {
namespace {

IrModule MustLower(std::string_view source) {
  auto unit = Parse(source);
  EXPECT_TRUE(unit.ok()) << (unit.ok() ? "" : unit.error().ToString());
  auto module = LowerToIr(unit.value());
  EXPECT_TRUE(module.ok()) << (module.ok() ? "" : module.error().ToString());
  return std::move(module).value();
}

TEST(LangSmoke, LexCountsLines) {
  auto out = Lex("int x = 1; // trailing\n/* full comment line */\n\nint y = 2;\n");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().lines.comment_lines, 1);
  EXPECT_EQ(out.value().lines.blank_lines, 1);
  EXPECT_EQ(out.value().lines.code_lines, 2);
}

TEST(LangSmoke, ArithmeticAndCalls) {
  const auto module = MustLower(R"(
    int square(int x) { return x * x; }
    int main() {
      int total = 0;
      for (int i = 1; i <= 4; ++i) {
        total += square(i);
      }
      return total;
    }
  )");
  const auto trace = Execute(module, "main", {}, {});
  EXPECT_EQ(trace.outcome, ExecOutcome::kReturned);
  EXPECT_EQ(trace.return_value, 1 + 4 + 9 + 16);
}

TEST(LangSmoke, ShortCircuitAndConditional) {
  const auto module = MustLower(R"(
    int main() {
      int x = 3;
      int guard = (x != 0) && (12 / x > 3);
      int y = guard ? 100 : 7;
      return y;
    }
  )");
  const auto trace = Execute(module, "main", {}, {});
  EXPECT_EQ(trace.outcome, ExecOutcome::kReturned);
  EXPECT_EQ(trace.return_value, 100);
}

TEST(LangSmoke, OutOfBoundsDetected) {
  const auto module = MustLower(R"(
    int main() {
      int buf[4];
      int i = input();
      buf[i] = 1;
      return buf[i];
    }
  )");
  const auto ok_trace = Execute(module, "main", {}, {3});
  EXPECT_EQ(ok_trace.outcome, ExecOutcome::kReturned);
  const auto bad_trace = Execute(module, "main", {}, {4});
  EXPECT_EQ(bad_trace.outcome, ExecOutcome::kOutOfBounds);
}

TEST(LangSmoke, SwitchFallthrough) {
  const auto module = MustLower(R"(
    int classify(int x) {
      int score = 0;
      switch (x) {
        case 1:
          score += 10;
        case 2:
          score += 100;
          break;
        default:
          score = -1;
      }
      return score;
    }
    int main() { return classify(input()); }
  )");
  EXPECT_EQ(Execute(module, "main", {}, {1}).return_value, 110);
  EXPECT_EQ(Execute(module, "main", {}, {2}).return_value, 100);
  EXPECT_EQ(Execute(module, "main", {}, {9}).return_value, -1);
}

TEST(LangSmoke, GlobalsAndWhile) {
  const auto module = MustLower(R"(
    int counter = 5;
    int tab[3];
    int main() {
      while (counter > 0) {
        counter = counter - 1;
        tab[counter % 3] += 1;
      }
      return tab[0] + 10 * tab[1] + 100 * tab[2];
    }
  )");
  const auto trace = Execute(module, "main", {}, {});
  EXPECT_EQ(trace.outcome, ExecOutcome::kReturned);
  // counter runs 4,3,2,1,0 -> indices 1,0,2,1,0 -> tab = {2,2,1}.
  EXPECT_EQ(trace.return_value, 2 + 20 + 100);
}

TEST(LangSmoke, DivisionByZeroDetected) {
  const auto module = MustLower("int main() { int d = input(); return 10 / d; }");
  EXPECT_EQ(Execute(module, "main", {}, {2}).return_value, 5);
  EXPECT_EQ(Execute(module, "main", {}, {0}).outcome, ExecOutcome::kDivisionByZero);
}

TEST(LangSmoke, ParseErrorsAreReported) {
  EXPECT_FALSE(Parse("int main( { return 0; }").ok());
  EXPECT_FALSE(Parse("int main() { return x; }").ok() &&
               LowerToIr(Parse("int main() { return x; }").value()).ok());
  EXPECT_FALSE(Parse("int main() { int x = \"unterminated; }").ok());
}

TEST(LangSmoke, AbortAndSink) {
  const auto module = MustLower(R"(
    int main() {
      int v = input();
      sink(v);
      if (v > 10) {
        abort();
      }
      return v;
    }
  )");
  const auto ok_trace = Execute(module, "main", {}, {5});
  EXPECT_EQ(ok_trace.outcome, ExecOutcome::kReturned);
  ASSERT_EQ(ok_trace.sink_values.size(), 1u);
  EXPECT_EQ(ok_trace.sink_values[0], 5);
  EXPECT_EQ(Execute(module, "main", {}, {11}).outcome, ExecOutcome::kAborted);
}

}  // namespace
}  // namespace lang
