// Tests for the CVSS v3.0 scoring engine against published reference scores
// and for the CWE taxonomy.
#include <gtest/gtest.h>

#include "src/cvss/cvss.h"
#include "src/cvss/cwe.h"

namespace cvss {
namespace {

Vector MustParse(std::string_view text) {
  auto result = ParseVectorString(text);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().ToString());
  return result.ok() ? result.value() : Vector{};
}

struct ScoreCase {
  const char* vector;
  double expected;
};

class KnownScores : public ::testing::TestWithParam<ScoreCase> {};

// Reference scores computed with the official FIRST v3.0 calculator.
TEST_P(KnownScores, BaseScoreMatchesSpec) {
  const auto& param = GetParam();
  const Vector v = MustParse(param.vector);
  EXPECT_NEAR(BaseScore(v), param.expected, 1e-9) << param.vector;
}

INSTANTIATE_TEST_SUITE_P(
    SpecExamples, KnownScores,
    ::testing::Values(
        // Full-impact network RCE (e.g. CVE-2014-6271 "Shellshock" class).
        ScoreCase{"CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", 9.8},
        // Heartbleed-class info leak.
        ScoreCase{"CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N", 7.5},
        // Scope-changed privilege escalation.
        ScoreCase{"CVSS:3.0/AV:N/AC:L/PR:L/UI:N/S:C/C:H/I:H/A:H", 9.9},
        // Local, high-complexity, user-interaction case.
        ScoreCase{"CVSS:3.0/AV:L/AC:H/PR:L/UI:R/S:U/C:H/I:N/A:N", 4.4},
        // No impact at all scores zero.
        ScoreCase{"CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N", 0.0},
        // Physical, low impact.
        ScoreCase{"CVSS:3.0/AV:P/AC:L/PR:N/UI:N/S:U/C:L/I:N/A:N", 2.4},
        // Scope-changed XSS-style vector.
        ScoreCase{"CVSS:3.0/AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N", 6.1},
        // Adjacent network DoS.
        ScoreCase{"CVSS:3.0/AV:A/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H", 6.5}));

TEST(Cvss, TemporalNeverExceedsBase) {
  Vector v = MustParse("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H");
  v.exploit = ExploitMaturity::kUnproven;
  v.remediation = RemediationLevel::kOfficialFix;
  v.confidence = ReportConfidence::kUnknown;
  EXPECT_LT(TemporalScore(v), BaseScore(v));
  v.exploit = ExploitMaturity::kHigh;
  v.remediation = RemediationLevel::kUnavailable;
  v.confidence = ReportConfidence::kConfirmed;
  EXPECT_DOUBLE_EQ(TemporalScore(v), BaseScore(v));
}

TEST(Cvss, SeverityBands) {
  EXPECT_EQ(SeverityFor(0.0), Severity::kNone);
  EXPECT_EQ(SeverityFor(0.1), Severity::kLow);
  EXPECT_EQ(SeverityFor(3.9), Severity::kLow);
  EXPECT_EQ(SeverityFor(4.0), Severity::kMedium);
  EXPECT_EQ(SeverityFor(6.9), Severity::kMedium);
  EXPECT_EQ(SeverityFor(7.0), Severity::kHigh);
  EXPECT_EQ(SeverityFor(8.9), Severity::kHigh);
  EXPECT_EQ(SeverityFor(9.0), Severity::kCritical);
  EXPECT_EQ(SeverityFor(10.0), Severity::kCritical);
}

TEST(Cvss, RoundTripThroughVectorString) {
  const char* vectors[] = {
      "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
      "CVSS:3.0/AV:L/AC:H/PR:H/UI:R/S:C/C:L/I:L/A:N",
      "CVSS:3.0/AV:A/AC:L/PR:L/UI:N/S:U/C:N/I:H/A:L",
      "CVSS:3.0/AV:P/AC:H/PR:N/UI:R/S:U/C:L/I:N/A:H/E:P/RL:W/RC:R",
  };
  for (const char* text : vectors) {
    const Vector v = MustParse(text);
    EXPECT_EQ(ToVectorString(v), text);
    const Vector again = MustParse(ToVectorString(v));
    EXPECT_EQ(again, v);
  }
}

TEST(Cvss, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseVectorString("AV:N/AC:L").ok());
  EXPECT_FALSE(ParseVectorString("CVSS:3.0/AV:N").ok());  // Missing metrics.
  EXPECT_FALSE(
      ParseVectorString("CVSS:3.0/AV:Q/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H").ok());
  EXPECT_FALSE(
      ParseVectorString("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/XX:1").ok());
}

TEST(Cvss, RoundUpMatchesSpecBehaviour) {
  EXPECT_DOUBLE_EQ(RoundUp1(4.02), 4.1);
  EXPECT_DOUBLE_EQ(RoundUp1(4.0), 4.0);
  EXPECT_DOUBLE_EQ(RoundUp1(0.0), 0.0);
  EXPECT_DOUBLE_EQ(RoundUp1(9.89), 9.9);
}

TEST(Cwe, TableLookupAndCategories) {
  const CweEntry* entry = FindCwe(kCweStackBufferOverflow);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->category, CweCategory::kMemorySafety);
  EXPECT_EQ(entry->parent, kCweBufferOverflowParent);
  EXPECT_EQ(FindCwe(99999), nullptr);
  EXPECT_EQ(CategoryOf(kCweSqlInjection), CweCategory::kInjection);
  EXPECT_EQ(CategoryOf(424242), CweCategory::kOther);
}

TEST(Cwe, HierarchyWalk) {
  EXPECT_TRUE(IsA(kCweStackBufferOverflow, kCweBufferOverflowParent));
  EXPECT_TRUE(IsA(kCweStackBufferOverflow, kCweStackBufferOverflow));
  EXPECT_FALSE(IsA(kCweStackBufferOverflow, kCweSqlInjection));
  // SQL injection is a child of improper input validation in the curated tree.
  EXPECT_TRUE(IsA(kCweSqlInjection, kCweInputValidation));
  // Everything is a descendant of the root.
  EXPECT_TRUE(IsA(kCweStackBufferOverflow, 0));
}

TEST(Cwe, TableIsSortedAndConsistent) {
  const auto& table = CweTable();
  for (size_t i = 1; i < table.size(); ++i) {
    EXPECT_LT(table[i - 1].id, table[i].id);
  }
  for (const auto& entry : table) {
    if (entry.parent != 0) {
      EXPECT_NE(FindCwe(entry.parent), nullptr) << "dangling parent of " << entry.id;
    }
  }
}

}  // namespace
}  // namespace cvss
