// Focused lexer/parser/lowering edge-case tests, complementing the
// integration-level lang_smoke_test.
#include <gtest/gtest.h>

#include "src/lang/interp.h"
#include "src/lang/lexer.h"
#include "src/lang/parser.h"

namespace lang {
namespace {

// --- Lexer -------------------------------------------------------------------

TEST(Lexer, HexAndDecimalLiterals) {
  auto out = Lex("0x10 0xFF 42 0");
  ASSERT_TRUE(out.ok());
  const auto& tokens = out.value().tokens;
  ASSERT_EQ(tokens.size(), 5u);  // 4 literals + EOF.
  EXPECT_EQ(tokens[0].int_value, 16);
  EXPECT_EQ(tokens[1].int_value, 255);
  EXPECT_EQ(tokens[2].int_value, 42);
  EXPECT_EQ(tokens[3].int_value, 0);
}

TEST(Lexer, CharEscapes) {
  auto out = Lex(R"('a' '\n' '\t' '\0' '\\')");
  ASSERT_TRUE(out.ok());
  const auto& tokens = out.value().tokens;
  EXPECT_EQ(tokens[0].int_value, 'a');
  EXPECT_EQ(tokens[1].int_value, '\n');
  EXPECT_EQ(tokens[2].int_value, '\t');
  EXPECT_EQ(tokens[3].int_value, 0);
  EXPECT_EQ(tokens[4].int_value, '\\');
}

TEST(Lexer, MaximalMunchOperators) {
  auto out = Lex("a<<=b");  // Lexes as a, <<, =, b (no <<= in MiniC).
  ASSERT_TRUE(out.ok());
  const auto& tokens = out.value().tokens;
  EXPECT_EQ(tokens[1].kind, TokenKind::kShl);
  EXPECT_EQ(tokens[2].kind, TokenKind::kAssign);
  auto out2 = Lex("a+++b");  // a, ++, +, b.
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out2.value().tokens[1].kind, TokenKind::kPlusPlus);
  EXPECT_EQ(out2.value().tokens[2].kind, TokenKind::kPlus);
}

TEST(Lexer, ErrorsCarryLineNumbers) {
  auto out = Lex("int x;\nint y = @;");
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.error().message().find("line 2"), std::string::npos);
  EXPECT_FALSE(Lex("/* never closed").ok());
  EXPECT_FALSE(Lex("\"no closing quote").ok());
  EXPECT_FALSE(Lex("'ab'").ok());
}

TEST(Lexer, TokenPositionsAreOneBased) {
  auto out = Lex("int x;");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().tokens[0].line, 1);
  EXPECT_EQ(out.value().tokens[0].column, 1);
  EXPECT_EQ(out.value().tokens[1].column, 5);
}

// --- Parser ------------------------------------------------------------------

TEST(Parser, PrecedenceMatchesC) {
  auto run = [](const char* expr_text) {
    const std::string source = std::string("int main() { return ") + expr_text + "; }";
    auto unit = Parse(source);
    EXPECT_TRUE(unit.ok());
    auto module = LowerToIr(unit.value());
    EXPECT_TRUE(module.ok());
    return Execute(module.value(), "main", {}, {}).return_value;
  };
  EXPECT_EQ(run("2 + 3 * 4"), 14);
  EXPECT_EQ(run("(2 + 3) * 4"), 20);
  EXPECT_EQ(run("10 - 4 - 3"), 3);       // Left associative.
  EXPECT_EQ(run("1 << 2 + 1"), 8);       // + binds tighter than <<.
  EXPECT_EQ(run("7 & 3 | 4"), 7);        // & tighter than |.
  EXPECT_EQ(run("1 < 2 == 1"), 1);       // Relational tighter than equality.
  EXPECT_EQ(run("0 || 1 && 0"), 0);      // && tighter than ||.
  EXPECT_EQ(run("1 ? 2 : 0 ? 3 : 4"), 2);  // ?: right associative.
  EXPECT_EQ(run("-3 * -2"), 6);
  EXPECT_EQ(run("~0 & 0xF"), 15);
  EXPECT_EQ(run("17 % 5"), 2);
}

TEST(Parser, AssignmentsAreExpressions) {
  auto unit = Parse("int main() { int a = 0; int b = 0; a = b = 5; return a + b; }");
  ASSERT_TRUE(unit.ok());
  auto module = LowerToIr(unit.value());
  ASSERT_TRUE(module.ok());
  EXPECT_EQ(Execute(module.value(), "main", {}, {}).return_value, 10);
}

TEST(Parser, CompoundAssignAndIncrement) {
  auto unit = Parse(R"(
    int main() {
      int a = 10;
      a += 5;
      a -= 3;
      ++a;
      --a;
      return a;
    }
  )");
  ASSERT_TRUE(unit.ok());
  auto module = LowerToIr(unit.value());
  ASSERT_TRUE(module.ok());
  EXPECT_EQ(Execute(module.value(), "main", {}, {}).return_value, 12);
}

TEST(Parser, RejectsInvalidConstructs) {
  EXPECT_FALSE(Parse("int main() { 5 = x; }").ok());          // Bad lvalue.
  EXPECT_FALSE(Parse("int main() { ++5; }").ok());            // ++ on literal.
  EXPECT_FALSE(Parse("int main() { return 1 +; }").ok());
  EXPECT_FALSE(Parse("int main() { if (1) }").ok());
  EXPECT_FALSE(Parse("int main() { switch (1) { foo: ; } }").ok());
  EXPECT_FALSE(Parse("int 3bad() { return 0; }").ok());
  EXPECT_FALSE(Parse("int f(int) { return 0; }").ok());       // Unnamed param.
  EXPECT_FALSE(Parse("int x = y;").ok());  // Globals need constant init.
}

TEST(Parser, ErrorsNameTheLine) {
  auto result = Parse("int main() {\n  int x = 1;\n  return x +;\n}");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message().find("line 3"), std::string::npos);
}

TEST(Parser, GlobalsWithNegativeAndCharInit) {
  auto unit = Parse("int a = -5;\nint b = 'A';\nbool c = true;\nint main() { return a; }");
  ASSERT_TRUE(unit.ok());
  EXPECT_EQ(unit.value().globals[0].init_value, -5);
  EXPECT_EQ(unit.value().globals[1].init_value, 'A');
  EXPECT_EQ(unit.value().globals[2].init_value, 1);
}

TEST(Parser, NestedFunctionsRejectedAndArityChecked) {
  // Calling a declared function with wrong arity fails at lowering.
  auto unit = Parse("int f(int a, int b) { return a + b; } int main() { return f(1); }");
  ASSERT_TRUE(unit.ok());
  EXPECT_FALSE(LowerToIr(unit.value()).ok());
}

// --- Lowering / interpreter --------------------------------------------------

TEST(Lowering, BreakAndContinueTargets) {
  auto unit = Parse(R"(
    int main() {
      int total = 0;
      for (int i = 0; i < 10; ++i) {
        if (i == 3) { continue; }
        if (i == 6) { break; }
        total += i;
      }
      return total;
    }
  )");
  ASSERT_TRUE(unit.ok());
  auto module = LowerToIr(unit.value());
  ASSERT_TRUE(module.ok());
  // 0+1+2+4+5 = 12.
  EXPECT_EQ(Execute(module.value(), "main", {}, {}).return_value, 12);
}

TEST(Lowering, BreakOutsideLoopFails) {
  auto unit = Parse("int main() { break; }");
  ASSERT_TRUE(unit.ok());
  EXPECT_FALSE(LowerToIr(unit.value()).ok());
}

TEST(Lowering, ShadowingInNestedScopes) {
  auto unit = Parse(R"(
    int main() {
      int x = 1;
      {
        int x = 2;
        {
          int x = 3;
        }
      }
      return x;
    }
  )");
  ASSERT_TRUE(unit.ok());
  auto module = LowerToIr(unit.value());
  ASSERT_TRUE(module.ok());
  EXPECT_EQ(Execute(module.value(), "main", {}, {}).return_value, 1);
}

TEST(Lowering, DuplicateInSameScopeFails) {
  auto unit = Parse("int main() { int x = 1; int x = 2; return x; }");
  ASSERT_TRUE(unit.ok());
  EXPECT_FALSE(LowerToIr(unit.value()).ok());
}

TEST(Interp, RecursionAndCallDepthLimit) {
  auto unit = Parse(R"(
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    int spin(int n) { return spin(n + 1); }
    int main() { return fib(input()); }
  )");
  ASSERT_TRUE(unit.ok());
  auto module = LowerToIr(unit.value());
  ASSERT_TRUE(module.ok());
  EXPECT_EQ(Execute(module.value(), "main", {}, {10}).return_value, 55);
  const auto runaway = Execute(module.value(), "spin", {0}, {});
  EXPECT_EQ(runaway.outcome, ExecOutcome::kStepLimit);
}

TEST(Interp, ShortCircuitSkipsSideEffects) {
  auto unit = Parse(R"(
    int g = 0;
    int bump() { g = g + 1; return 1; }
    int main() {
      int a = 0 && bump();
      int b = 1 || bump();
      return g * 10 + a + b;
    }
  )");
  ASSERT_TRUE(unit.ok());
  auto module = LowerToIr(unit.value());
  ASSERT_TRUE(module.ok());
  // bump() must never run: g == 0, a == 0, b == 1.
  EXPECT_EQ(Execute(module.value(), "main", {}, {}).return_value, 1);
}

TEST(Interp, UnknownExternalCallsReturnZero) {
  auto unit = Parse("int main() { return external_thing(1, 2) + 7; }");
  ASSERT_TRUE(unit.ok());
  auto module = LowerToIr(unit.value());
  ASSERT_TRUE(module.ok());
  EXPECT_EQ(Execute(module.value(), "main", {}, {}).return_value, 7);
}

TEST(Interp, NegativeDivisionTruncatesTowardZero) {
  auto unit = Parse("int main() { return (0 - 7) / 2; }");
  ASSERT_TRUE(unit.ok());
  auto module = LowerToIr(unit.value());
  ASSERT_TRUE(module.ok());
  EXPECT_EQ(Execute(module.value(), "main", {}, {}).return_value, -3);
}

}  // namespace
}  // namespace lang
