// Unit tests for the symbolic expression pool: hash-consing, constant
// folding, algebraic identities, Truthy/Falsy normalisation, tree-size
// accounting, and evaluation semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/support/rng.h"
#include "src/symexec/expr.h"

namespace symx {
namespace {

TEST(ExprPool, HashConsingDeduplicates) {
  ExprPool pool(16);
  const ExprRef x = pool.FreshVar("x");
  const ExprRef a = pool.Binary(ExprOp::kAdd, x, pool.Const(5));
  const ExprRef b = pool.Binary(ExprOp::kAdd, x, pool.Const(5));
  EXPECT_EQ(a, b);
  const ExprRef c = pool.Binary(ExprOp::kAdd, x, pool.Const(6));
  EXPECT_NE(a, c);
}

TEST(ExprPool, ConstantFolding) {
  ExprPool pool(16);
  const ExprRef sum = pool.Binary(ExprOp::kAdd, pool.Const(3), pool.Const(4));
  EXPECT_EQ(pool.node(sum).op, ExprOp::kConst);
  EXPECT_EQ(pool.node(sum).imm, 7);
  const ExprRef cmp = pool.Binary(ExprOp::kSlt, pool.Const(-1), pool.Const(0));
  EXPECT_EQ(pool.node(cmp).imm, 1);
  const ExprRef ite = pool.Ite(pool.Const(0), pool.Const(10), pool.Const(20));
  EXPECT_EQ(pool.node(ite).imm, 20);
}

TEST(ExprPool, FoldingRespectsWidth) {
  ExprPool pool(8);
  // 100 + 100 = 200 wraps to -56 in signed 8-bit.
  const ExprRef sum = pool.Binary(ExprOp::kAdd, pool.Const(100), pool.Const(100));
  EXPECT_EQ(pool.node(sum).imm, -56);
  // Constants are stored sign-extended.
  EXPECT_EQ(pool.node(pool.Const(255)).imm, -1);
}

TEST(ExprPool, AlgebraicIdentities) {
  ExprPool pool(16);
  const ExprRef x = pool.FreshVar("x");
  EXPECT_EQ(pool.Binary(ExprOp::kAdd, x, pool.Const(0)), x);
  EXPECT_EQ(pool.Binary(ExprOp::kAdd, pool.Const(0), x), x);
  EXPECT_EQ(pool.Binary(ExprOp::kSub, x, pool.Const(0)), x);
  EXPECT_EQ(pool.Binary(ExprOp::kMul, x, pool.Const(1)), x);
  EXPECT_EQ(pool.Binary(ExprOp::kMul, pool.Const(1), x), x);
}

TEST(ExprPool, TruthyFalsyNormalisation) {
  ExprPool pool(16);
  const ExprRef x = pool.FreshVar("x");
  const ExprRef y = pool.FreshVar("y");
  const ExprRef lt = pool.Binary(ExprOp::kSlt, x, y);
  // Comparisons are their own truthy form.
  EXPECT_EQ(pool.Truthy(lt), lt);
  // Falsy of a < b is b <= a.
  const ExprRef not_lt = pool.Falsy(lt);
  EXPECT_EQ(pool.node(not_lt).op, ExprOp::kSle);
  EXPECT_EQ(pool.node(not_lt).a, y);
  EXPECT_EQ(pool.node(not_lt).b, x);
  // Double negation of a comparison returns the original.
  EXPECT_EQ(pool.Falsy(pool.Falsy(lt)), lt);
  // Non-comparisons are wrapped.
  EXPECT_EQ(pool.node(pool.Truthy(x)).op, ExprOp::kNe);
}

TEST(ExprPool, TreeSizeGrowsAndSaturates) {
  ExprPool pool(16);
  ExprRef x = pool.FreshVar("x");
  EXPECT_EQ(pool.TreeSize(x), 1u);
  uint32_t previous = 1;
  for (int i = 0; i < 40; ++i) {
    x = pool.Binary(ExprOp::kMul, x, x);
    // Doubles each round (plus one) until saturation; never decreases.
    EXPECT_GE(pool.TreeSize(x), previous);
    previous = pool.TreeSize(x);
  }
  EXPECT_EQ(previous, 0xffffffffu);  // Saturated, not wrapped.
}

TEST(ExprPool, EvalMatchesTwosComplementSemantics) {
  ExprPool pool(8);
  const ExprRef x = pool.FreshVar("x");
  const ExprRef y = pool.FreshVar("y");
  const ExprRef expr = pool.Binary(
      ExprOp::kXor, pool.Binary(ExprOp::kMul, x, pool.Const(3)),
      pool.Binary(ExprOp::kShr, y, pool.Const(2)));
  // 8-bit: (50*3) & 0xff = 150 -> -106 signed; (200 >> 2) on masked y.
  const int64_t value = pool.Eval(expr, {50, 200});
  const int64_t expected =
      static_cast<int8_t>((static_cast<uint8_t>(50 * 3)) ^ ((200 & 0xff) >> 2));
  EXPECT_EQ(value, expected);
}

TEST(ExprPool, EvalIteAndComparisons) {
  ExprPool pool(16);
  const ExprRef x = pool.FreshVar("x");
  const ExprRef cond = pool.Binary(ExprOp::kSle, x, pool.Const(10));
  const ExprRef ite = pool.Ite(cond, pool.Const(111), pool.Const(222));
  EXPECT_EQ(pool.Eval(ite, {10}), 111);
  EXPECT_EQ(pool.Eval(ite, {11}), 222);
}

TEST(ExprPool, IsConcreteDetectsVariables) {
  ExprPool pool(16);
  const ExprRef x = pool.FreshVar("x");
  EXPECT_FALSE(pool.IsConcrete(x));
  EXPECT_TRUE(pool.IsConcrete(pool.Const(5)));
  EXPECT_FALSE(pool.IsConcrete(pool.Binary(ExprOp::kAdd, x, pool.Const(1))));
}

TEST(ExprPool, DivisionBySymbolicBecomesFreshVar) {
  ExprPool pool(16);
  const ExprRef x = pool.FreshVar("x");
  const ExprRef y = pool.FreshVar("y");
  bool made_fresh = false;
  const ExprRef quotient = pool.FromBinaryOp(lang::BinaryOp::kDiv, x, y, made_fresh);
  EXPECT_TRUE(made_fresh);
  EXPECT_EQ(pool.node(quotient).op, ExprOp::kVar);
  // Constant division folds exactly.
  made_fresh = false;
  const ExprRef folded =
      pool.FromBinaryOp(lang::BinaryOp::kDiv, pool.Const(42), pool.Const(6), made_fresh);
  EXPECT_FALSE(made_fresh);
  EXPECT_EQ(pool.node(folded).imm, 7);
}

TEST(ExprPool, ToStringIsReadable) {
  ExprPool pool(16);
  const ExprRef x = pool.FreshVar("x");
  const ExprRef expr = pool.Binary(ExprOp::kSlt, x, pool.Const(8));
  EXPECT_EQ(pool.ToString(expr), "(< x 8)");
}

TEST(Simplifier, IdentityAndAnnihilatorRules) {
  ExprPool pool(16);
  const ExprRef x = pool.FreshVar("x");
  const ExprRef zero = pool.Const(0);
  const ExprRef one = pool.Const(1);
  const ExprRef ones = pool.Const(-1);  // All bits set in W bits.

  EXPECT_EQ(pool.Binary(ExprOp::kAdd, x, zero), x);
  EXPECT_EQ(pool.Binary(ExprOp::kAdd, zero, x), x);
  EXPECT_EQ(pool.Binary(ExprOp::kSub, x, zero), x);
  EXPECT_EQ(pool.Binary(ExprOp::kMul, x, one), x);
  EXPECT_EQ(pool.Binary(ExprOp::kMul, one, x), x);
  EXPECT_EQ(pool.Binary(ExprOp::kAnd, x, ones), x);
  EXPECT_EQ(pool.Binary(ExprOp::kAnd, x, x), x);
  EXPECT_EQ(pool.Binary(ExprOp::kOr, x, zero), x);
  EXPECT_EQ(pool.Binary(ExprOp::kOr, x, x), x);
  EXPECT_EQ(pool.Binary(ExprOp::kXor, x, zero), x);
  EXPECT_EQ(pool.Binary(ExprOp::kShl, x, zero), x);
  EXPECT_EQ(pool.Binary(ExprOp::kShr, x, zero), x);
  // Shift amounts act modulo the width, so shifting by W is shifting by 0.
  EXPECT_EQ(pool.Binary(ExprOp::kShl, x, pool.Const(16)), x);

  const ExprRef mul0 = pool.Binary(ExprOp::kMul, x, zero);
  EXPECT_EQ(pool.node(mul0).op, ExprOp::kConst);
  EXPECT_EQ(pool.node(mul0).imm, 0);
  const ExprRef and0 = pool.Binary(ExprOp::kAnd, zero, x);
  EXPECT_EQ(pool.node(and0).imm, 0);
  const ExprRef or1 = pool.Binary(ExprOp::kOr, x, ones);
  EXPECT_EQ(pool.node(or1).op, ExprOp::kConst);
  EXPECT_EQ(pool.node(or1).imm, pool.SignExtend(pool.Mask()));
  const ExprRef xx = pool.Binary(ExprOp::kXor, x, x);
  EXPECT_EQ(pool.node(xx).imm, 0);
  const ExprRef sub = pool.Binary(ExprOp::kSub, x, x);
  EXPECT_EQ(pool.node(sub).imm, 0);
  const ExprRef shl_of_zero = pool.Binary(ExprOp::kShl, zero, x);
  EXPECT_EQ(pool.node(shl_of_zero).imm, 0);
}

TEST(Simplifier, SelfComparisonsFoldToBooleans) {
  ExprPool pool(16);
  const ExprRef x = pool.FreshVar("x");
  const ExprRef e = pool.Binary(ExprOp::kAdd, x, pool.Const(3));
  EXPECT_EQ(pool.node(pool.Binary(ExprOp::kEq, e, e)).imm, 1);
  EXPECT_EQ(pool.node(pool.Binary(ExprOp::kSle, e, e)).imm, 1);
  EXPECT_EQ(pool.node(pool.Binary(ExprOp::kNe, e, e)).imm, 0);
  EXPECT_EQ(pool.node(pool.Binary(ExprOp::kSlt, e, e)).imm, 0);
}

TEST(Simplifier, DoubleNegationAndComplement) {
  ExprPool pool(16);
  const ExprRef x = pool.FreshVar("x");
  EXPECT_EQ(pool.Unary(ExprOp::kNeg, pool.Unary(ExprOp::kNeg, x)), x);
  EXPECT_EQ(pool.Unary(ExprOp::kNot, pool.Unary(ExprOp::kNot, x)), x);
}

TEST(Simplifier, BoolNotRewritesToDualComparison) {
  ExprPool pool(16);
  const ExprRef x = pool.FreshVar("x");
  const ExprRef y = pool.FreshVar("y");
  const ExprRef eq = pool.Binary(ExprOp::kEq, x, y);
  const ExprRef ne = pool.Binary(ExprOp::kNe, x, y);
  const ExprRef lt = pool.Binary(ExprOp::kSlt, x, y);
  const ExprRef ge = pool.Binary(ExprOp::kSle, y, x);
  EXPECT_EQ(pool.Unary(ExprOp::kBoolNot, eq), ne);
  EXPECT_EQ(pool.Unary(ExprOp::kBoolNot, ne), eq);
  EXPECT_EQ(pool.Unary(ExprOp::kBoolNot, lt), ge);
  EXPECT_EQ(pool.Unary(ExprOp::kBoolNot, ge), lt);
  // !!x is x != 0 (a truthy 0/1 value), not x itself.
  const ExprRef not_not =
      pool.Unary(ExprOp::kBoolNot, pool.Unary(ExprOp::kBoolNot, x));
  EXPECT_EQ(not_not, pool.Binary(ExprOp::kNe, x, pool.Const(0)));
}

TEST(Simplifier, IteRules) {
  ExprPool pool(16);
  const ExprRef x = pool.FreshVar("x");
  const ExprRef y = pool.FreshVar("y");
  const ExprRef cond = pool.Binary(ExprOp::kSlt, x, y);
  EXPECT_EQ(pool.Ite(pool.Const(1), x, y), x);
  EXPECT_EQ(pool.Ite(pool.Const(0), x, y), y);
  EXPECT_EQ(pool.Ite(cond, x, x), x);
}

TEST(Simplifier, FoldCounterAdvancesOnRewrites) {
  ExprPool pool(16);
  const ExprRef x = pool.FreshVar("x");
  const uint64_t before = pool.simplifier_folds();
  pool.Binary(ExprOp::kAdd, x, pool.Const(0));
  pool.Binary(ExprOp::kXor, x, x);
  pool.Binary(ExprOp::kAdd, pool.Const(2), pool.Const(3));
  EXPECT_GE(pool.simplifier_folds(), before + 3);
  // A construction that cannot simplify leaves the counter alone.
  const uint64_t mid = pool.simplifier_folds();
  pool.Binary(ExprOp::kAdd, x, pool.FreshVar("y"));
  EXPECT_EQ(pool.simplifier_folds(), mid);
}

// Reference semantics for one operator application, mirroring Eval's
// two's-complement W-bit behaviour. The property test below checks that
// whatever the simplifying builders return evaluates identically.
int64_t RefOp(const ExprPool& pool, ExprOp op, int64_t a, int64_t b, int64_t c) {
  const auto ua = static_cast<uint64_t>(a);
  const auto ub = static_cast<uint64_t>(b);
  const uint64_t wmask = static_cast<uint64_t>(pool.width()) - 1;
  switch (op) {
    case ExprOp::kAdd:
      return pool.SignExtend(ua + ub);
    case ExprOp::kSub:
      return pool.SignExtend(ua - ub);
    case ExprOp::kMul:
      return pool.SignExtend(ua * ub);
    case ExprOp::kNeg:
      return pool.SignExtend(0 - ua);
    case ExprOp::kNot:
      return pool.SignExtend(~ua);
    case ExprOp::kAnd:
      return pool.SignExtend(ua & ub);
    case ExprOp::kOr:
      return pool.SignExtend(ua | ub);
    case ExprOp::kXor:
      return pool.SignExtend(ua ^ ub);
    case ExprOp::kShl:
      return pool.SignExtend((ua & pool.Mask()) << (ub & wmask));
    case ExprOp::kShr:
      return pool.SignExtend((ua & pool.Mask()) >> (ub & wmask));
    case ExprOp::kEq:
      return a == b ? 1 : 0;
    case ExprOp::kNe:
      return a != b ? 1 : 0;
    case ExprOp::kSlt:
      return a < b ? 1 : 0;
    case ExprOp::kSle:
      return a <= b ? 1 : 0;
    case ExprOp::kBoolNot:
      return a == 0 ? 1 : 0;
    case ExprOp::kIte:
      return a != 0 ? b : c;
    default:
      ADD_FAILURE() << "unexpected op";
      return 0;
  }
}

// Property test: for every operator, applying the simplifying builder to
// randomly chosen operands (variables, rewrite-triggering constants, and
// previously built subexpressions) yields an expression that evaluates
// exactly like the reference semantics applied to the operands' values,
// across ~1k random assignments per operator.
TEST(Simplifier, BuildersPreserveEvaluationSemantics) {
  constexpr ExprOp kUnaryOps[] = {ExprOp::kNeg, ExprOp::kNot, ExprOp::kBoolNot};
  constexpr ExprOp kBinaryOps[] = {ExprOp::kAdd, ExprOp::kSub, ExprOp::kMul,
                                   ExprOp::kAnd, ExprOp::kOr,  ExprOp::kXor,
                                   ExprOp::kShl, ExprOp::kShr, ExprOp::kEq,
                                   ExprOp::kNe,  ExprOp::kSlt, ExprOp::kSle};
  constexpr int kCombos = 16;
  constexpr int kAssignments = 64;  // 16 * 64 = 1024 evals per operator.
  for (const int width : {8, 16}) {
    ExprPool pool(width);
    support::Rng rng(0xC0FFEE ^ static_cast<uint64_t>(width));
    std::vector<ExprRef> operands = {pool.FreshVar("x"), pool.FreshVar("y"),
                                     pool.Const(0),      pool.Const(1),
                                     pool.Const(-1),     pool.Const(width)};
    const int num_vars = pool.num_vars();
    auto pick = [&]() {
      return operands[static_cast<size_t>(rng.NextBelow(operands.size()))];
    };
    auto check = [&](ExprOp op, ExprRef a, ExprRef b, ExprRef c, ExprRef built) {
      std::vector<int64_t> values(static_cast<size_t>(num_vars), 0);
      for (int t = 0; t < kAssignments; ++t) {
        for (auto& v : values) {
          v = pool.SignExtend(rng.NextU64());
        }
        const int64_t ref =
            RefOp(pool, op, pool.Eval(a, values), b == kNoExpr ? 0 : pool.Eval(b, values),
                  c == kNoExpr ? 0 : pool.Eval(c, values));
        ASSERT_EQ(pool.Eval(built, values), ref)
            << "op=" << static_cast<int>(op) << " width=" << width
            << " expr=" << pool.ToString(built);
      }
      operands.push_back(built);  // Feed composites back into the operand pool.
    };
    for (const ExprOp op : kUnaryOps) {
      for (int i = 0; i < kCombos; ++i) {
        const ExprRef a = pick();
        check(op, a, kNoExpr, kNoExpr, pool.Unary(op, a));
      }
    }
    for (const ExprOp op : kBinaryOps) {
      for (int i = 0; i < kCombos; ++i) {
        const ExprRef a = pick();
        const ExprRef b = pick();
        check(op, a, b, kNoExpr, pool.Binary(op, a, b));
      }
    }
    for (int i = 0; i < kCombos; ++i) {
      const ExprRef a = pick();
      const ExprRef b = pick();
      const ExprRef c = pick();
      check(ExprOp::kIte, a, b, c, pool.Ite(a, b, c));
    }
  }
}

}  // namespace
}  // namespace symx
