// Unit tests for the symbolic expression pool: hash-consing, constant
// folding, algebraic identities, Truthy/Falsy normalisation, tree-size
// accounting, and evaluation semantics.
#include <gtest/gtest.h>

#include "src/symexec/expr.h"

namespace symx {
namespace {

TEST(ExprPool, HashConsingDeduplicates) {
  ExprPool pool(16);
  const ExprRef x = pool.FreshVar("x");
  const ExprRef a = pool.Binary(ExprOp::kAdd, x, pool.Const(5));
  const ExprRef b = pool.Binary(ExprOp::kAdd, x, pool.Const(5));
  EXPECT_EQ(a, b);
  const ExprRef c = pool.Binary(ExprOp::kAdd, x, pool.Const(6));
  EXPECT_NE(a, c);
}

TEST(ExprPool, ConstantFolding) {
  ExprPool pool(16);
  const ExprRef sum = pool.Binary(ExprOp::kAdd, pool.Const(3), pool.Const(4));
  EXPECT_EQ(pool.node(sum).op, ExprOp::kConst);
  EXPECT_EQ(pool.node(sum).imm, 7);
  const ExprRef cmp = pool.Binary(ExprOp::kSlt, pool.Const(-1), pool.Const(0));
  EXPECT_EQ(pool.node(cmp).imm, 1);
  const ExprRef ite = pool.Ite(pool.Const(0), pool.Const(10), pool.Const(20));
  EXPECT_EQ(pool.node(ite).imm, 20);
}

TEST(ExprPool, FoldingRespectsWidth) {
  ExprPool pool(8);
  // 100 + 100 = 200 wraps to -56 in signed 8-bit.
  const ExprRef sum = pool.Binary(ExprOp::kAdd, pool.Const(100), pool.Const(100));
  EXPECT_EQ(pool.node(sum).imm, -56);
  // Constants are stored sign-extended.
  EXPECT_EQ(pool.node(pool.Const(255)).imm, -1);
}

TEST(ExprPool, AlgebraicIdentities) {
  ExprPool pool(16);
  const ExprRef x = pool.FreshVar("x");
  EXPECT_EQ(pool.Binary(ExprOp::kAdd, x, pool.Const(0)), x);
  EXPECT_EQ(pool.Binary(ExprOp::kAdd, pool.Const(0), x), x);
  EXPECT_EQ(pool.Binary(ExprOp::kSub, x, pool.Const(0)), x);
  EXPECT_EQ(pool.Binary(ExprOp::kMul, x, pool.Const(1)), x);
  EXPECT_EQ(pool.Binary(ExprOp::kMul, pool.Const(1), x), x);
}

TEST(ExprPool, TruthyFalsyNormalisation) {
  ExprPool pool(16);
  const ExprRef x = pool.FreshVar("x");
  const ExprRef y = pool.FreshVar("y");
  const ExprRef lt = pool.Binary(ExprOp::kSlt, x, y);
  // Comparisons are their own truthy form.
  EXPECT_EQ(pool.Truthy(lt), lt);
  // Falsy of a < b is b <= a.
  const ExprRef not_lt = pool.Falsy(lt);
  EXPECT_EQ(pool.node(not_lt).op, ExprOp::kSle);
  EXPECT_EQ(pool.node(not_lt).a, y);
  EXPECT_EQ(pool.node(not_lt).b, x);
  // Double negation of a comparison returns the original.
  EXPECT_EQ(pool.Falsy(pool.Falsy(lt)), lt);
  // Non-comparisons are wrapped.
  EXPECT_EQ(pool.node(pool.Truthy(x)).op, ExprOp::kNe);
}

TEST(ExprPool, TreeSizeGrowsAndSaturates) {
  ExprPool pool(16);
  ExprRef x = pool.FreshVar("x");
  EXPECT_EQ(pool.TreeSize(x), 1u);
  uint32_t previous = 1;
  for (int i = 0; i < 40; ++i) {
    x = pool.Binary(ExprOp::kMul, x, x);
    // Doubles each round (plus one) until saturation; never decreases.
    EXPECT_GE(pool.TreeSize(x), previous);
    previous = pool.TreeSize(x);
  }
  EXPECT_EQ(previous, 0xffffffffu);  // Saturated, not wrapped.
}

TEST(ExprPool, EvalMatchesTwosComplementSemantics) {
  ExprPool pool(8);
  const ExprRef x = pool.FreshVar("x");
  const ExprRef y = pool.FreshVar("y");
  const ExprRef expr = pool.Binary(
      ExprOp::kXor, pool.Binary(ExprOp::kMul, x, pool.Const(3)),
      pool.Binary(ExprOp::kShr, y, pool.Const(2)));
  // 8-bit: (50*3) & 0xff = 150 -> -106 signed; (200 >> 2) on masked y.
  const int64_t value = pool.Eval(expr, {50, 200});
  const int64_t expected =
      static_cast<int8_t>((static_cast<uint8_t>(50 * 3)) ^ ((200 & 0xff) >> 2));
  EXPECT_EQ(value, expected);
}

TEST(ExprPool, EvalIteAndComparisons) {
  ExprPool pool(16);
  const ExprRef x = pool.FreshVar("x");
  const ExprRef cond = pool.Binary(ExprOp::kSle, x, pool.Const(10));
  const ExprRef ite = pool.Ite(cond, pool.Const(111), pool.Const(222));
  EXPECT_EQ(pool.Eval(ite, {10}), 111);
  EXPECT_EQ(pool.Eval(ite, {11}), 222);
}

TEST(ExprPool, IsConcreteDetectsVariables) {
  ExprPool pool(16);
  const ExprRef x = pool.FreshVar("x");
  EXPECT_FALSE(pool.IsConcrete(x));
  EXPECT_TRUE(pool.IsConcrete(pool.Const(5)));
  EXPECT_FALSE(pool.IsConcrete(pool.Binary(ExprOp::kAdd, x, pool.Const(1))));
}

TEST(ExprPool, DivisionBySymbolicBecomesFreshVar) {
  ExprPool pool(16);
  const ExprRef x = pool.FreshVar("x");
  const ExprRef y = pool.FreshVar("y");
  bool made_fresh = false;
  const ExprRef quotient = pool.FromBinaryOp(lang::BinaryOp::kDiv, x, y, made_fresh);
  EXPECT_TRUE(made_fresh);
  EXPECT_EQ(pool.node(quotient).op, ExprOp::kVar);
  // Constant division folds exactly.
  made_fresh = false;
  const ExprRef folded =
      pool.FromBinaryOp(lang::BinaryOp::kDiv, pool.Const(42), pool.Const(6), made_fresh);
  EXPECT_FALSE(made_fresh);
  EXPECT_EQ(pool.node(folded).imm, 7);
}

TEST(ExprPool, ToStringIsReadable) {
  ExprPool pool(16);
  const ExprRef x = pool.FreshVar("x");
  const ExprRef expr = pool.Binary(ExprOp::kSlt, x, pool.Const(8));
  EXPECT_EQ(pool.ToString(expr), "(< x 8)");
}

}  // namespace
}  // namespace symx
