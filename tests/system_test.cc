// Tests for whole-system evaluation (§5.3 future work) and for testbed
// record serialization.
#include <gtest/gtest.h>

#include "src/clair/serialize.h"
#include "src/clair/system.h"
#include "src/corpus/codegen.h"
#include "src/corpus/ecosystem.h"

namespace clair {
namespace {

TEST(SystemExposure, ModelShape) {
  EXPECT_DOUBLE_EQ(SystemEvaluator::ExposureOf(true, false), 1.0);
  EXPECT_DOUBLE_EQ(SystemEvaluator::ExposureOf(false, false), 0.6);
  EXPECT_DOUBLE_EQ(SystemEvaluator::ExposureOf(true, true), 1.25);
  EXPECT_DOUBLE_EQ(SystemEvaluator::ExposureOf(false, true), 0.75);
}

class SystemEvalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::CorpusOptions corpus_options;
    corpus_options.mature_apps = 32;
    corpus_options.immature_apps = 0;
    corpus_options.size_scale = 0.005;
    ecosystem_ = new corpus::EcosystemGenerator(corpus_options);
    TestbedOptions testbed_options;
    testbed_options.deep_analysis_max_files = 1;
    testbed_options.with_symexec = false;  // Keep the suite fast.
    testbed_ = new Testbed(*ecosystem_, testbed_options);
    PipelineOptions pipeline_options;
    pipeline_options.cv_folds = 4;
    const TrainingPipeline pipeline(testbed_->Collect(), pipeline_options);
    model_ = new TrainedModel(pipeline.TrainFinal());
    evaluator_ = new SecurityEvaluator(*model_, *testbed_);
  }

  static void TearDownTestSuite() {
    delete evaluator_;
    delete model_;
    delete testbed_;
    delete ecosystem_;
  }

  static std::vector<metrics::SourceFile> Component(uint64_t seed, double unsafety) {
    support::Rng rng(seed);
    corpus::AppStyle style;
    style.unsafety = unsafety;
    metrics::SourceFile file;
    file.path = "comp.c";
    file.language = metrics::Language::kMiniC;
    file.text = corpus::GenerateMiniCFile(rng, style, 200);
    return {file};
  }

  static corpus::EcosystemGenerator* ecosystem_;
  static Testbed* testbed_;
  static TrainedModel* model_;
  static SecurityEvaluator* evaluator_;
};

corpus::EcosystemGenerator* SystemEvalTest::ecosystem_ = nullptr;
Testbed* SystemEvalTest::testbed_ = nullptr;
TrainedModel* SystemEvalTest::model_ = nullptr;
SecurityEvaluator* SystemEvalTest::evaluator_ = nullptr;

TEST_F(SystemEvalTest, WeakestLinkAndComposition) {
  const SystemEvaluator system(*evaluator_);
  const SystemReport report = system.Evaluate({
      {"frontend", Component(1, 0.9), /*network_facing=*/true, /*privileged=*/false},
      {"worker", Component(2, 0.5), /*network_facing=*/false, /*privileged=*/false},
      {"updater", Component(3, 0.5), /*network_facing=*/false, /*privileged=*/true},
  });
  ASSERT_EQ(report.components.size(), 3u);
  // Components sorted riskiest first; the weakest link matches the top.
  EXPECT_EQ(report.components[0].report.subject, report.weakest_link);
  EXPECT_DOUBLE_EQ(report.components[0].exposed_risk, report.weakest_risk);
  // System risk at least the weakest link (composition only adds risk).
  EXPECT_GE(report.system_risk, report.weakest_risk - 1e-12);
  EXPECT_LE(report.system_risk, 1.0);
  EXPECT_FALSE(report.ToString().empty());
}

TEST_F(SystemEvalTest, AddingComponentsNeverLowersRisk) {
  const SystemEvaluator system(*evaluator_);
  const std::vector<SystemComponent> base = {
      {"frontend", Component(1, 0.7), true, false},
  };
  std::vector<SystemComponent> larger = base;
  larger.push_back({"sidecar", Component(4, 0.7), true, false});
  const double small_risk = system.Evaluate(base).system_risk;
  const double large_risk = system.Evaluate(larger).system_risk;
  EXPECT_GE(large_risk, small_risk - 1e-12);
}

TEST_F(SystemEvalTest, ExposureAmplifiesIdenticalComponent) {
  const SystemEvaluator system(*evaluator_);
  const auto files = Component(9, 0.8);
  const SystemReport internal =
      system.Evaluate({{"svc", files, /*network_facing=*/false, /*privileged=*/false}});
  const SystemReport facing =
      system.Evaluate({{"svc", files, /*network_facing=*/true, /*privileged=*/false}});
  EXPECT_GE(facing.system_risk, internal.system_risk - 1e-12);
}

TEST_F(SystemEvalTest, RecordsRoundTripThroughSerialization) {
  const auto records = testbed_->Collect();
  const std::string text = SaveRecords(records);
  auto loaded = LoadRecords(text);
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToString();
  ASSERT_EQ(loaded.value().size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const auto& original = records[i];
    const auto& restored = loaded.value()[i];
    EXPECT_EQ(original.name, restored.name);
    EXPECT_EQ(original.labels.total, restored.labels.total);
    EXPECT_EQ(original.labels.by_cwe, restored.labels.by_cwe);
    EXPECT_EQ(original.features.values(), restored.features.values());
  }
  // Save(Load(x)) is a fixpoint.
  EXPECT_EQ(SaveRecords(loaded.value()), text);
}

TEST_F(SystemEvalTest, RetrainingFromLoadedRecordsIsIdentical) {
  const auto records = testbed_->Collect();
  auto loaded = LoadRecords(SaveRecords(records));
  ASSERT_TRUE(loaded.ok());
  PipelineOptions options;
  options.cv_folds = 4;
  const TrainingPipeline original(records, options);
  const TrainingPipeline restored(loaded.value(), options);
  const auto& hypothesis = StandardHypotheses()[0];
  const auto report_a = original.EvaluateHypothesis(hypothesis);
  const auto report_b = restored.EvaluateHypothesis(hypothesis);
  EXPECT_DOUBLE_EQ(report_a.best.accuracy, report_b.best.accuracy);
  EXPECT_DOUBLE_EQ(report_a.best.auc, report_b.best.auc);
  EXPECT_EQ(report_a.best_learner, report_b.best_learner);
}

TEST(Serialize, RejectsMalformedInput) {
  EXPECT_FALSE(LoadRecords("name=orphan\n").ok());
  EXPECT_FALSE(LoadRecords("[app]\nbogus-line\n").ok());
  EXPECT_FALSE(LoadRecords("[app]\nunknown.key=1\n").ok());
  EXPECT_FALSE(LoadRecords("[app]\nlabel.total=notanumber\n").ok());
  auto empty = LoadRecords("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

}  // namespace
}  // namespace clair
