// Tests for the deterministic parallel runtime: scheduling correctness,
// exception propagation, nested-region safety, and the central contract —
// ParallelMap output is bit-identical at 1 and N workers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/support/rng.h"
#include "src/support/thread_pool.h"

namespace support {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << i;
  }
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  // Serial order contract: indices run 0..n-1 on the calling thread.
  std::vector<size_t> order;
  pool.ParallelFor(64, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 64u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ThreadPool, ZeroAndOneSizedRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelMapCollectsInIndexOrder) {
  ThreadPool pool(4);
  const auto out =
      pool.ParallelMap<size_t>(1000, [](size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 1000u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(256,
                       [](size_t i) {
                         if (i == 137) {
                           throw std::runtime_error("task failed");
                         }
                       }),
      std::runtime_error);
  // The pool survives a failed region and can run the next one.
  std::atomic<int> ran{0};
  pool.ParallelFor(32, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, ManyConcurrentThrowsDeliverExactlyOneException) {
  // Robustness contract under fault storms: when many tasks throw at once,
  // the caller sees exactly one exception (the first one captured), the
  // region still joins every job (nothing leaks into later regions), and
  // the pool stays fully usable.
  ThreadPool pool(8);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> entered{0};
    int caught = 0;
    std::string message;
    try {
      pool.ParallelFor(512, [&](size_t i) {
        entered.fetch_add(1);
        if (i % 3 == 0) {  // ~170 throwing tasks per round.
          throw std::runtime_error("boom " + std::to_string(i));
        }
      });
    } catch (const std::runtime_error& e) {
      ++caught;
      message = e.what();
    }
    EXPECT_EQ(caught, 1) << "round " << round;
    EXPECT_EQ(message.rfind("boom ", 0), 0u) << message;
    // Every task either ran or was abandoned by its region — but no task
    // from this round may fire later. Run a full clean region and check the
    // count is exact: leaked jobs would inflate it.
    std::atomic<int> clean{0};
    pool.ParallelFor(64, [&](size_t) { clean.fetch_add(1); });
    EXPECT_EQ(clean.load(), 64) << "round " << round;
    EXPECT_LE(entered.load(), 512) << "round " << round;
  }
}

TEST(ThreadPool, ExceptionOnSerialPathPropagatesToo) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(
                   8, [](size_t i) { if (i == 3) { throw std::logic_error("x"); } }),
               std::logic_error);
}

TEST(ThreadPool, NestedParallelismRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  EXPECT_FALSE(InParallelRegion());
  std::atomic<long long> total{0};
  pool.ParallelFor(16, [&](size_t) {
    EXPECT_TRUE(InParallelRegion());
    // A nested region on the same pool must not deadlock; it runs inline.
    pool.ParallelFor(16, [&](size_t j) {
      total.fetch_add(static_cast<long long>(j));
    });
  });
  EXPECT_EQ(total.load(), 16 * (15 * 16 / 2));
  EXPECT_FALSE(InParallelRegion());
}

TEST(ThreadPool, NestedOnGlobalPoolIsAlsoInline) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  pool.ParallelFor(8, [&](size_t) {
    support::ParallelFor(8, [&](size_t) { ran.fetch_add(1); });
  });
  EXPECT_EQ(ran.load(), 64);
}

// The core determinism contract: a seeded per-index computation produces a
// bit-identical result vector at 1 worker and at N workers.
TEST(ThreadPool, OneVsManyWorkersBitIdenticalParallelMap) {
  constexpr size_t kN = 512;
  constexpr uint64_t kBase = 20170508;
  const auto run = [&](int threads) {
    ThreadPool pool(threads);
    return pool.ParallelMap<double>(kN, [&](size_t i) {
      Rng rng = Rng::ForTask(kBase, i);
      // A float-heavy task whose result depends on the whole stream.
      double acc = 0.0;
      for (int step = 0; step < 100; ++step) {
        acc += rng.Normal() * rng.NextDouble();
      }
      return acc;
    });
  };
  const auto serial = run(1);
  const auto parallel4 = run(4);
  const auto parallel7 = run(7);
  ASSERT_EQ(serial.size(), parallel4.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    // Exact binary equality, not EXPECT_DOUBLE_EQ's 4-ulp tolerance.
    EXPECT_EQ(serial[i], parallel4[i]) << i;
    EXPECT_EQ(serial[i], parallel7[i]) << i;
  }
}

TEST(ThreadPool, CompletionHookFiresOncePerIndexAfterBody) {
  for (const int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    constexpr size_t kN = 500;
    std::vector<std::atomic<int>> body_runs(kN);
    std::vector<std::atomic<int>> hook_runs(kN);
    pool.ParallelFor(
        kN, [&](size_t i) { body_runs[i].fetch_add(1); },
        [&](size_t i) {
          // The hook must observe its own body's effect (runs after it).
          EXPECT_EQ(body_runs[i].load(), 1) << i;
          hook_runs[i].fetch_add(1);
        });
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hook_runs[i].load(), 1) << i;
    }
  }
}

TEST(ThreadPool, CompletionHookSkippedForThrowingBody) {
  for (const int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    constexpr size_t kN = 64;
    constexpr size_t kPoison = 17;
    std::atomic<int> poisoned_hook{0};
    try {
      pool.ParallelFor(
          kN,
          [&](size_t i) {
            if (i == kPoison) {
              throw std::runtime_error("poisoned index");
            }
          },
          [&](size_t i) {
            if (i == kPoison) {
              poisoned_hook.fetch_add(1);
            }
          });
      FAIL() << "expected the body's exception to propagate";
    } catch (const std::runtime_error& ex) {
      EXPECT_STREQ(ex.what(), "poisoned index");
    }
    EXPECT_EQ(poisoned_hook.load(), 0);
  }
}

TEST(ThreadPool, ResolveThreadCountPolicy) {
  EXPECT_EQ(ResolveThreadCount(3), 3);
  EXPECT_GE(ResolveThreadCount(0), 1);
  EXPECT_GE(ResolveThreadCount(-5), 1);
}

TEST(ThreadPool, SetGlobalThreadsReplacesPool) {
  ThreadPool::SetGlobalThreads(2);
  EXPECT_EQ(ThreadPool::Global().size(), 2);
  std::atomic<int> ran{0};
  support::ParallelFor(64, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64);
  ThreadPool::SetGlobalThreads(0);  // Back to the environment default.
}

TEST(Rng, TaskSeedStableAndSpread) {
  // Stable across calls, distinct across indices and bases.
  EXPECT_EQ(Rng::TaskSeed(1, 0), Rng::TaskSeed(1, 0));
  EXPECT_NE(Rng::TaskSeed(1, 0), Rng::TaskSeed(1, 1));
  EXPECT_NE(Rng::TaskSeed(1, 0), Rng::TaskSeed(2, 0));
  // Adjacent indices must decorrelate: streams differ immediately.
  Rng a = Rng::ForTask(7, 10);
  Rng b = Rng::ForTask(7, 11);
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(Rng, ForkForTaskIsConstAndStable) {
  const Rng parent(42);
  Rng child1 = parent.ForkForTask(5);
  Rng child2 = parent.ForkForTask(5);
  Rng other = parent.ForkForTask(6);
  EXPECT_EQ(child1.NextU64(), child2.NextU64());
  Rng child3 = parent.ForkForTask(5);
  EXPECT_NE(child3.NextU64(), other.NextU64());
}

TEST(Rng, SplitAliasesForkSemantics) {
  Rng a(9);
  Rng b(9);
  Rng child_a = a.Split();
  Rng child_b = b.Fork();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(child_a.NextU64(), child_b.NextU64());
  }
}

}  // namespace
}  // namespace support
