// Unit tests for the static-analysis metric extractors.
#include <gtest/gtest.h>

#include "src/lang/lexer.h"
#include "src/lang/parser.h"
#include "src/metrics/callgraph.h"
#include "src/metrics/cloc.h"
#include "src/metrics/complexity.h"
#include "src/metrics/extract.h"
#include "src/metrics/feature_vector.h"
#include "src/metrics/smells.h"

namespace metrics {
namespace {

lang::IrModule MustLower(std::string_view source) {
  auto unit = lang::Parse(source);
  EXPECT_TRUE(unit.ok()) << (unit.ok() ? "" : unit.error().ToString());
  auto module = lang::LowerToIr(unit.value());
  EXPECT_TRUE(module.ok()) << (module.ok() ? "" : module.error().ToString());
  return std::move(module).value();
}

TEST(FeatureVector, SetAddMerge) {
  FeatureVector a;
  a.Set("x", 2.0);
  a.Add("x", 3.0);
  a.Set("y", 1.0);
  FeatureVector b;
  b.Set("x", 10.0);
  b.Set("z", 4.0);
  a.MergeSum(b);
  EXPECT_DOUBLE_EQ(a.Get("x"), 15.0);
  EXPECT_DOUBLE_EQ(a.Get("z"), 4.0);
  FeatureVector c;
  c.Set("x", 1.0);
  c.MergeMax(b);
  EXPECT_DOUBLE_EQ(c.Get("x"), 10.0);
  EXPECT_EQ(a.Get("missing", -1.0), -1.0);
  EXPECT_EQ(a.Names().size(), 3u);
}

TEST(Cloc, CFamilyClassification) {
  const std::string source =
      "// leading comment\n"
      "\n"
      "int x = 1; // trailing\n"
      "/* block\n"
      "   spanning */\n"
      "int y = 2; /* inline */ int z = 3;\n"
      "\"/* not a comment */\";\n";
  const LineCount count = CountLines(source, Language::kC);
  EXPECT_EQ(count.comment, 3);
  EXPECT_EQ(count.blank, 1);
  EXPECT_EQ(count.code, 3);
}

TEST(Cloc, PythonDocstringsAndHashes) {
  const std::string source =
      "# comment\n"
      "\"\"\"module docstring\n"
      "continues here\n"
      "\"\"\"\n"
      "\n"
      "def f(x):\n"
      "    return x  # trailing\n";
  const LineCount count = CountLines(source, Language::kPython);
  EXPECT_EQ(count.comment, 4);
  EXPECT_EQ(count.blank, 1);
  EXPECT_EQ(count.code, 2);
}

TEST(Cloc, BlockCommentStateSpansLines) {
  const std::string source = "/*\n\n   all comment\n*/\nint x;\n";
  const LineCount count = CountLines(source, Language::kCpp);
  // The blank line inside the block comment counts as comment (cloc rule:
  // we classify by in-comment state).
  EXPECT_EQ(count.code, 1);
  EXPECT_EQ(count.comment + count.blank, 4);
}

TEST(Complexity, StraightLineIsOne) {
  const auto module = MustLower("int f() { int a = 1; int b = 2; return a + b; }");
  EXPECT_EQ(CyclomaticComplexity(module.functions[0]), 1);
}

TEST(Complexity, EachDecisionAddsOne) {
  const auto module = MustLower(R"(
    int f(int x) {
      if (x > 0) { x = 1; }
      if (x > 1) { x = 2; } else { x = 3; }
      while (x < 10) { x = x + 1; }
      return x;
    }
  )");
  // M = decisions + 1 = 3 + 1.
  EXPECT_EQ(CyclomaticComplexity(module.functions[0]), 4);
}

TEST(Complexity, ShortCircuitCountsAsDecision) {
  const auto module = MustLower("int f(int x, int y) { return (x > 0 && y > 0) ? 1 : 0; }");
  // && and ?: each add a branch in the lowered CFG.
  EXPECT_EQ(CyclomaticComplexity(module.functions[0]), 3);
}

TEST(Complexity, DecisionPointsSourceLevel) {
  auto unit = lang::Parse(R"(
    int f(int x) {
      if (x > 0 && x < 5) { return 1; }
      switch (x) { case 1: return 2; case 2: return 3; default: return 4; }
    }
  )");
  ASSERT_TRUE(unit.ok());
  // if + && + 2 cases (default doesn't count).
  EXPECT_EQ(DecisionPoints(unit.value().functions[0]), 4);
}

TEST(Complexity, NestingDepth) {
  auto unit = lang::Parse(R"(
    int f(int x) {
      if (x) {
        while (x) {
          if (x) { x = 0; }
        }
      }
      return 0;
    }
  )");
  ASSERT_TRUE(unit.ok());
  EXPECT_EQ(MaxNestingDepth(unit.value().functions[0]), 3);
}

TEST(Halstead, CountsOperatorsAndOperands) {
  auto lexed = lang::Lex("int f() { return 1 + 2 + x; }");
  ASSERT_TRUE(lexed.ok());
  const HalsteadMeasures hm = ComputeHalstead(lexed.value().tokens);
  // Operands: 1, 2, x (f is an identifier too). Distinct operators include
  // int, return, +.
  EXPECT_GE(hm.distinct_operands, 3);
  EXPECT_GE(hm.distinct_operators, 3);
  EXPECT_GT(hm.volume, 0.0);
  EXPECT_GT(hm.effort, 0.0);
  EXPECT_NEAR(hm.estimated_bugs, hm.volume / 3000.0, 1e-12);
}

TEST(CallGraph, FanInOutAndRecursion) {
  const auto module = MustLower(R"(
    int leaf(int x) { return x; }
    int mid(int x) { return leaf(x) + leaf(x + 1); }
    int looper(int x) { if (x > 0) { return looper(x - 1); } return 0; }
    int top(int x) { return mid(x) + leaf(x) + looper(x); }
  )");
  const CallGraph graph(module);
  EXPECT_EQ(graph.FanOut("top"), 3);
  EXPECT_EQ(graph.FanIn("leaf"), 2);
  EXPECT_TRUE(graph.IsRecursive("looper"));
  EXPECT_FALSE(graph.IsRecursive("mid"));
  EXPECT_EQ(graph.CallSites("mid"), 2);
  const auto reachable = graph.ReachableFrom("top");
  EXPECT_EQ(reachable.size(), 4u);
  const auto roots = graph.Roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], "top");
}

TEST(Smells, DetectsConfiguredPatterns) {
  auto unit = lang::Parse(R"(
    int many_params(int a, int b, int c, int d, int e, int f) { return a; }
    int magic(int x) { return x * 31337 + 4242; }
  )");
  ASSERT_TRUE(unit.ok());
  SmellThresholds thresholds;
  const SmellReport report = DetectSmells(unit.value(), thresholds);
  EXPECT_EQ(report.long_param_lists, 1);
  EXPECT_EQ(report.magic_numbers, 2);
  EXPECT_EQ(report.functions, 2);
}

TEST(BugSignals, UncheckedInputIndex) {
  const auto module = MustLower(R"(
    int unchecked() { int b[8]; int i = input(); b[i] = 1; return b[i]; }
    int checked() {
      int b[8];
      int i = input();
      if (i >= 0 && i < 8) { b[i] = 1; }
      return 0;
    }
  )");
  const auto signals = FindBugSignals(module);
  int unchecked_hits = 0;
  for (const auto& signal : signals) {
    if (signal.kind == BugSignal::Kind::kUncheckedInputIndex) {
      EXPECT_EQ(signal.function, "unchecked");
      ++unchecked_hits;
    }
  }
  EXPECT_GE(unchecked_hits, 1);
}

TEST(BugSignals, NonConstantDivisorAndDeadStore) {
  const auto module = MustLower(R"(
    int f(int d) {
      int unused = 42;
      return 100 / d;
    }
  )");
  const auto signals = FindBugSignals(module);
  bool divisor = false;
  bool dead = false;
  for (const auto& signal : signals) {
    divisor |= signal.kind == BugSignal::Kind::kNonConstantDivisor;
    dead |= signal.kind == BugSignal::Kind::kDeadStore;
  }
  EXPECT_TRUE(divisor);
  EXPECT_TRUE(dead);
}

TEST(BugSignals, UnreachableAfterAbort) {
  const auto module = MustLower(R"(
    int f() {
      abort();
      return 7;
    }
  )");
  const auto signals = FindBugSignals(module);
  bool unreachable = false;
  for (const auto& signal : signals) {
    unreachable |= signal.kind == BugSignal::Kind::kUnreachableCode;
  }
  EXPECT_TRUE(unreachable);
}

TEST(Extract, MiniCFileProducesFullFamilies) {
  SourceFile file;
  file.path = "m.c";
  file.language = Language::kMiniC;
  file.text = R"(
    // A module.
    int table[16];
    int handle(int request) {
      int idx = input();
      if (idx >= 0 && idx < 16) { table[idx] = request; }
      sink(table[0]);
      return request / 2;
    }
  )";
  const FeatureVector fv = ExtractFileFeatures(file);
  EXPECT_GT(fv.Get("loc.code"), 0.0);
  EXPECT_GT(fv.Get("mccabe.total"), 0.0);
  EXPECT_GT(fv.Get("halstead.volume"), 0.0);
  EXPECT_EQ(fv.Get("shin.functions"), 1.0);
  EXPECT_FALSE(fv.Has("parse.failed"));
}

TEST(Extract, BadMiniCDegradesGracefully) {
  SourceFile file;
  file.path = "bad.c";
  file.language = Language::kMiniC;
  file.text = "int f( { not valid\n";
  const FeatureVector fv = ExtractFileFeatures(file);
  EXPECT_EQ(fv.Get("parse.failed"), 1.0);
  EXPECT_GT(fv.Get("loc.total"), 0.0);
}

TEST(Extract, AppAggregationSumsAndRatios) {
  SourceFile a;
  a.path = "a.c";
  a.language = Language::kMiniC;
  a.text = "// c\nint f() { return 1; }\n";
  SourceFile b;
  b.path = "b.py";
  b.language = Language::kPython;
  b.text = "# hi\ndef g(x):\n    return x\n";
  const FeatureVector app = ExtractAppFeatures({a, b});
  EXPECT_EQ(app.Get("app.files"), 2.0);
  EXPECT_GT(app.Get("loc.comment_ratio"), 0.0);
  EXPECT_EQ(app.Get("lang.minic.files"), 1.0);
  EXPECT_EQ(app.Get("lang.python.files"), 1.0);
}

}  // namespace
}  // namespace metrics
