// Sharded fleet sweeps (ctest labels: chaos).
//
// The acceptance contract under test:
//   - the merged output of a sharded sweep — records, function-row store,
//     and the record-derived robustness fold — is byte-identical to a
//     1-process sweep at any shard count and worker count;
//   - seeded worker_crash / heartbeat_loss chaos (kill schedules, lost
//     leases, stolen shards) loses zero rows and changes zero bytes, and
//     the damage is surfaced (crash counts, revocations, dropped
//     checkpoint blocks), never silently absorbed;
//   - rate-1 crash schedules still terminate via the inline fallback;
//   - the fork/exec transport (real subprocesses re-exec'ing this binary
//     through ShardWorkerMain) produces the same bytes as the simulated
//     transport.
//
// This binary defines its own main: it must be re-exec-able as a shard
// worker before gtest ever initializes.
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/clair/run_report.h"
#include "src/clair/serialize.h"
#include "src/clair/shard.h"
#include "src/clair/shard_worker.h"
#include "src/clair/testbed.h"
#include "src/corpus/ecosystem.h"
#include "src/metrics/extract.h"
#include "src/support/fault_injection.h"
#include "src/support/strings.h"

namespace clair {
namespace shard_test {

// Shared by the tests and by worker mode in main(): a fork/exec worker
// must reconstruct the exact ecosystem + testbed config the coordinator
// used, and this pair of functions is that contract.
corpus::CorpusOptions SmallCorpus() {
  corpus::CorpusOptions options;
  options.mature_apps = 12;
  options.immature_apps = 2;
  options.size_scale = 0.01;
  return options;
}

TestbedOptions SmallTestbed() {
  TestbedOptions options;
  options.deep_analysis_max_files = 1;
  options.cache_features = false;
  return options;
}

namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string MakeWorkDir(const char* name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string dir = ::testing::TempDir() + info->test_suite_name() + "_" +
                          info->name() + "_" + name;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

class ShardSweepTest : public ::testing::Test {
 protected:
  // One 1-process reference sweep for the whole suite: its record bytes,
  // store bytes, and robustness fold are what every sharded configuration
  // must reproduce exactly.
  static void SetUpTestSuite() {
    ecosystem_ = new corpus::EcosystemGenerator(SmallCorpus());
    const Testbed testbed(*ecosystem_, SmallTestbed());
    const auto records = testbed.Collect();
    ASSERT_GT(records.size(), 0u);
    baseline_records_ = new std::string(SaveRecords(records));
    baseline_fold_ = new std::string(SaveRunReport(SummarizeRecordRobustness(records)));
    const std::string store_path = ::testing::TempDir() + "shard_baseline.clfs";
    auto writer = ml::FeatureStoreWriter::Create(
        store_path, metrics::FunctionFeatureNames(), FunctionClassNames(),
        ml::FeatureStoreOptions{});
    ASSERT_TRUE(writer.ok()) << writer.error().ToString();
    const auto stats = testbed.CollectFunctionRows(*writer.value());
    ASSERT_TRUE(stats.ok()) << stats.error().ToString();
    ASSERT_GT(stats.value().functions, 0u);
    ASSERT_TRUE(writer.value()->Finish().ok());
    baseline_store_ = new std::string(ReadFile(store_path));
  }

  static void TearDownTestSuite() {
    delete baseline_store_;
    delete baseline_fold_;
    delete baseline_records_;
    delete ecosystem_;
    ecosystem_ = nullptr;
  }

  static ShardSweepResult RunSweep(ShardSweepOptions options,
                                   std::unique_ptr<WorkerTransport> transport = nullptr) {
    options.testbed = SmallTestbed();
    ShardCoordinator coordinator(*ecosystem_, std::move(options),
                                 std::move(transport));
    auto result = coordinator.Run();
    EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().ToString());
    return result.ok() ? std::move(result).value() : ShardSweepResult{};
  }

  static void ExpectMatchesBaseline(const ShardSweepResult& result) {
    EXPECT_EQ(SaveRecords(result.records), *baseline_records_);
    EXPECT_EQ(SaveRunReport(SummarizeRecordRobustness(result.records)),
              *baseline_fold_);
    ASSERT_FALSE(result.store_path.empty());
    EXPECT_EQ(ReadFile(result.store_path), *baseline_store_);
  }

  static const corpus::EcosystemGenerator* ecosystem_;
  static const std::string* baseline_records_;
  static const std::string* baseline_fold_;
  static const std::string* baseline_store_;
};

const corpus::EcosystemGenerator* ShardSweepTest::ecosystem_ = nullptr;
const std::string* ShardSweepTest::baseline_records_ = nullptr;
const std::string* ShardSweepTest::baseline_fold_ = nullptr;
const std::string* ShardSweepTest::baseline_store_ = nullptr;

TEST(ShardPartition, IsStableAndCoversEveryApp) {
  const corpus::EcosystemGenerator ecosystem(SmallCorpus());
  const auto apps = ecosystem.database().AppsWithConvergingHistory(5.0);
  ASSERT_GT(apps.size(), 0u);
  for (const auto& app : apps) {
    const int shard = ShardCoordinator::ShardOf(app, 8);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 8);
    // Pure function of the name: stable across calls and corpus order.
    EXPECT_EQ(shard, ShardCoordinator::ShardOf(app, 8));
    EXPECT_EQ(ShardCoordinator::ShardOf(app, 1), 0);
  }
}

TEST(ShardTaskIo, RoundTripsEveryField) {
  ShardTask task;
  task.shard = 3;
  task.generation = 7;
  task.apps = {"alpha", "beta-2"};
  task.checkpoint_path = "/tmp/x/shard_3.ckpt";
  task.store_path = "/tmp/x/shard_3.g7.clfs";
  task.report_path = "/tmp/x/shard_3.g7.report";
  task.allow_crash = false;
  task.fault_config = "worker_crash:0.5,seed:9";
  task.heartbeat_fd = 3;
  const auto loaded = LoadShardTask(SaveShardTask(task));
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToString();
  EXPECT_EQ(loaded.value().shard, task.shard);
  EXPECT_EQ(loaded.value().generation, task.generation);
  EXPECT_EQ(loaded.value().apps, task.apps);
  EXPECT_EQ(loaded.value().checkpoint_path, task.checkpoint_path);
  EXPECT_EQ(loaded.value().store_path, task.store_path);
  EXPECT_EQ(loaded.value().report_path, task.report_path);
  EXPECT_EQ(loaded.value().allow_crash, task.allow_crash);
  EXPECT_EQ(loaded.value().fault_config, task.fault_config);
  EXPECT_EQ(loaded.value().heartbeat_fd, task.heartbeat_fd);
  EXPECT_FALSE(LoadShardTask("shard=1\n").ok());  // No header.
}

TEST_F(ShardSweepTest, MergedSweepIsByteIdenticalAcrossShardAndWorkerCounts) {
  struct Config {
    int shards;
    int workers;
  };
  for (const Config config : {Config{1, 1}, Config{5, 3}, Config{8, 2}}) {
    SCOPED_TRACE(support::Format("shards=%d workers=%d", config.shards,
                                 config.workers));
    ShardSweepOptions options;
    options.num_shards = config.shards;
    options.num_workers = config.workers;
    options.work_dir = MakeWorkDir(
        support::Format("s%dw%d", config.shards, config.workers).c_str());
    const auto result = RunSweep(options);
    ExpectMatchesBaseline(result);
    EXPECT_EQ(result.stats.worker_crashes, 0u);
    EXPECT_EQ(result.stats.leases_revoked, 0u);
    EXPECT_EQ(result.stats.healed_records, 0u);
    EXPECT_EQ(result.report.apps_total, result.records.size());
  }
}

TEST_F(ShardSweepTest, WorkerCrashChaosLosesNothingAndSurfacesDamage) {
  support::FaultInjector::ScopedConfig scoped("worker_crash:0.6,seed:7");
  ShardSweepOptions options;
  options.num_shards = 5;
  options.num_workers = 3;
  options.work_dir = MakeWorkDir("crash");
  const auto result = RunSweep(options);
  ExpectMatchesBaseline(result);
  // The schedule must actually have bitten, and the bite must be audited:
  // torn checkpoint tails become dropped-block counts, not silence.
  EXPECT_GT(result.stats.worker_crashes, 0u);
  EXPECT_GT(result.stats.shards_stolen, 0u);
  EXPECT_GT(result.report.checkpoint_dropped_blocks, 0u);
  EXPECT_GT(result.stats.generations_launched,
            static_cast<uint64_t>(options.num_shards));
}

TEST_F(ShardSweepTest, CertainCrashFallsBackInlineAndStillMatches) {
  support::FaultInjector::ScopedConfig scoped("worker_crash:1,seed:3");
  ShardSweepOptions options;
  options.num_shards = 2;
  options.num_workers = 2;
  options.max_generations = 2;  // Two doomed generations, then inline.
  options.work_dir = MakeWorkDir("certain");
  const auto result = RunSweep(options);
  ExpectMatchesBaseline(result);
  // Every nonempty shard burns its generation budget (one doomed commit per
  // generation) and lands in the coordinator's inline lane.
  EXPECT_GT(result.stats.inline_fallbacks, 0u);
  EXPECT_EQ(result.stats.worker_crashes,
            result.stats.inline_fallbacks *
                static_cast<uint64_t>(options.max_generations));
}

TEST_F(ShardSweepTest, HeartbeatLossRevokesLeasesAndStealsLosslessly) {
  support::FaultInjector::ScopedConfig scoped("heartbeat_loss:1,seed:5");
  ShardSweepOptions options;
  options.num_shards = 2;
  options.num_workers = 2;
  options.lease_ttl_ticks = 2;   // Starve fast: every beat is eaten.
  options.max_generations = 64;  // Plenty: each generation still commits
                                 // ~TTL apps before its lease dies.
  options.work_dir = MakeWorkDir("hbloss");
  const auto result = RunSweep(options);
  ExpectMatchesBaseline(result);
  EXPECT_GT(result.stats.heartbeats_lost, 0u);
  EXPECT_GT(result.stats.leases_revoked, 0u);
  EXPECT_GT(result.stats.shards_stolen, 0u);
  // Revoked workers were healthy mid-commit; their partial checkpoints must
  // have been resumed, not recomputed from scratch every generation.
  EXPECT_EQ(result.stats.worker_crashes, 0u);
  EXPECT_GT(result.report.apps_from_checkpoint, 0u);
}

TEST_F(ShardSweepTest, SeededKillSchedulesReplayBitIdentically) {
  ShardSweepOptions options;
  options.num_shards = 5;
  options.num_workers = 3;
  auto stats_line = [](const ShardSweepStats& stats) {
    return support::Format("g=%llu crash=%llu stolen=%llu revoked=%llu lost=%llu",
                           (unsigned long long)stats.generations_launched,
                           (unsigned long long)stats.worker_crashes,
                           (unsigned long long)stats.shards_stolen,
                           (unsigned long long)stats.leases_revoked,
                           (unsigned long long)stats.heartbeats_lost);
  };
  support::FaultInjector::ScopedConfig scoped(
      "worker_crash:0.4,heartbeat_loss:0.3,seed:11");
  options.work_dir = MakeWorkDir("replay_a");
  const auto first = RunSweep(options);
  options.work_dir = MakeWorkDir("replay_b");
  const auto second = RunSweep(options);
  // Same seed => the same kill schedule, beat for beat, and of course the
  // same merged bytes.
  EXPECT_EQ(stats_line(first.stats), stats_line(second.stats));
  EXPECT_EQ(SaveRecords(first.records), SaveRecords(second.records));
  EXPECT_EQ(ReadFile(first.store_path), ReadFile(second.store_path));
  ExpectMatchesBaseline(first);
}

TEST_F(ShardSweepTest, ForkTransportMatchesSimulated) {
  ShardSweepOptions options;
  options.num_shards = 3;
  options.num_workers = 2;
  // Real subprocesses heartbeat in wall time; give them slack so a loaded
  // CI machine cannot fake a dead worker.
  options.lease_ttl_ticks = 2000;
  options.work_dir = MakeWorkDir("fork");
  auto transport = std::make_unique<ForkWorkerTransport>(
      "/proc/self/exe", options.num_workers, /*tick_sleep_ms=*/2);
  const auto result = RunSweep(std::move(options), std::move(transport));
  ExpectMatchesBaseline(result);
  EXPECT_EQ(result.stats.worker_crashes, 0u);
}

}  // namespace
}  // namespace shard_test
}  // namespace clair

// Worker mode must run before gtest: a re-exec'd child carries
// --clair-shard-worker=<task file> and must become a pristine shard worker
// with the same ecosystem + testbed config the tests use.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (support::StartsWith(argv[i], "--clair-shard-worker=")) {
      const corpus::EcosystemGenerator ecosystem(clair::shard_test::SmallCorpus());
      return clair::ShardWorkerMain(argc, argv, ecosystem,
                                    clair::shard_test::SmallTestbed());
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
