// Tests for the word-packed bitset + priority-worklist dataflow engine:
// bitset semantics at word boundaries, CFG-view edge cases (zero-block and
// single-block functions), the malformed-idom-chain guard, and — the core
// guarantee — randomized engine-vs-reference equivalence across every
// analysis on hundreds of seeded CFGs, irreducible ones included.
#include <gtest/gtest.h>

#include "src/dataflow/analyses.h"
#include "src/dataflow/intervals.h"
#include "src/dataflow/random_cfg.h"
#include "src/support/bitset.h"
#include "src/support/rng.h"

namespace dataflow {
namespace {

// --- BitSet / BitMatrix ------------------------------------------------------

TEST(BitSet, SetTestCountAcrossWordBoundaries) {
  for (const size_t bits : {1u, 63u, 64u, 65u, 130u, 192u}) {
    support::BitSet set(bits);
    EXPECT_EQ(set.Span().Count(), 0u) << bits;
    EXPECT_TRUE(set.Span().None());
    set.Span().Set(0);
    set.Span().Set(bits - 1);
    EXPECT_TRUE(set.Span().Test(0));
    EXPECT_TRUE(set.Span().Test(bits - 1));
    EXPECT_EQ(set.Span().Count(), bits == 1 ? 1u : 2u);
    set.Span().Reset(0);
    EXPECT_FALSE(set.Span().Test(0));
  }
}

TEST(BitSet, ForEachSkipsEmptyWords) {
  support::BitSet set(256);
  const std::vector<size_t> expected = {0, 63, 64, 127, 200, 255};
  for (const size_t bit : expected) {
    set.Span().Set(bit);
  }
  std::vector<size_t> seen;
  set.Span().ForEach([&](size_t bit) { seen.push_back(bit); });
  EXPECT_EQ(seen, expected);  // Ascending order, no spurious bits.
}

TEST(BitSet, ChangedFlagsAreExact) {
  support::BitSet a(100);
  support::BitSet b(100);
  b.Span().Set(3);
  b.Span().Set(64);
  EXPECT_TRUE(a.Span().UnionWith(b.Span()));   // Gains bits.
  EXPECT_FALSE(a.Span().UnionWith(b.Span()));  // Idempotent.
  EXPECT_TRUE(a.Span().Test(3));
  EXPECT_TRUE(a.Span().Test(64));

  support::BitSet mask(100);
  mask.Span().Set(3);
  EXPECT_TRUE(a.Span().IntersectWith(mask.Span()));   // Drops bit 64.
  EXPECT_FALSE(a.Span().IntersectWith(mask.Span()));  // Stable now.
  EXPECT_EQ(a.Span().Count(), 1u);

  EXPECT_TRUE(a.Span().SubtractWith(mask.Span()));   // Drops bit 3.
  EXPECT_FALSE(a.Span().SubtractWith(mask.Span()));  // Already empty.
  EXPECT_TRUE(a.Span().None());
}

TEST(BitSet, AssignTransferComputesBaseMinusKillPlusGen) {
  support::BitSet base(70), kill(70), gen(70), out(70);
  base.Span().Set(1);
  base.Span().Set(65);
  kill.Span().Set(65);
  gen.Span().Set(69);
  EXPECT_TRUE(out.Span().AssignTransfer(base.Span(), kill.Span(), gen.Span()));
  EXPECT_TRUE(out.Span().Test(1));
  EXPECT_FALSE(out.Span().Test(65));
  EXPECT_TRUE(out.Span().Test(69));
  // Re-applying the identical transfer reports no change.
  EXPECT_FALSE(out.Span().AssignTransfer(base.Span(), kill.Span(), gen.Span()));
}

TEST(BitMatrix, RowsAreIndependent) {
  support::BitMatrix matrix(3, 130);
  matrix.Row(1).Set(129);
  EXPECT_FALSE(matrix.Row(0).Test(129));
  EXPECT_TRUE(matrix.Row(1).Test(129));
  EXPECT_FALSE(matrix.Row(2).Test(129));
  EXPECT_TRUE(matrix.Row(0) == matrix.Row(2));
  EXPECT_FALSE(matrix.Row(0) == matrix.Row(1));
}

// --- CFG edge cases (regression: ReversePostOrder indexed block 0 even for
// functions with no blocks) --------------------------------------------------

lang::IrFunction ZeroBlockFunction() {
  lang::IrFunction fn;
  fn.name = "empty";
  fn.reg_count = 0;
  return fn;
}

TEST(CfgView, ZeroBlockFunctionIsHandled) {
  const lang::IrFunction fn = ZeroBlockFunction();
  const CfgView cfg(fn);
  EXPECT_TRUE(cfg.rpo.empty());
  EXPECT_EQ(cfg.num_blocks, 0u);
}

TEST(CfgView, AnalysesAcceptZeroBlockFunction) {
  const lang::IrFunction fn = ZeroBlockFunction();
  for (const DataflowMode mode : {DataflowMode::kEngine, DataflowMode::kReference}) {
    const ReachingDefinitions rd(fn, nullptr, mode);
    EXPECT_EQ(rd.definitions().size(), 0u);
    EXPECT_EQ(rd.MeanReachingPerUse(), 0.0);
    const Liveness lv(fn, nullptr, mode);
    EXPECT_EQ(lv.MaxLiveAtEntry(), 0);
    const Dominators dom(fn, nullptr, mode);
    EXPECT_EQ(dom.TreeDepth(), 0);
    const TaintSummary taint = AnalyzeTaint(fn, nullptr, mode);
    EXPECT_EQ(taint.input_sites, 0);
    IntervalOptions options;
    options.mode = mode;
    const IntervalReport report = AnalyzeIntervals(fn, options);
    EXPECT_EQ(report.array_accesses, 0);
  }
}

TEST(CfgView, SingleBlockFunction) {
  lang::IrFunction fn;
  fn.name = "single";
  fn.reg_count = 2;
  fn.reg_names = {"a", "b"};
  fn.blocks.resize(1);
  lang::IrInstr instr;
  instr.op = lang::IrOpcode::kInput;
  instr.dst = 0;
  fn.blocks[0].instrs.push_back(instr);
  fn.blocks[0].term.kind = lang::TerminatorKind::kReturn;
  fn.blocks[0].term.value = 0;

  const CfgView cfg(fn);
  ASSERT_EQ(cfg.rpo.size(), 1u);
  EXPECT_EQ(cfg.rpo[0], 0);
  for (const DataflowMode mode : {DataflowMode::kEngine, DataflowMode::kReference}) {
    const Dominators dom(fn, &cfg, mode);
    EXPECT_EQ(dom.Idom(0), 0);
    EXPECT_EQ(dom.TreeDepth(), 0);
    const TaintSummary taint = AnalyzeTaint(fn, &cfg, mode);
    EXPECT_EQ(taint.input_sites, 1);
  }
}

// --- Dominator chain guard ---------------------------------------------------

TEST(Dominators, MalformedIdomCycleDoesNotHang) {
  // idom arrays are tree-shaped when produced by the analysis; this simulates
  // corrupted state (e.g. under fault injection) with a 1 <-> 2 cycle.
  const std::vector<lang::BlockId> idom = {0, 2, 1, -1};
  EXPECT_FALSE(Dominators::DominatesInTree(idom, 0, 1));  // Cycle never reaches 0.
  EXPECT_TRUE(Dominators::DominatesInTree(idom, 2, 1));   // Found before cycling.
  EXPECT_FALSE(Dominators::DominatesInTree(idom, 0, 3));  // Unreachable target.
  // Out-of-range idom entry degrades to false instead of indexing OOB.
  const std::vector<lang::BlockId> bad = {0, 17};
  EXPECT_FALSE(Dominators::DominatesInTree(bad, 0, 1));
}

// --- Liveness terminator uses ------------------------------------------------

TEST(Liveness, TerminatorUsesRespectInBlockDefs) {
  // Block 0 defines r0 then branches on it: not upward-exposed, so r0 must
  // not be live-in to block 0. Block 1 branches on r1 without defining it:
  // upward-exposed, so r1 is live-in there.
  lang::IrFunction fn;
  fn.name = "term_uses";
  fn.reg_count = 2;
  fn.reg_names = {"r0", "r1"};
  fn.blocks.resize(3);
  lang::IrInstr def;
  def.op = lang::IrOpcode::kConst;
  def.dst = 0;
  def.imm = 1;
  fn.blocks[0].instrs.push_back(def);
  fn.blocks[0].term.kind = lang::TerminatorKind::kBranch;
  fn.blocks[0].term.cond = 0;
  fn.blocks[0].term.target_true = 1;
  fn.blocks[0].term.target_false = 2;
  fn.blocks[1].term.kind = lang::TerminatorKind::kBranch;
  fn.blocks[1].term.cond = 1;
  fn.blocks[1].term.target_true = 2;
  fn.blocks[1].term.target_false = 2;
  fn.blocks[2].term.kind = lang::TerminatorKind::kReturn;

  for (const DataflowMode mode : {DataflowMode::kEngine, DataflowMode::kReference}) {
    const Liveness lv(fn, nullptr, mode);
    EXPECT_FALSE(lv.LiveIn(0, 0)) << "defined before the branch cond use";
    EXPECT_TRUE(lv.LiveIn(1, 1)) << "upward-exposed terminator cond";
    EXPECT_TRUE(lv.LiveIn(0, 1)) << "flows through block 0 untouched";
  }
}

// --- Irreducible CFG convergence ---------------------------------------------

TEST(FixpointEngine, IrreducibleLoopConverges) {
  // Classic irreducible region: entry branches into the middle of a cycle
  // (1 <-> 2), so neither loop block dominates the other.
  lang::IrFunction fn;
  fn.name = "irreducible";
  fn.reg_count = 3;
  fn.reg_names = {"c", "x", "y"};
  fn.blocks.resize(4);
  lang::IrInstr input;
  input.op = lang::IrOpcode::kInput;
  input.dst = 0;
  fn.blocks[0].instrs.push_back(input);
  fn.blocks[0].term.kind = lang::TerminatorKind::kBranch;
  fn.blocks[0].term.cond = 0;
  fn.blocks[0].term.target_true = 1;
  fn.blocks[0].term.target_false = 2;
  lang::IrInstr def_x;
  def_x.op = lang::IrOpcode::kConst;
  def_x.dst = 1;
  def_x.imm = 5;
  fn.blocks[1].instrs.push_back(def_x);
  fn.blocks[1].term.kind = lang::TerminatorKind::kBranch;
  fn.blocks[1].term.cond = 0;
  fn.blocks[1].term.target_true = 2;
  fn.blocks[1].term.target_false = 3;
  lang::IrInstr def_y;
  def_y.op = lang::IrOpcode::kCopy;
  def_y.dst = 2;
  def_y.a = 1;
  fn.blocks[2].instrs.push_back(def_y);
  fn.blocks[2].term.kind = lang::TerminatorKind::kBranch;
  fn.blocks[2].term.cond = 0;
  fn.blocks[2].term.target_true = 1;
  fn.blocks[2].term.target_false = 3;
  fn.blocks[3].term.kind = lang::TerminatorKind::kReturn;
  fn.blocks[3].term.value = 2;

  const CfgView cfg(fn);
  const Dominators engine(fn, &cfg, DataflowMode::kEngine);
  const Dominators reference(fn, &cfg, DataflowMode::kReference);
  for (lang::BlockId b = 0; b < 4; ++b) {
    EXPECT_EQ(engine.Idom(b), reference.Idom(b)) << "block " << b;
  }
  // Only the entry dominates the irreducible loop blocks.
  EXPECT_EQ(engine.Idom(1), 0);
  EXPECT_EQ(engine.Idom(2), 0);
  EXPECT_EQ(engine.Idom(3), 0);

  const ReachingDefinitions rd_engine(fn, &cfg, DataflowMode::kEngine);
  const ReachingDefinitions rd_reference(fn, &cfg, DataflowMode::kReference);
  for (lang::BlockId b = 0; b < 4; ++b) {
    EXPECT_TRUE(rd_engine.InSet(b) == rd_reference.InSet(b)) << "block " << b;
  }
  // x's definition in block 1 reaches block 2 around the cycle.
  EXPECT_EQ(rd_engine.CountReaching(2, 1), 1);
}

// --- Randomized engine-vs-reference equivalence ------------------------------

void ExpectAllAnalysesAgree(const lang::IrFunction& fn, uint64_t seed) {
  const CfgView cfg(fn);
  const ReachingDefinitions rd_engine(fn, &cfg, DataflowMode::kEngine);
  const ReachingDefinitions rd_reference(fn, &cfg, DataflowMode::kReference);
  for (size_t b = 0; b < fn.blocks.size(); ++b) {
    ASSERT_TRUE(rd_engine.InSet(static_cast<lang::BlockId>(b)) ==
                rd_reference.InSet(static_cast<lang::BlockId>(b)))
        << "seed " << seed << " block " << b;
    for (lang::RegId r = 0; r < fn.reg_count; ++r) {
      ASSERT_EQ(rd_engine.CountReaching(static_cast<lang::BlockId>(b), r),
                rd_reference.CountReaching(static_cast<lang::BlockId>(b), r))
          << "seed " << seed << " block " << b << " reg " << r;
    }
  }
  ASSERT_EQ(rd_engine.MeanReachingPerUse(), rd_reference.MeanReachingPerUse())
      << "seed " << seed;

  const Liveness lv_engine(fn, &cfg, DataflowMode::kEngine);
  const Liveness lv_reference(fn, &cfg, DataflowMode::kReference);
  for (size_t b = 0; b < fn.blocks.size(); ++b) {
    for (lang::RegId r = 0; r < fn.reg_count; ++r) {
      ASSERT_EQ(lv_engine.LiveIn(static_cast<lang::BlockId>(b), r),
                lv_reference.LiveIn(static_cast<lang::BlockId>(b), r))
          << "seed " << seed << " block " << b << " reg " << r;
    }
  }
  ASSERT_EQ(lv_engine.MaxLiveAtEntry(), lv_reference.MaxLiveAtEntry())
      << "seed " << seed;

  const Dominators dom_engine(fn, &cfg, DataflowMode::kEngine);
  const Dominators dom_reference(fn, &cfg, DataflowMode::kReference);
  for (size_t b = 0; b < fn.blocks.size(); ++b) {
    ASSERT_EQ(dom_engine.Idom(static_cast<lang::BlockId>(b)),
              dom_reference.Idom(static_cast<lang::BlockId>(b)))
        << "seed " << seed << " block " << b;
  }
  ASSERT_EQ(dom_engine.TreeDepth(), dom_reference.TreeDepth()) << "seed " << seed;

  const TaintSummary taint_engine = AnalyzeTaint(fn, &cfg, DataflowMode::kEngine);
  const TaintSummary taint_reference = AnalyzeTaint(fn, &cfg, DataflowMode::kReference);
  ASSERT_EQ(taint_engine.tainted_instructions, taint_reference.tainted_instructions)
      << "seed " << seed;
  ASSERT_EQ(taint_engine.tainted_branches, taint_reference.tainted_branches)
      << "seed " << seed;
  ASSERT_EQ(taint_engine.tainted_array_indices, taint_reference.tainted_array_indices)
      << "seed " << seed;
  ASSERT_EQ(taint_engine.tainted_sinks, taint_reference.tainted_sinks)
      << "seed " << seed;
  ASSERT_EQ(taint_engine.tainted_call_args, taint_reference.tainted_call_args)
      << "seed " << seed;
  ASSERT_EQ(taint_engine.input_sites, taint_reference.input_sites) << "seed " << seed;

  IntervalOptions engine_options;
  engine_options.mode = DataflowMode::kEngine;
  IntervalOptions reference_options;
  reference_options.mode = DataflowMode::kReference;
  const IntervalReport ai_engine = AnalyzeIntervals(fn, engine_options, &cfg);
  const IntervalReport ai_reference = AnalyzeIntervals(fn, reference_options);
  ASSERT_EQ(ai_engine.array_accesses, ai_reference.array_accesses) << "seed " << seed;
  ASSERT_EQ(ai_engine.proven_in_bounds, ai_reference.proven_in_bounds)
      << "seed " << seed;
  ASSERT_EQ(ai_engine.divisions, ai_reference.divisions) << "seed " << seed;
  ASSERT_EQ(ai_engine.proven_nonzero_divisor, ai_reference.proven_nonzero_divisor)
      << "seed " << seed;
  ASSERT_EQ(ai_engine.findings.size(), ai_reference.findings.size()) << "seed " << seed;
  for (size_t f = 0; f < ai_engine.findings.size(); ++f) {
    ASSERT_EQ(ai_engine.findings[f].kind, ai_reference.findings[f].kind)
        << "seed " << seed;
    ASSERT_EQ(ai_engine.findings[f].line, ai_reference.findings[f].line)
        << "seed " << seed;
  }
}

TEST(EngineEquivalence, RandomizedCfgs) {
  // 240 seeded CFGs of up to 64 blocks, with unreachable blocks, back edges,
  // self-loops, and irreducible regions by construction.
  for (uint64_t seed = 1; seed <= 240; ++seed) {
    support::Rng rng(seed * 0x9E3779B97F4A7C15ull);
    const lang::IrFunction fn = MakeRandomFunction(rng);
    ExpectAllAnalysesAgree(fn, seed);
    if (::testing::Test::HasFatalFailure()) {
      return;  // First failing seed is enough signal.
    }
  }
}

TEST(EngineEquivalence, ModuleFeaturesMatchByteForByte) {
  // DataflowFeatures must produce the exact same FeatureVector in both modes
  // (the testbed's byte-identical-rows guarantee rides on this).
  lang::IrModule module;
  support::Rng rng(20260805);
  for (int i = 0; i < 8; ++i) {
    module.functions.push_back(MakeRandomFunction(rng));
    module.functions.back().name = "fn" + std::to_string(i);
  }
  module.functions.push_back(ZeroBlockFunction());
  const auto engine = DataflowFeatures(module, nullptr, DataflowMode::kEngine);
  const auto reference = DataflowFeatures(module, nullptr, DataflowMode::kReference);
  EXPECT_EQ(engine.values(), reference.values());
}

}  // namespace
}  // namespace dataflow
