// Randomized soundness fuzz for the interval algebras (seeded, deterministic).
//
// Strategy: draw random intervals, draw random concrete values inside them,
// evaluate each operation on the concrete values in __int128 (mathematical
// semantics, no overflow), and assert the abstract result contains the
// concrete result. Runs against both domains:
//   - the sentinel dataflow::Interval ops, read positionally (lo == kMin is
//     -inf, hi == kMax is +inf; the opposite positions are genuine extreme
//     constants), and
//   - the support::ConstantInterval algebra with explicit definedness.
// Plus cross-domain agreement through the conversion bijection, decider
// consistency, and IntervalSet behaviour against a brute-force set model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>

#include "src/dataflow/intervals.h"
#include "src/support/constant_interval.h"
#include "src/support/interval_set.h"
#include "src/support/rng.h"

namespace {

using dataflow::AddI;
using dataflow::DivI;
using dataflow::FromConstantInterval;
using dataflow::Interval;
using dataflow::Join;
using dataflow::Meet;
using dataflow::MulI;
using dataflow::NegI;
using dataflow::RemI;
using dataflow::SubI;
using dataflow::ToConstantInterval;
using dataflow::Widen;
using support::ConstantInterval;
using support::IntervalSet;
using support::Rng;
using support::Tristate;

// A bound value biased toward the places where saturation and sentinel
// handling go wrong: the int64 extremes and their immediate neighbours,
// small values around zero, and random values of varying magnitude.
int64_t RandomBound(Rng& rng) {
  static constexpr int64_t kPool[] = {
      INT64_MIN,     INT64_MIN + 1, INT64_MIN + 2, INT64_MIN / 2,
      -(1 << 20),    -65536,        -100,          -2,
      -1,            0,             1,             2,
      100,           65536,         (1 << 20),     INT64_MAX / 2,
      INT64_MAX - 2, INT64_MAX - 1, INT64_MAX};
  if (rng.NextBool(0.5)) {
    return kPool[rng.NextBelow(sizeof(kPool) / sizeof(kPool[0]))];
  }
  // Random value with a random magnitude (shifting right concentrates mass
  // near zero; raw draws exercise the full width).
  const int shift = static_cast<int>(rng.NextBelow(64));
  return static_cast<int64_t>(rng.NextU64()) >> shift;
}

Interval RandomInterval(Rng& rng) {
  int64_t a = RandomBound(rng);
  int64_t b = RandomBound(rng);
  if (a > b) std::swap(a, b);
  return Interval::Range(a, b);
}

ConstantInterval RandomCi(Rng& rng) {
  ConstantInterval ci;  // Everything.
  ci.min_defined = rng.NextBool(0.85);
  ci.max_defined = rng.NextBool(0.85);
  if (ci.min_defined) ci.min = RandomBound(rng);
  if (ci.max_defined) ci.max = RandomBound(rng);
  if (ci.min_defined && ci.max_defined && ci.min > ci.max) {
    std::swap(ci.min, ci.max);
  }
  return ci;
}

// Uniform draw from [lo, hi] (inclusive), any int64 endpoints.
int64_t SampleBetween(int64_t lo, int64_t hi, Rng& rng) {
  const uint64_t span =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  if (span == UINT64_MAX) return static_cast<int64_t>(rng.NextU64());
  return static_cast<int64_t>(static_cast<uint64_t>(lo) +
                              rng.NextBelow(span + 1));
}

int64_t SampleIn(const Interval& iv, Rng& rng) {
  return SampleBetween(iv.lo, iv.hi, rng);
}

int64_t SampleIn(const ConstantInterval& ci, Rng& rng) {
  return SampleBetween(ci.min_defined ? ci.min : INT64_MIN,
                       ci.max_defined ? ci.max : INT64_MAX, rng);
}

// Positional sentinel containment for mathematically exact values: lo ==
// kMin imposes no lower bound, hi == kMax imposes no upper bound.
bool SentinelContains(const Interval& iv, __int128 v) {
  if (iv.bottom) return false;
  const bool lo_ok =
      iv.lo == Interval::kMin || v >= static_cast<__int128>(iv.lo);
  const bool hi_ok =
      iv.hi == Interval::kMax || v <= static_cast<__int128>(iv.hi);
  return lo_ok && hi_ok;
}

// --- Sentinel-domain arithmetic soundness ------------------------------------

TEST(IntervalFuzz, SentinelArithmeticSound) {
  Rng rng(0xC1A1Eu);
  for (int iter = 0; iter < 20000; ++iter) {
    const Interval a = RandomInterval(rng);
    const Interval b = RandomInterval(rng);
    const __int128 x = SampleIn(a, rng);
    const __int128 y = SampleIn(b, rng);
    ASSERT_TRUE(SentinelContains(AddI(a, b), x + y))
        << "AddI [" << a.lo << "," << a.hi << "] [" << b.lo << "," << b.hi
        << "] x=" << static_cast<int64_t>(x) << " y=" << static_cast<int64_t>(y);
    ASSERT_TRUE(SentinelContains(SubI(a, b), x - y)) << "SubI iter " << iter;
    ASSERT_TRUE(SentinelContains(MulI(a, b), x * y))
        << "MulI [" << a.lo << "," << a.hi << "] [" << b.lo << "," << b.hi
        << "] x=" << static_cast<int64_t>(x) << " y=" << static_cast<int64_t>(y);
    ASSERT_TRUE(SentinelContains(NegI(a), -x)) << "NegI iter " << iter;
    if (y != 0) {
      // DivI/RemI contract: zero is excluded from the divisor's *values*
      // even when the interval straddles it.
      ASSERT_TRUE(SentinelContains(DivI(a, b), x / y))
          << "DivI [" << a.lo << "," << a.hi << "] / [" << b.lo << "," << b.hi
          << "] x=" << static_cast<int64_t>(x)
          << " y=" << static_cast<int64_t>(y);
      ASSERT_TRUE(SentinelContains(RemI(a, b), x % y))
          << "RemI [" << a.lo << "," << a.hi << "] % [" << b.lo << "," << b.hi
          << "] x=" << static_cast<int64_t>(x)
          << " y=" << static_cast<int64_t>(y);
    }
    // Lattice: Join covers both operands; Widen covers old and new.
    ASSERT_TRUE(SentinelContains(Join(a, b), x));
    ASSERT_TRUE(SentinelContains(Join(a, b), y));
    const Interval j = Join(a, b);
    ASSERT_TRUE(SentinelContains(Widen(a, j), x));
    ASSERT_TRUE(SentinelContains(Widen(a, j), y));
    // Meet: a value in both operands is in the meet.
    if (a.Contains(static_cast<int64_t>(x)) &&
        b.Contains(static_cast<int64_t>(x))) {
      ASSERT_TRUE(SentinelContains(Meet(a, b), x));
    }
  }
}

// --- ConstantInterval soundness ----------------------------------------------

TEST(IntervalFuzz, ConstantIntervalArithmeticSound) {
  Rng rng(0xBEEFu);
  for (int iter = 0; iter < 20000; ++iter) {
    const ConstantInterval a = RandomCi(rng);
    const ConstantInterval b = RandomCi(rng);
    const int64_t x = SampleIn(a, rng);
    const int64_t y = SampleIn(b, rng);
    const __int128 wx = x;
    const __int128 wy = y;
    ASSERT_TRUE((a + b).Contains(wx + wy)) << "add iter " << iter;
    ASSERT_TRUE((a - b).Contains(wx - wy)) << "sub iter " << iter;
    ASSERT_TRUE((a * b).Contains(wx * wy))
        << "mul iter " << iter << " x=" << x << " y=" << y;
    ASSERT_TRUE((-a).Contains(-wx)) << "neg iter " << iter;
    if (y != 0) {
      ASSERT_TRUE((a / b).Contains(wx / wy))
          << "div iter " << iter << " x=" << x << " y=" << y;
      ASSERT_TRUE((a % b).Contains(wx % wy))
          << "rem iter " << iter << " x=" << x << " y=" << y;
    }
    ASSERT_TRUE(ConstantInterval::Min(a, b).Contains(std::min(x, y)));
    ASSERT_TRUE(ConstantInterval::Max(a, b).Contains(std::max(x, y)));
    ASSERT_TRUE(
        ConstantInterval::Abs(a).Contains(wx < 0 ? -wx : wx));
    ASSERT_TRUE(ConstantInterval::Union(a, b).Contains(x));
    ASSERT_TRUE(ConstantInterval::Union(a, b).Contains(y));
    if (a.Contains(x) && b.Contains(x)) {
      ASSERT_TRUE(ConstantInterval::Intersection(a, b).Contains(x));
    }
    // Shifts with an in-range amount.
    int64_t s_lo = static_cast<int64_t>(rng.NextBelow(64));
    int64_t s_hi = static_cast<int64_t>(rng.NextBelow(64));
    if (s_lo > s_hi) std::swap(s_lo, s_hi);
    const ConstantInterval s(s_lo, s_hi);
    const int64_t sv = SampleBetween(s_lo, s_hi, rng);
    ASSERT_TRUE(ConstantInterval::Shl(a, s).Contains(
        wx * (static_cast<__int128>(1) << sv)))
        << "shl iter " << iter << " x=" << x << " s=" << sv;
    ASSERT_TRUE(ConstantInterval::Shr(a, s).Contains(
        static_cast<__int128>(x >> sv)))
        << "shr iter " << iter << " x=" << x << " s=" << sv;
  }
}

TEST(IntervalFuzz, DecidersNeverLie) {
  Rng rng(0xDEC1DEu);
  for (int iter = 0; iter < 20000; ++iter) {
    const ConstantInterval a = RandomCi(rng);
    const ConstantInterval b = RandomCi(rng);
    const int64_t x = SampleIn(a, rng);
    const int64_t y = SampleIn(b, rng);
    const auto check = [&](Tristate verdict, bool concrete, const char* op) {
      if (verdict == Tristate::kTrue) {
        ASSERT_TRUE(concrete) << op << " x=" << x << " y=" << y;
      } else if (verdict == Tristate::kFalse) {
        ASSERT_FALSE(concrete) << op << " x=" << x << " y=" << y;
      }
    };
    check(ConstantInterval::ProveLt(a, b), x < y, "lt");
    check(ConstantInterval::ProveLe(a, b), x <= y, "le");
    check(ConstantInterval::ProveGe(a, b), x >= y, "ge");
    check(ConstantInterval::ProveEq(a, b), x == y, "eq");
    check(ConstantInterval::ProveNe(a, b), x != y, "ne");
  }
}

// --- Cross-domain agreement --------------------------------------------------

// For ops whose sentinel implementation is the exact image of the support
// algebra (add/sub/neg/mul and the lattice hull/meet), converting operands,
// applying the ConstantInterval op, and converting back must reproduce the
// sentinel result bit-for-bit. (DivI/RemI intentionally coarsen relative to
// the raw algebra; their agreement is exercised end-to-end by the dataflow
// mode-equality tests instead.)
TEST(IntervalFuzz, CrossDomainBijection) {
  Rng rng(0x5EED5u);
  for (int iter = 0; iter < 20000; ++iter) {
    const Interval a = RandomInterval(rng);
    const Interval b = RandomInterval(rng);
    const ConstantInterval ca = ToConstantInterval(a);
    const ConstantInterval cb = ToConstantInterval(b);
    ASSERT_EQ(FromConstantInterval(ca + cb), AddI(a, b)) << "add " << iter;
    ASSERT_EQ(FromConstantInterval(ca - cb), SubI(a, b))
        << "sub [" << a.lo << "," << a.hi << "] [" << b.lo << "," << b.hi
        << "]";
    ASSERT_EQ(FromConstantInterval(-ca), NegI(a)) << "neg " << iter;
    ASSERT_EQ(FromConstantInterval(ca * cb), MulI(a, b))
        << "mul [" << a.lo << "," << a.hi << "] [" << b.lo << "," << b.hi
        << "]";
    ASSERT_EQ(FromConstantInterval(ConstantInterval::Union(ca, cb)),
              Join(a, b))
        << "join " << iter;
    ASSERT_EQ(FromConstantInterval(ConstantInterval::Intersection(ca, cb)),
              Meet(a, b))
        << "meet " << iter;
    // Roundtrip identity on the sentinel side.
    ASSERT_EQ(FromConstantInterval(ca), a);
    ASSERT_EQ(FromConstantInterval(cb), b);
  }
  // Bottom maps to Empty and back.
  ASSERT_TRUE(ToConstantInterval(Interval::Bottom()).is_empty());
  ASSERT_TRUE(FromConstantInterval(ConstantInterval::Empty()).bottom);
}

// --- IntervalSet vs brute force ----------------------------------------------

// Model window: all comparisons are exhaustive over [-40, 40].
constexpr int64_t kWinLo = -40;
constexpr int64_t kWinHi = 40;

std::set<int64_t> ModelOf(const IntervalSet& s) {
  std::set<int64_t> out;
  for (int64_t v = kWinLo; v <= kWinHi; ++v) {
    if (s.Contains(v)) out.insert(v);
  }
  return out;
}

void CheckInvariants(const IntervalSet& s) {
  const auto& rs = s.ranges();
  for (size_t i = 0; i < rs.size(); ++i) {
    ASSERT_LE(rs[i].lo, rs[i].hi) << "range " << i;
    if (i > 0) {
      // Disjoint AND non-adjacent: a gap of at least one value. Guard the
      // +1 against overflow (previous hi can never be INT64_MAX here, or a
      // following range could not exist).
      ASSERT_LT(rs[i - 1].hi, INT64_MAX);
      ASSERT_LT(rs[i - 1].hi + 1, rs[i].lo) << "ranges " << i - 1 << "," << i;
    }
  }
}

TEST(IntervalFuzz, IntervalSetMatchesBruteForce) {
  Rng rng(0x5E75u);
  for (int round = 0; round < 400; ++round) {
    IntervalSet s;
    std::set<int64_t> model;
    for (int op = 0; op < 10; ++op) {
      int64_t lo = kWinLo + static_cast<int64_t>(rng.NextBelow(kWinHi - kWinLo + 1));
      int64_t hi = kWinLo + static_cast<int64_t>(rng.NextBelow(kWinHi - kWinLo + 1));
      if (lo > hi) std::swap(lo, hi);
      if (rng.NextBool(0.65)) {
        s.Insert(lo, hi);
        for (int64_t v = lo; v <= hi; ++v) model.insert(v);
      } else {
        s.Remove(lo, hi);
        for (int64_t v = lo; v <= hi; ++v) model.erase(v);
      }
      CheckInvariants(s);
      ASSERT_EQ(ModelOf(s), model) << "round " << round << " op " << op;
    }
    // Cardinality is exact for window-bounded sets.
    bool saturated = true;
    ASSERT_EQ(s.Cardinality(&saturated), model.size());
    ASSERT_FALSE(saturated);
    // Hull bounds match the model extremes (window values never sit on the
    // int64 extremes, so both sides are defined).
    const ConstantInterval hull = s.Hull();
    if (model.empty()) {
      ASSERT_TRUE(hull.is_empty());
    } else {
      ASSERT_TRUE(hull.is_bounded());
      ASSERT_EQ(hull.min, *model.begin());
      ASSERT_EQ(hull.max, *model.rbegin());
    }
    // Complement: window membership flips; values outside the window are in
    // the complement; double complement is the identity.
    const IntervalSet comp = s.Complement();
    CheckInvariants(comp);
    for (int64_t v = kWinLo; v <= kWinHi; ++v) {
      ASSERT_EQ(comp.Contains(v), !s.Contains(v)) << v;
    }
    ASSERT_TRUE(comp.Contains(INT64_MIN));
    ASSERT_TRUE(comp.Contains(INT64_MAX));
    ASSERT_EQ(comp.Complement(), s);
    // Complement cardinality: 2^64 - |s|, saturated only for the empty set.
    bool comp_saturated = false;
    const uint64_t comp_card = comp.Cardinality(&comp_saturated);
    if (model.empty() && s.Empty()) {
      ASSERT_TRUE(comp_saturated);
      ASSERT_EQ(comp_card, UINT64_MAX);
    } else {
      ASSERT_FALSE(comp_saturated);
      ASSERT_EQ(comp_card, UINT64_MAX - s.Cardinality() + 1);
    }
    // Binary set algebra against a second random set.
    IntervalSet t;
    std::set<int64_t> tmodel;
    for (int op = 0; op < 6; ++op) {
      int64_t lo = kWinLo + static_cast<int64_t>(rng.NextBelow(kWinHi - kWinLo + 1));
      int64_t hi = kWinLo + static_cast<int64_t>(rng.NextBelow(kWinHi - kWinLo + 1));
      if (lo > hi) std::swap(lo, hi);
      t.Insert(lo, hi);
      for (int64_t v = lo; v <= hi; ++v) tmodel.insert(v);
    }
    IntervalSet uni = s;
    uni.UnionWith(t);
    IntervalSet inter = s;
    inter.IntersectWith(t);
    CheckInvariants(uni);
    CheckInvariants(inter);
    for (int64_t v = kWinLo; v <= kWinHi; ++v) {
      ASSERT_EQ(uni.Contains(v), model.count(v) || tmodel.count(v)) << v;
      ASSERT_EQ(inter.Contains(v), model.count(v) && tmodel.count(v)) << v;
    }
  }
}

// Extreme-endpoint stress: the coalescing, complement and removal paths must
// not overflow near the int64 boundaries.
TEST(IntervalFuzz, IntervalSetExtremeEndpoints) {
  Rng rng(0xFEEDu);
  for (int round = 0; round < 2000; ++round) {
    IntervalSet s;
    const int ops = 1 + static_cast<int>(rng.NextBelow(6));
    for (int op = 0; op < ops; ++op) {
      int64_t lo = RandomBound(rng);
      int64_t hi = RandomBound(rng);
      if (lo > hi) std::swap(lo, hi);
      if (rng.NextBool(0.7)) {
        s.Insert(lo, hi);
        ASSERT_TRUE(s.Contains(lo));
        ASSERT_TRUE(s.Contains(hi));
      } else {
        s.Remove(lo, hi);
        ASSERT_FALSE(s.Contains(lo));
        ASSERT_FALSE(s.Contains(hi));
      }
      CheckInvariants(s);
      ASSERT_EQ(s.Complement().Complement(), s);
    }
    // Membership spot checks against a per-range oracle.
    for (int probe = 0; probe < 8; ++probe) {
      const int64_t v = RandomBound(rng);
      bool expect = false;
      for (const auto& r : s.ranges()) {
        expect |= r.lo <= v && v <= r.hi;
      }
      ASSERT_EQ(s.Contains(v), expect) << "probe " << v;
    }
  }
}

// FromConstantInterval/Hull agree with ConstantInterval containment.
TEST(IntervalFuzz, IntervalSetFromConstantInterval) {
  Rng rng(0xF00Du);
  for (int iter = 0; iter < 5000; ++iter) {
    const ConstantInterval ci = RandomCi(rng);
    const IntervalSet s = IntervalSet::FromConstantInterval(ci);
    for (int probe = 0; probe < 4; ++probe) {
      const int64_t v = RandomBound(rng);
      ASSERT_EQ(s.Contains(v), ci.Contains(v)) << "v=" << v;
    }
    // Hull is the tightest interval: it must contain exactly what the set
    // does at its endpoints (extremes normalise to undefined sides).
    const ConstantInterval hull = s.Hull();
    ASSERT_EQ(hull.Contains(INT64_MIN), s.Contains(INT64_MIN));
    ASSERT_EQ(hull.Contains(INT64_MAX), s.Contains(INT64_MAX));
  }
  ASSERT_TRUE(
      IntervalSet::FromConstantInterval(ConstantInterval::Empty()).Empty());
}

}  // namespace
