// Tests for the ML library: dataset mechanics, learners, evaluation, and
// feature selection, including property-style checks on synthetic data.
#include <gtest/gtest.h>

#include <cmath>

#include "src/ml/dataset.h"
#include "src/ml/eval.h"
#include "src/ml/feature_select.h"
#include "src/ml/linear.h"
#include "src/ml/naive_bayes.h"
#include "src/ml/transforms.h"
#include "src/ml/tree.h"
#include "src/support/rng.h"

namespace ml {
namespace {

// Two Gaussian blobs, linearly separable when `separation` is large.
Dataset MakeBlobs(size_t per_class, double separation, uint64_t seed) {
  Dataset data = Dataset::ForClassification({"f0", "f1", "noise"}, {"neg", "pos"});
  support::Rng rng(seed);
  for (size_t i = 0; i < per_class; ++i) {
    data.AddRow({rng.Normal(0.0, 1.0), rng.Normal(0.0, 1.0), rng.Normal(0.0, 1.0)}, 0.0);
    data.AddRow({rng.Normal(separation, 1.0), rng.Normal(separation, 1.0),
                 rng.Normal(0.0, 1.0)},
                1.0);
  }
  return data;
}

TEST(Dataset, BasicAccessors) {
  Dataset data = Dataset::ForClassification({"a", "b"}, {"x", "y"});
  data.AddRow({1.0, 2.0}, 0.0);
  data.AddRow({3.0, 4.0}, 1.0);
  EXPECT_EQ(data.num_rows(), 2u);
  EXPECT_EQ(data.num_features(), 2u);
  EXPECT_EQ(data.num_classes(), 2u);
  EXPECT_EQ(data.ClassIndex(1), 1);
  const auto column = data.Column(1);
  EXPECT_EQ(std::vector<double>(column.begin(), column.end()),
            (std::vector<double>{2.0, 4.0}));
  EXPECT_EQ(data.Row(1), (std::vector<double>{3.0, 4.0}));
  const auto counts = data.ClassCounts();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
}

TEST(Dataset, StratifiedFoldsPreserveBalance) {
  Dataset data = MakeBlobs(50, 2.0, 3);
  support::Rng rng(1);
  const auto folds = data.StratifiedFolds(5, rng);
  ASSERT_EQ(folds.size(), 5u);
  size_t total = 0;
  for (const auto& fold : folds) {
    size_t pos = 0;
    for (const size_t row : fold) {
      pos += data.ClassIndex(row) == 1 ? 1 : 0;
    }
    // Each fold is ~20 rows, ~half positive.
    EXPECT_NEAR(static_cast<double>(pos) / fold.size(), 0.5, 0.15);
    total += fold.size();
  }
  EXPECT_EQ(total, data.num_rows());
}

TEST(Transforms, Log1pAndStandardize) {
  Dataset data = Dataset::ForRegression({"a"}, "y");
  data.AddRow({0.0}, 0.0);
  data.AddRow({std::exp(1.0) - 1.0}, 0.0);
  ApplyLog1p(data);
  EXPECT_NEAR(data.Feature(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(data.Feature(1, 0), 1.0, 1e-12);
  Standardizer std_;
  std_.Fit(data);
  std_.Apply(data);
  EXPECT_NEAR(data.Feature(0, 0) + data.Feature(1, 0), 0.0, 1e-9);
}

TEST(Transforms, DiscretizerBins) {
  Dataset data = Dataset::ForRegression({"a"}, "y");
  for (int i = 0; i <= 10; ++i) {
    data.AddRow({static_cast<double>(i)}, 0.0);
  }
  Discretizer disc(5);
  disc.Fit(data);
  EXPECT_EQ(disc.BinOf(0, 0.0), 0);
  EXPECT_EQ(disc.BinOf(0, 10.0), 4);
  EXPECT_EQ(disc.BinOf(0, -100.0), 0);   // Clamped.
  EXPECT_EQ(disc.BinOf(0, 100.0), 4);    // Clamped.
}

TEST(LinearSystem, SolvesKnown) {
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem({{2, 1}, {1, 3}}, {5, 10}, x));
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 3.0, 1e-9);
  EXPECT_FALSE(SolveLinearSystem({{1, 1}, {2, 2}}, {1, 2}, x));  // Singular.
}

TEST(LinearRegressor, RecoversPlane) {
  Dataset data = Dataset::ForRegression({"a", "b"}, "y");
  support::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.Uniform(-5, 5);
    const double b = rng.Uniform(-5, 5);
    data.AddRow({a, b}, 2.0 + 3.0 * a - 1.5 * b);
  }
  LinearRegressor model;
  model.Train(data);
  EXPECT_NEAR(model.weights()[0], 2.0, 1e-6);
  EXPECT_NEAR(model.weights()[1], 3.0, 1e-6);
  EXPECT_NEAR(model.weights()[2], -1.5, 1e-6);
  EXPECT_NEAR(model.Predict(std::vector<double>{1.0, 1.0}), 3.5, 1e-6);
  const auto importance = model.FeatureImportance();
  EXPECT_EQ(importance[0].first, "a");  // |3.0| > |-1.5|.
}

TEST(LinearRegressor, RidgeShrinksWeights) {
  Dataset data = Dataset::ForRegression({"a"}, "y");
  support::Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const double a = rng.Uniform(-1, 1);
    data.AddRow({a}, 10.0 * a + rng.Normal(0, 0.1));
  }
  LinearRegressor ols(0.0);
  LinearRegressor ridge(50.0);
  ols.Train(data);
  ridge.Train(data);
  EXPECT_LT(std::fabs(ridge.weights()[1]), std::fabs(ols.weights()[1]));
}

template <typename Model>
double TrainAndScore(Model&& model, const Dataset& data) {
  model.Train(data);
  size_t correct = 0;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    if (model.Predict(data.Row(i)) == data.ClassIndex(i)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / data.num_rows();
}

TEST(Classifiers, AllSeparateCleanBlobs) {
  const Dataset data = MakeBlobs(60, 4.0, 9);
  EXPECT_GT(TrainAndScore(LogisticClassifier(), data), 0.95);
  EXPECT_GT(TrainAndScore(NaiveBayesClassifier(), data), 0.95);
  EXPECT_GT(TrainAndScore(DecisionTreeClassifier(), data), 0.95);
  EXPECT_GT(TrainAndScore(RandomForestClassifier(), data), 0.95);
  EXPECT_GT(TrainAndScore(KnnClassifier(5), data), 0.95);
}

TEST(Classifiers, ProbaSumsToOne) {
  const Dataset data = MakeBlobs(40, 2.0, 11);
  LogisticClassifier logistic;
  logistic.Train(data);
  NaiveBayesClassifier bayes;
  bayes.Train(data);
  RandomForestClassifier forest;
  forest.Train(data);
  for (size_t i = 0; i < 10; ++i) {
    for (const Classifier* model :
         {static_cast<const Classifier*>(&logistic),
          static_cast<const Classifier*>(&bayes),
          static_cast<const Classifier*>(&forest)}) {
      const auto proba = model->PredictProba(data.Row(i));
      double total = 0.0;
      for (const double p : proba) {
        EXPECT_GE(p, 0.0);
        total += p;
      }
      EXPECT_NEAR(total, 1.0, 1e-9);
    }
  }
}

TEST(Classifiers, BatchPredictBitIdenticalToPerRow) {
  // The serving scheduler's batched-equals-sequential guarantee rides on
  // PredictProbaBatch: the forest's columnar override (one walk per tree for
  // the whole batch) must reproduce the per-row loop exactly.
  const Dataset data = MakeBlobs(40, 2.0, 19);
  RandomForestClassifier forest;
  forest.Train(data);
  LogisticClassifier logistic;  // Exercises the default per-row fallback.
  logistic.Train(data);
  std::vector<std::vector<double>> rows;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    const auto row = data.Row(i);
    rows.emplace_back(row.begin(), row.end());
  }
  for (const Classifier* model :
       {static_cast<const Classifier*>(&forest),
        static_cast<const Classifier*>(&logistic)}) {
    const auto batched = model->PredictProbaBatch(rows);
    ASSERT_EQ(batched.size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(batched[i], model->PredictProba(rows[i])) << model->Name() << " row " << i;
    }
  }
}

TEST(Classifiers, SignalFeatureOutranksNoise) {
  const Dataset data = MakeBlobs(80, 3.0, 13);
  LogisticClassifier logistic;
  logistic.Train(data);
  auto importance = logistic.FeatureImportance();
  EXPECT_NE(importance[0].first, "noise");
  DecisionTreeClassifier tree;
  tree.Train(data);
  importance = tree.FeatureImportance();
  EXPECT_NE(importance[0].first, "noise");
}

TEST(Tree, RespectsDepthLimit) {
  TreeOptions options;
  options.max_depth = 2;
  DecisionTreeClassifier tree(options);
  const Dataset data = MakeBlobs(100, 1.0, 17);
  tree.Train(data);
  EXPECT_LE(tree.depth(), 2);
}

TEST(Eval, ConfusionMatrixMetrics) {
  ConfusionMatrix cm(2);
  // 40 TN, 10 FP, 5 FN, 45 TP.
  for (int i = 0; i < 40; ++i) {
    cm.Add(0, 0);
  }
  for (int i = 0; i < 10; ++i) {
    cm.Add(0, 1);
  }
  for (int i = 0; i < 5; ++i) {
    cm.Add(1, 0);
  }
  for (int i = 0; i < 45; ++i) {
    cm.Add(1, 1);
  }
  EXPECT_NEAR(cm.Accuracy(), 0.85, 1e-12);
  EXPECT_NEAR(cm.Precision(1), 45.0 / 55.0, 1e-12);
  EXPECT_NEAR(cm.Recall(1), 0.9, 1e-12);
  EXPECT_GT(cm.MacroF1(), 0.8);
  EXPECT_EQ(cm.Total(), 100u);
}

TEST(Eval, RocAucPerfectAndRandom) {
  const std::vector<double> perfect_scores = {0.1, 0.2, 0.8, 0.9};
  const std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_NEAR(RocAuc(perfect_scores, labels), 1.0, 1e-12);
  const std::vector<double> inverted = {0.9, 0.8, 0.2, 0.1};
  EXPECT_NEAR(RocAuc(inverted, labels), 0.0, 1e-12);
  const std::vector<double> constant = {0.5, 0.5, 0.5, 0.5};
  EXPECT_NEAR(RocAuc(constant, labels), 0.5, 1e-12);
}

TEST(Eval, RegressionMetrics) {
  const std::vector<double> actual = {1, 2, 3, 4};
  const std::vector<double> perfect = actual;
  const RegressionMetrics m = EvaluateRegression(perfect, actual);
  EXPECT_NEAR(m.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(m.rmse, 0.0, 1e-12);
  const std::vector<double> off = {2, 3, 4, 5};
  const RegressionMetrics m2 = EvaluateRegression(off, actual);
  EXPECT_NEAR(m2.mae, 1.0, 1e-12);
}

TEST(Eval, CrossValidationOnSeparableData) {
  const Dataset data = MakeBlobs(60, 4.0, 21);
  const CvMetrics metrics = CrossValidate(
      data, [] { return std::unique_ptr<Classifier>(new LogisticClassifier()); }, 5, 1);
  EXPECT_GT(metrics.accuracy, 0.9);
  EXPECT_GT(metrics.auc, 0.95);
  EXPECT_EQ(metrics.confusion.Total(), data.num_rows());
}

TEST(Eval, CvIsDeterministicGivenSeed) {
  const Dataset data = MakeBlobs(40, 1.0, 23);
  auto factory = [] { return std::unique_ptr<Classifier>(new NaiveBayesClassifier()); };
  const CvMetrics a = CrossValidate(data, factory, 5, 42);
  const CvMetrics b = CrossValidate(data, factory, 5, 42);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_DOUBLE_EQ(a.auc, b.auc);
}

TEST(FeatureSelect, InformationGainFindsSignal) {
  const Dataset data = MakeBlobs(100, 3.0, 29);
  const auto ranking = RankByInformationGain(data);
  ASSERT_EQ(ranking.size(), 3u);
  EXPECT_NE(data.feature_names()[ranking[0].first], "noise");
  EXPECT_GT(ranking[0].second, ranking[2].second);
}

TEST(FeatureSelect, CorrelationAndProjection) {
  const Dataset data = MakeBlobs(100, 3.0, 31);
  const auto ranking = RankByCorrelation(data);
  const Dataset reduced = SelectFeatures(data, ranking, 2);
  EXPECT_EQ(reduced.num_features(), 2u);
  EXPECT_EQ(reduced.num_rows(), data.num_rows());
  // The projected features are the top-ranked ones in order.
  EXPECT_EQ(reduced.feature_names()[0], data.feature_names()[ranking[0].first]);
}


TEST(TreeRegressor, FitsPiecewiseConstant) {
  Dataset data = Dataset::ForRegression({"x"}, "y");
  for (int i = 0; i < 100; ++i) {
    const double x = static_cast<double>(i);
    data.AddRow({x}, x < 50 ? 10.0 : -5.0);
  }
  DecisionTreeRegressor tree;
  tree.Train(data);
  EXPECT_NEAR(tree.Predict(std::vector<double>{10.0}), 10.0, 1e-9);
  EXPECT_NEAR(tree.Predict(std::vector<double>{80.0}), -5.0, 1e-9);
  const auto importance = tree.FeatureImportance();
  EXPECT_EQ(importance[0].first, "x");
}

TEST(ForestRegressor, BeatsMeanOnNonlinearData) {
  Dataset data = Dataset::ForRegression({"a", "b"}, "y");
  support::Rng rng(33);
  for (int i = 0; i < 300; ++i) {
    const double a = rng.Uniform(-3, 3);
    const double b = rng.Uniform(-3, 3);
    data.AddRow({a, b}, a * a + (b > 0 ? 5.0 : 0.0) + rng.Normal(0, 0.2));
  }
  ForestOptions options;
  options.num_trees = 32;
  options.seed = 5;
  const RegressionMetrics metrics = CrossValidateRegression(
      data,
      [&options] {
        return std::unique_ptr<Regressor>(new RandomForestRegressor(options));
      },
      5, 3);
  EXPECT_GT(metrics.r_squared, 0.8);
  // Linear OLS cannot capture a*a well.
  const RegressionMetrics linear = CrossValidateRegression(
      data, [] { return std::unique_ptr<Regressor>(new LinearRegressor()); }, 5, 3);
  EXPECT_GT(metrics.r_squared, linear.r_squared);
}

TEST(Eval, RegressionCvIsDeterministic) {
  Dataset data = Dataset::ForRegression({"x"}, "y");
  support::Rng rng(8);
  for (int i = 0; i < 60; ++i) {
    const double x = rng.Uniform(-1, 1);
    data.AddRow({x}, 2 * x + rng.Normal(0, 0.1));
  }
  auto factory = [] { return std::unique_ptr<Regressor>(new LinearRegressor()); };
  const RegressionMetrics a = CrossValidateRegression(data, factory, 4, 9);
  const RegressionMetrics b = CrossValidateRegression(data, factory, 4, 9);
  EXPECT_DOUBLE_EQ(a.r_squared, b.r_squared);
  EXPECT_GT(a.r_squared, 0.9);
}

}  // namespace
}  // namespace ml
