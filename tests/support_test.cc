// Unit tests for the support layer: statistics, strings, RNG determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "src/support/result.h"
#include "src/support/rng.h"
#include "src/support/stats.h"
#include "src/support/strings.h"

namespace support {
namespace {

TEST(Stats, RunningMatchesBatch) {
  RunningStats rs;
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 10.0};
  for (double x : xs) {
    rs.Add(x);
  }
  EXPECT_DOUBLE_EQ(rs.mean(), Mean(xs));
  EXPECT_NEAR(rs.variance(), Variance(xs), 1e-12);
  EXPECT_EQ(rs.min(), 1.0);
  EXPECT_EQ(rs.max(), 10.0);
  EXPECT_EQ(rs.count(), 5u);
}

TEST(Stats, PearsonPerfectAndNone) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  const std::vector<double> anti = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, anti), -1.0, 1e-12);
  const std::vector<double> flat = {3, 3, 3, 3, 3};
  EXPECT_EQ(PearsonCorrelation(xs, flat), 0.0);
}

TEST(Stats, SpearmanHandlesTiesAndMonotonicity) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {1, 4, 9, 16, 25};  // Monotone, nonlinear.
  EXPECT_NEAR(SpearmanCorrelation(xs, ys), 1.0, 1e-12);
  const std::vector<double> tied = {1, 1, 2, 2, 3};
  const auto ranks = AverageRanks(tied);
  EXPECT_DOUBLE_EQ(ranks[0], 1.5);
  EXPECT_DOUBLE_EQ(ranks[2], 3.5);
  EXPECT_DOUBLE_EQ(ranks[4], 5.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
}

TEST(Stats, FitLineRecoversCoefficients) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 0.5 * i);
  }
  const LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 1e-9);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, FitLogLogDropsNonPositive) {
  const std::vector<double> xs = {10, 100, 1000, -5, 0};
  const std::vector<double> ys = {1, 10, 100, 7, 7};
  const LinearFit fit = FitLogLog(xs, ys);
  EXPECT_EQ(fit.n, 3u);
  EXPECT_NEAR(fit.slope, 1.0, 1e-9);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-9);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(99);
  RunningStats rs;
  for (int i = 0; i < 20000; ++i) {
    rs.Add(rng.Normal(5.0, 2.0));
  }
  EXPECT_NEAR(rs.mean(), 5.0, 0.1);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.1);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(3);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 20000; ++i) {
    small.Add(static_cast<double>(rng.Poisson(3.5)));
    large.Add(static_cast<double>(rng.Poisson(80.0)));
  }
  EXPECT_NEAR(small.mean(), 3.5, 0.1);
  EXPECT_NEAR(large.mean(), 80.0, 1.0);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(5);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[0], 3.0, 0.3);
  EXPECT_NEAR(static_cast<double>(counts[3]) / counts[0], 6.0, 0.6);
}

TEST(Rng, ForkIndependence) {
  Rng parent(1);
  Rng child = parent.Fork();
  // The child stream should differ from the parent's continuation.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (child.NextU64() != parent.NextU64()) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Strings, SplitAndJoin) {
  const auto parts = Split("a,,b,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(Join({"x", "y", "z"}, "::"), "x::y::z");
  const auto words = SplitWhitespace("  hello\t world \n");
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], "hello");
}

TEST(Strings, TrimAndCase) {
  EXPECT_EQ(Trim("  abc\t"), "abc");
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
  EXPECT_EQ(ToUpper("MiXeD"), "MIXED");
  EXPECT_TRUE(StartsWith("prefix.rest", "prefix"));
  EXPECT_TRUE(EndsWith("file.cc", ".cc"));
  EXPECT_FALSE(EndsWith("cc", "file.cc"));
}

TEST(Strings, StrictParsing) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt(" -17 ").value(), -17);
  EXPECT_FALSE(ParseInt("12abc").has_value());
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_NEAR(ParseDouble("3.5e2").value(), 350.0, 1e-12);
  EXPECT_FALSE(ParseDouble("1.2.3").has_value());
}

TEST(Strings, FormatMatchesPrintf) {
  EXPECT_EQ(Format("%d-%s-%0.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(Format("%s", std::string(500, 'a').c_str()).size(), 500u);
}

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> bad = Error(Error::Code::kNotFound, "missing");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code(), Error::Code::kNotFound);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_EQ(bad.error().ToString(), "not_found: missing");
  Status status = Status::Ok();
  EXPECT_TRUE(status.ok());
}

}  // namespace
}  // namespace support
