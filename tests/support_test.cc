// Unit tests for the support layer: statistics, strings, RNG determinism,
// Result arm safety, cooperative deadlines, and deterministic fault injection.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "src/support/deadline.h"
#include "src/support/fault_injection.h"
#include "src/support/result.h"
#include "src/support/rng.h"
#include "src/support/stats.h"
#include "src/support/strings.h"

namespace support {
namespace {

TEST(Stats, RunningMatchesBatch) {
  RunningStats rs;
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 10.0};
  for (double x : xs) {
    rs.Add(x);
  }
  EXPECT_DOUBLE_EQ(rs.mean(), Mean(xs));
  EXPECT_NEAR(rs.variance(), Variance(xs), 1e-12);
  EXPECT_EQ(rs.min(), 1.0);
  EXPECT_EQ(rs.max(), 10.0);
  EXPECT_EQ(rs.count(), 5u);
}

TEST(Stats, PearsonPerfectAndNone) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  const std::vector<double> anti = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, anti), -1.0, 1e-12);
  const std::vector<double> flat = {3, 3, 3, 3, 3};
  EXPECT_EQ(PearsonCorrelation(xs, flat), 0.0);
}

TEST(Stats, SpearmanHandlesTiesAndMonotonicity) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {1, 4, 9, 16, 25};  // Monotone, nonlinear.
  EXPECT_NEAR(SpearmanCorrelation(xs, ys), 1.0, 1e-12);
  const std::vector<double> tied = {1, 1, 2, 2, 3};
  const auto ranks = AverageRanks(tied);
  EXPECT_DOUBLE_EQ(ranks[0], 1.5);
  EXPECT_DOUBLE_EQ(ranks[2], 3.5);
  EXPECT_DOUBLE_EQ(ranks[4], 5.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
}

TEST(Stats, FitLineRecoversCoefficients) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 0.5 * i);
  }
  const LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 1e-9);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, FitLogLogDropsNonPositive) {
  const std::vector<double> xs = {10, 100, 1000, -5, 0};
  const std::vector<double> ys = {1, 10, 100, 7, 7};
  const LinearFit fit = FitLogLog(xs, ys);
  EXPECT_EQ(fit.n, 3u);
  EXPECT_NEAR(fit.slope, 1.0, 1e-9);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-9);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(99);
  RunningStats rs;
  for (int i = 0; i < 20000; ++i) {
    rs.Add(rng.Normal(5.0, 2.0));
  }
  EXPECT_NEAR(rs.mean(), 5.0, 0.1);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.1);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(3);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 20000; ++i) {
    small.Add(static_cast<double>(rng.Poisson(3.5)));
    large.Add(static_cast<double>(rng.Poisson(80.0)));
  }
  EXPECT_NEAR(small.mean(), 3.5, 0.1);
  EXPECT_NEAR(large.mean(), 80.0, 1.0);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(5);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[0], 3.0, 0.3);
  EXPECT_NEAR(static_cast<double>(counts[3]) / counts[0], 6.0, 0.6);
}

TEST(Rng, ForkIndependence) {
  Rng parent(1);
  Rng child = parent.Fork();
  // The child stream should differ from the parent's continuation.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (child.NextU64() != parent.NextU64()) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Strings, SplitAndJoin) {
  const auto parts = Split("a,,b,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(Join({"x", "y", "z"}, "::"), "x::y::z");
  const auto words = SplitWhitespace("  hello\t world \n");
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], "hello");
}

TEST(Strings, TrimAndCase) {
  EXPECT_EQ(Trim("  abc\t"), "abc");
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
  EXPECT_EQ(ToUpper("MiXeD"), "MIXED");
  EXPECT_TRUE(StartsWith("prefix.rest", "prefix"));
  EXPECT_TRUE(EndsWith("file.cc", ".cc"));
  EXPECT_FALSE(EndsWith("cc", "file.cc"));
}

TEST(Strings, StrictParsing) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt(" -17 ").value(), -17);
  EXPECT_FALSE(ParseInt("12abc").has_value());
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_NEAR(ParseDouble("3.5e2").value(), 350.0, 1e-12);
  EXPECT_FALSE(ParseDouble("1.2.3").has_value());
}

TEST(Strings, FormatMatchesPrintf) {
  EXPECT_EQ(Format("%d-%s-%0.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(Format("%s", std::string(500, 'a').c_str()).size(), 500u);
}

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> bad = Error(Error::Code::kNotFound, "missing");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code(), Error::Code::kNotFound);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_EQ(bad.error().ToString(), "not_found: missing");
  Status status = Status::Ok();
  EXPECT_TRUE(status.ok());
}

TEST(Result, WrapPrefixesContextAndKeepsCode) {
  const Error base(Error::Code::kParseError, "bad token at line 3");
  const Error wrapped = base.Wrap("loading checkpoint");
  EXPECT_EQ(wrapped.code(), Error::Code::kParseError);
  EXPECT_EQ(wrapped.message(), "loading checkpoint: bad token at line 3");
  const Error twice = wrapped.Wrap("resume");
  EXPECT_EQ(twice.ToString(),
            "parse_error: resume: loading checkpoint: bad token at line 3");
}

// Wrong-arm access must die loudly in every build mode (under NDEBUG an
// assert would vanish and std::get on the wrong variant alternative is UB),
// and the abort message must carry the held error so the crash is debuggable.
TEST(ResultDeathTest, ValueOnErrorAbortsWithHeldError) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Result<int> bad = Error(Error::Code::kNotFound, "missing file");
  EXPECT_DEATH({ (void)bad.value(); }, "not_found: missing file");
}

TEST(ResultDeathTest, ErrorOnValueAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Result<int> ok = 7;
  EXPECT_DEATH({ (void)ok.error(); }, "result holds a value");
  const Status status = Status::Ok();
  EXPECT_DEATH({ (void)status.error(); }, "status is ok");
}

TEST(Deadline, UnlimitedNeverExpires) {
  Deadline deadline = Deadline::Unlimited();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(deadline.Tick());
  }
  EXPECT_FALSE(deadline.expired());
}

TEST(Deadline, StepBudgetIsExactAndSticky) {
  Deadline deadline = Deadline::Steps(10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(deadline.Tick()) << "tick " << i;
  }
  EXPECT_FALSE(deadline.Tick());
  EXPECT_TRUE(deadline.expired());
  // Sticky: once expired, stays expired (and stops counting).
  EXPECT_FALSE(deadline.Tick());
  EXPECT_EQ(deadline.steps_used(), 11u);
  EXPECT_THROW(deadline.ThrowIfExpired("stage"), DeadlineExceeded);
}

TEST(Deadline, TickOrThrowNamesTheStage) {
  Deadline deadline = Deadline::Steps(1);
  deadline.TickOrThrow("dataflow");
  try {
    deadline.TickOrThrow("dataflow");
    FAIL() << "expected DeadlineExceeded";
  } catch (const DeadlineExceeded& e) {
    EXPECT_NE(std::string(e.what()).find("dataflow"), std::string::npos);
  }
}

TEST(Deadline, WeightedTicksCountEachStep) {
  Deadline deadline = Deadline::Steps(100);
  EXPECT_TRUE(deadline.Tick(60));
  EXPECT_TRUE(deadline.Tick(40));
  EXPECT_FALSE(deadline.Tick(1));
}

TEST(FaultInjector, ParseAcceptsSitesRatesAndSeed) {
  auto parsed = FaultInjector::Parse("parse:0.25,solver:1,seed:42");
  ASSERT_TRUE(parsed.ok());
  const FaultInjector& injector = parsed.value();
  EXPECT_TRUE(injector.enabled());
  EXPECT_DOUBLE_EQ(injector.rate(FaultSite::kParse), 0.25);
  EXPECT_DOUBLE_EQ(injector.rate(FaultSite::kSolver), 1.0);
  EXPECT_DOUBLE_EQ(injector.rate(FaultSite::kDynamic), 0.0);
  EXPECT_EQ(injector.ConfigString(), "parse:0.25,solver:1,seed:42");
}

TEST(FaultInjector, ParseRejectsGarbage) {
  EXPECT_FALSE(FaultInjector::Parse("nosuchsite:0.5").ok());
  EXPECT_FALSE(FaultInjector::Parse("parse").ok());
  EXPECT_FALSE(FaultInjector::Parse("parse:abc").ok());
  EXPECT_FALSE(FaultInjector::Parse("seed:notanumber").ok());
  auto empty = FaultInjector::Parse("");
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty.value().enabled());
  EXPECT_EQ(empty.value().Fingerprint(), 0u);
}

TEST(FaultInjector, VerdictIsPureFunctionOfKeyAndAttempt) {
  auto parsed = FaultInjector::Parse("solver:0.5,seed:7");
  ASSERT_TRUE(parsed.ok());
  const FaultInjector& injector = parsed.value();
  // Same key, same attempt -> same verdict, call after call.
  for (uint64_t key = 0; key < 200; ++key) {
    EXPECT_EQ(injector.ShouldFail(FaultSite::kSolver, key, 0),
              injector.ShouldFail(FaultSite::kSolver, key, 0));
  }
  // Attempt salt re-rolls: some keys that fail at attempt 0 pass at 1.
  int recovered = 0;
  for (uint64_t key = 0; key < 200; ++key) {
    if (injector.ShouldFail(FaultSite::kSolver, key, 0) &&
        !injector.ShouldFail(FaultSite::kSolver, key, 1)) {
      ++recovered;
    }
  }
  EXPECT_GT(recovered, 0);
  // Rate 0.5 over 200 keys: the hit count should be in a generous band.
  int hits = 0;
  for (uint64_t key = 0; key < 200; ++key) {
    hits += injector.ShouldFail(FaultSite::kSolver, key, 0) ? 1 : 0;
  }
  EXPECT_GT(hits, 60);
  EXPECT_LT(hits, 140);
}

TEST(FaultInjector, VerdictsAgreeAcrossThreads) {
  auto parsed = FaultInjector::Parse("dataflow:0.3,seed:11");
  ASSERT_TRUE(parsed.ok());
  const FaultInjector& injector = parsed.value();
  std::vector<uint8_t> serial(512);
  for (uint64_t key = 0; key < serial.size(); ++key) {
    serial[key] = injector.ShouldFail(FaultSite::kDataflow, key, 0) ? 1 : 0;
  }
  std::vector<uint8_t> threaded(serial.size(), 0xff);
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      for (uint64_t key = static_cast<uint64_t>(w); key < threaded.size(); key += 4) {
        threaded[key] = injector.ShouldFail(FaultSite::kDataflow, key, 0) ? 1 : 0;
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(serial, threaded);
}

TEST(FaultInjector, RateOneAlwaysFiresAndCounts) {
  auto parsed = FaultInjector::Parse("cache:1");
  ASSERT_TRUE(parsed.ok());
  const FaultInjector& injector = parsed.value();
  for (uint64_t key = 0; key < 32; ++key) {
    EXPECT_TRUE(injector.ShouldFail(FaultSite::kCache, key, 0));
  }
  EXPECT_EQ(injector.injected(FaultSite::kCache), 32u);
  EXPECT_THROW(injector.MaybeFail(FaultSite::kCache, 1), InjectedFault);
}

TEST(FaultInjector, ScopedAttemptSaltsTheDefaultVerdict) {
  auto parsed = FaultInjector::Parse("parse:0.5,seed:3");
  ASSERT_TRUE(parsed.ok());
  const FaultInjector& injector = parsed.value();
  EXPECT_EQ(FaultInjector::CurrentAttempt(), 0u);
  uint64_t differing = 0;
  for (uint64_t key = 0; key < 200; ++key) {
    const bool at0 = injector.ShouldFail(FaultSite::kParse, key);
    FaultInjector::ScopedAttempt salt(1);
    EXPECT_EQ(FaultInjector::CurrentAttempt(), 1u);
    if (injector.ShouldFail(FaultSite::kParse, key) != at0) {
      ++differing;
    }
  }
  EXPECT_EQ(FaultInjector::CurrentAttempt(), 0u);
  EXPECT_GT(differing, 0u);
}

TEST(FaultInjector, ScopedConfigSwapsAndRestoresGlobal) {
  const std::string before = FaultInjector::Global().ConfigString();
  {
    FaultInjector::ScopedConfig scoped("lower:1");
    EXPECT_TRUE(FaultInjector::Global().enabled());
    EXPECT_DOUBLE_EQ(FaultInjector::Global().rate(FaultSite::kLower), 1.0);
    EXPECT_NE(FaultInjector::Global().Fingerprint(), 0u);
  }
  EXPECT_EQ(FaultInjector::Global().ConfigString(), before);
}

TEST(FaultInjector, FaultKeyMatchesFnvAndMixes) {
  // Same input -> same key; different inputs -> (overwhelmingly) different.
  EXPECT_EQ(FaultKey("abc"), FaultKey("abc"));
  EXPECT_NE(FaultKey("abc"), FaultKey("abd"));
  EXPECT_NE(FaultKeyMix(1, 2), FaultKeyMix(2, 1));
}

}  // namespace
}  // namespace support
