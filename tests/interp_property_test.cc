// Property-based cross-validation between the three execution engines:
// for randomly generated MiniC programs, (a) the concrete interpreter must
// never fault in a way the symbolic executor deems impossible, and (b) any
// fault the interpreter observes must correspond to a reported
// vulnerability site when exploration was exhaustive.
#include <gtest/gtest.h>

#include <map>

#include "src/corpus/codegen.h"
#include "src/dataflow/intervals.h"
#include "src/lang/interp.h"
#include "src/lang/parser.h"
#include "src/metrics/callgraph.h"
#include "src/support/rng.h"
#include "src/symexec/executor.h"

namespace {

class EngineAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineAgreement, InterpreterFaultsImplyReportedVulnSites) {
  support::Rng rng(GetParam() * 7919);
  corpus::AppStyle style;
  style.complexity = rng.NextDouble() * 0.6;
  style.unsafety = rng.NextDouble();
  style.taintiness = rng.NextDouble();
  const std::string source = corpus::GenerateMiniCFile(rng, style, 120);
  auto unit = lang::Parse(source);
  ASSERT_TRUE(unit.ok());
  auto module = lang::LowerToIr(unit.value());
  ASSERT_TRUE(module.ok());

  const metrics::CallGraph graph(module.value());
  const auto roots = graph.Roots();
  ASSERT_FALSE(roots.empty());
  const std::string& entry = roots.front();

  symx::SymExecOptions options;
  options.max_paths = 48;
  options.max_steps_per_path = 2048;
  options.exploit_sample_trials = 32;
  const symx::SymExecResult sym = symx::Explore(module.value(), entry, options);

  // Concrete runs over random small inputs.
  support::Rng input_rng(GetParam());
  int faults_seen = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<int64_t> inputs;
    for (int i = 0; i < 16; ++i) {
      // Mix small values (likely in-bounds) and wild ones.
      inputs.push_back(input_rng.NextBool(0.7)
                           ? static_cast<int64_t>(input_rng.NextBelow(16))
                           : static_cast<int64_t>(input_rng.NextBelow(1 << 14)) - 4096);
    }
    // Entry args: zeros (the executor's havoc covers more; concrete zeros
    // are a subset of what symexec considered).
    const auto trace = lang::Execute(module.value(), entry, {0, 0, 0, 0}, inputs);
    if (trace.outcome == lang::ExecOutcome::kOutOfBounds ||
        trace.outcome == lang::ExecOutcome::kDivisionByZero) {
      ++faults_seen;
    }
  }
  // If exploration was exhaustive (no path/step limit hit) and no fresh-var
  // over-approximation was needed, a concrete fault implies symexec found at
  // least one vulnerability site. (Path limits make symexec incomplete, so
  // only assert when exploration finished.)
  if (faults_seen > 0 && !sym.path_limit_hit && sym.paths_limited == 0) {
    EXPECT_FALSE(sym.vulns.empty())
        << "interpreter faulted " << faults_seen << "x but symexec found no sites\n"
        << source.substr(0, 1500);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreement, ::testing::Range<uint64_t>(1, 14));

// The symbolic executor's path enumeration must agree with brute-force
// concrete enumeration on programs with one small input.
class PathCountAgreement : public ::testing::TestWithParam<int> {};

TEST_P(PathCountAgreement, ReturnValueSetMatchesConcreteSweep) {
  const int k = GetParam();
  std::string source = "int main() {\n  int r = 0;\n  int x = input();\n";
  for (int i = 0; i < k; ++i) {
    source += "  if (x > " + std::to_string(i * 8) + ") { r += " +
              std::to_string(1 << i) + "; }\n";
  }
  source += "  return r;\n}\n";
  auto unit = lang::Parse(source);
  ASSERT_TRUE(unit.ok());
  auto module = lang::LowerToIr(unit.value());
  ASSERT_TRUE(module.ok());

  symx::SymExecOptions options;
  options.max_paths = 256;
  const symx::SymExecResult sym = symx::Explore(module.value(), "main", options);
  // Correlated branches: exactly k+1 feasible paths (x in each band).
  EXPECT_EQ(sym.paths_completed, static_cast<uint64_t>(k + 1));

  // Concrete sweep confirms exactly k+1 distinct return values.
  std::set<int64_t> values;
  for (int64_t x = -4; x <= 8 * k + 4; ++x) {
    const auto trace = lang::Execute(module.value(), "main", {}, {x});
    ASSERT_EQ(trace.outcome, lang::ExecOutcome::kReturned);
    values.insert(trace.return_value);
  }
  EXPECT_EQ(values.size(), static_cast<size_t>(k + 1));
}

INSTANTIATE_TEST_SUITE_P(Depths, PathCountAgreement, ::testing::Values(1, 2, 3, 5, 8));

// --- Concrete traces vs proven interval ranges -------------------------------

// Records, for every block entered during a concrete run, whether the
// register file lies inside the interval analysis's proven per-block entry
// ranges. Violations are collected rather than asserted so the caller can
// discard traces that wrapped (the analysis models non-wrapping integers and
// makes no claim about such runs).
class RangeChecker : public lang::BlockObserver {
 public:
  explicit RangeChecker(
      const std::map<std::string, dataflow::IntervalReport>& reports)
      : reports_(reports) {}

  void OnBlockEntry(const lang::IrFunction& fn, lang::BlockId block,
                    const std::vector<int64_t>& regs) override {
    const auto it = reports_.find(fn.name);
    if (it == reports_.end()) return;
    const auto& per_block = it->second.block_entry_regs;
    if (static_cast<size_t>(block) >= per_block.size()) return;
    const auto& ranges = per_block[static_cast<size_t>(block)];
    if (ranges.empty()) {
      violations.push_back(fn.name + ": entered block " + std::to_string(block) +
                           " the analysis proved unreachable");
      return;
    }
    for (size_t r = 0; r < regs.size() && r < ranges.size(); ++r) {
      if (!ranges[r].Contains(regs[r])) {
        violations.push_back(fn.name + " block " + std::to_string(block) +
                             " r" + std::to_string(r) + "=" +
                             std::to_string(regs[r]) + " outside [" +
                             std::to_string(ranges[r].lo) + "," +
                             std::to_string(ranges[r].hi) + "]");
      }
    }
  }

  const std::map<std::string, dataflow::IntervalReport>& reports_;
  std::vector<std::string> violations;
};

class IntervalTraceCrossCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalTraceCrossCheck, ObservedRegistersLieInProvenRanges) {
  support::Rng rng(GetParam() * 31337);
  corpus::AppStyle style;
  style.complexity = rng.NextDouble() * 0.7;
  style.unsafety = rng.NextDouble();
  style.taintiness = rng.NextDouble();
  const std::string source = corpus::GenerateMiniCFile(rng, style, 140);
  auto unit = lang::Parse(source);
  ASSERT_TRUE(unit.ok());
  auto module = lang::LowerToIr(unit.value());
  ASSERT_TRUE(module.ok());

  std::map<std::string, dataflow::IntervalReport> reports;
  dataflow::IntervalOptions iv_opts;
  iv_opts.record_block_ranges = true;
  for (const auto& fn : module.value().functions) {
    reports.emplace(fn.name, dataflow::AnalyzeIntervals(fn, iv_opts));
  }

  support::Rng input_rng(GetParam());
  int traces_checked = 0;
  for (const auto& fn : module.value().functions) {
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<int64_t> inputs;
      std::vector<int64_t> args;
      for (int i = 0; i < 12; ++i) {
        inputs.push_back(static_cast<int64_t>(input_rng.NextBelow(1 << 16)) -
                         (1 << 15));
      }
      for (size_t i = 0; i < fn.param_regs.size(); ++i) {
        args.push_back(static_cast<int64_t>(input_rng.NextBelow(1 << 16)) -
                       (1 << 15));
      }
      RangeChecker checker(reports);
      lang::InterpOptions opts;
      opts.observer = &checker;
      const auto trace =
          lang::Execute(module.value(), fn.name, args, inputs, opts);
      if (trace.wraps > 0) {
        continue;  // The analysis makes no claim about wrapping runs.
      }
      ++traces_checked;
      EXPECT_TRUE(checker.violations.empty())
          << fn.name << " seed " << GetParam() << " trial " << trial << ":\n"
          << checker.violations.front() << "\n"
          << source.substr(0, 1500);
    }
  }
  // The skip-on-wrap rule must not hollow out the test.
  EXPECT_GT(traces_checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalTraceCrossCheck,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
