// Tests for the CVE database: indexing, aggregation, selection policy,
// serialization round-trip.
#include <gtest/gtest.h>

#include "src/cvedb/cvedb.h"
#include "src/cvss/cwe.h"

namespace cvedb {
namespace {

CveRecord MakeRecord(const std::string& id, const std::string& app, DayStamp day,
                     const char* vector_text, int cwe) {
  CveRecord record;
  record.id = id;
  record.app = app;
  record.published = day;
  record.cwe = cwe;
  auto vector = cvss::ParseVectorString(vector_text);
  EXPECT_TRUE(vector.ok());
  record.vector = vector.value();
  return record;
}

constexpr const char* kCritical = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H";  // 9.8
constexpr const char* kMediumLocal = "CVSS:3.0/AV:L/AC:L/PR:L/UI:N/S:U/C:L/I:L/A:N";  // 4.4
constexpr const char* kInfoLeak = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N";  // 7.5

Database MakeTestDb() {
  Database db;
  db.Add(MakeRecord("CVE-2010-0001", "appA", 365 * 11, kCritical,
                    cvss::kCweStackBufferOverflow));
  db.Add(MakeRecord("CVE-2016-0002", "appA", 365 * 17, kMediumLocal,
                    cvss::kCweNullDeref));
  db.Add(MakeRecord("CVE-2014-0003", "appA", 365 * 15, kInfoLeak,
                    cvss::kCweInfoExposure));
  db.Add(MakeRecord("CVE-2015-0004", "appB", 365 * 16, kMediumLocal,
                    cvss::kCweSqlInjection));
  db.Add(MakeRecord("CVE-2016-0005", "appB", 365 * 17 + 100, kMediumLocal,
                    cvss::kCweXss));
  return db;
}

TEST(Database, ForAppSortedByDate) {
  const Database db = MakeTestDb();
  const auto records = db.ForApp("appA");
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0]->id, "CVE-2010-0001");
  EXPECT_EQ(records[2]->id, "CVE-2016-0002");
  EXPECT_TRUE(db.ForApp("nonexistent").empty());
}

TEST(Database, AppsSorted) {
  const Database db = MakeTestDb();
  const auto apps = db.Apps();
  ASSERT_EQ(apps.size(), 2u);
  EXPECT_EQ(apps[0], "appA");
  EXPECT_EQ(apps[1], "appB");
}

TEST(Database, SummaryAggregates) {
  const Database db = MakeTestDb();
  const AppSummary summary = db.Summarize("appA");
  EXPECT_EQ(summary.total, 3);
  EXPECT_EQ(summary.critical, 1);        // 9.8.
  EXPECT_EQ(summary.high_or_worse, 2);   // 9.8 and 7.5.
  EXPECT_EQ(summary.network_vector, 2);
  EXPECT_EQ(summary.CountCwe(cvss::kCweStackBufferOverflow), 1);
  EXPECT_EQ(summary.CountCwe(cvss::kCweSqlInjection), 0);
  EXPECT_NEAR(summary.HistoryYears(), 6.0, 0.1);
  EXPECT_NEAR(summary.max_score, 9.8, 1e-9);
}

TEST(Database, ConvergingHistorySelection) {
  const Database db = MakeTestDb();
  // appA spans 6 years; appB spans ~1.3 years.
  const auto selected = db.AppsWithConvergingHistory(5.0);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0], "appA");
  EXPECT_EQ(db.AppsWithConvergingHistory(1.0).size(), 2u);
}

TEST(Database, DateRangeQuery) {
  const Database db = MakeTestDb();
  const auto in_2014_2016 = db.InDateRange(365 * 15, 365 * 17);
  ASSERT_EQ(in_2014_2016.size(), 2u);
  EXPECT_EQ(in_2014_2016[0]->id, "CVE-2014-0003");
  EXPECT_EQ(in_2014_2016[1]->id, "CVE-2015-0004");
}

TEST(Database, SerializeRoundTrip) {
  const Database db = MakeTestDb();
  const std::string text = db.Serialize();
  auto restored = Database::Deserialize(text);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().size(), db.size());
  EXPECT_EQ(restored.value().Serialize(), text);
  const AppSummary original = db.Summarize("appA");
  const AppSummary roundtrip = restored.value().Summarize("appA");
  EXPECT_EQ(original.total, roundtrip.total);
  EXPECT_EQ(original.critical, roundtrip.critical);
  EXPECT_NEAR(original.max_score, roundtrip.max_score, 1e-12);
}

TEST(Database, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Database::Deserialize("not|enough|fields\n").ok());
  EXPECT_FALSE(Database::Deserialize("id|app|notanumber|121|" +
                                     std::string(kCritical) + "\n")
                   .ok());
  EXPECT_FALSE(Database::Deserialize("id|app|100|121|CVSS:3.0/AV:N\n").ok());
  // Empty input is a valid empty database.
  EXPECT_TRUE(Database::Deserialize("").ok());
  EXPECT_TRUE(Database::Deserialize("\n\n").ok());
}

TEST(Database, RecordYearComputation) {
  const CveRecord record = MakeRecord("CVE-2014-1234", "x", 365 * 15 + 10, kCritical, 121);
  EXPECT_EQ(record.Year(), 2014);
}

}  // namespace
}  // namespace cvedb
