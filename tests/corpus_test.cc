// Tests for the synthetic ecosystem: determinism, language mix, source
// parseability (property test over seeds), Figure-2 calibration, and the
// survey corpus totals.
#include <gtest/gtest.h>

#include "src/corpus/codegen.h"
#include "src/corpus/ecosystem.h"
#include "src/corpus/survey.h"
#include "src/lang/parser.h"
#include "src/metrics/cloc.h"
#include "src/support/stats.h"

namespace corpus {
namespace {

CorpusOptions SmallOptions() {
  CorpusOptions options;
  options.mature_apps = 41;  // 164/4 keeps the language mix proportional.
  options.immature_apps = 6;
  options.size_scale = 0.02;
  return options;
}

TEST(Ecosystem, DeterministicAcrossInstances) {
  const EcosystemGenerator a(SmallOptions());
  const EcosystemGenerator b(SmallOptions());
  ASSERT_EQ(a.specs().size(), b.specs().size());
  for (size_t i = 0; i < a.specs().size(); ++i) {
    EXPECT_EQ(a.specs()[i].name, b.specs()[i].name);
    EXPECT_EQ(a.specs()[i].vuln_count, b.specs()[i].vuln_count);
    EXPECT_DOUBLE_EQ(a.specs()[i].kloc_nominal, b.specs()[i].kloc_nominal);
  }
  EXPECT_EQ(a.database().Serialize(), b.database().Serialize());
  // Source generation is deterministic and order-independent.
  const auto files_a = a.GenerateSources(a.specs()[0]);
  const auto files_b = b.GenerateSources(b.specs()[0]);
  ASSERT_EQ(files_a.size(), files_b.size());
  EXPECT_EQ(files_a[0].text, files_b[0].text);
}

TEST(Ecosystem, LanguageMixMatchesPaper) {
  CorpusOptions options;
  options.mature_apps = 164;
  options.immature_apps = 0;
  options.size_scale = 0.001;  // Specs only; no sources generated here.
  const EcosystemGenerator eco(options);
  int c = 0;
  int cpp = 0;
  int python = 0;
  int java = 0;
  for (const auto& spec : eco.specs()) {
    switch (spec.language) {
      case metrics::Language::kC:
        ++c;
        break;
      case metrics::Language::kCpp:
        ++cpp;
        break;
      case metrics::Language::kPython:
        ++python;
        break;
      default:
        ++java;
        break;
    }
  }
  EXPECT_EQ(c, 126);
  EXPECT_EQ(cpp, 20);
  EXPECT_EQ(python, 6);
  EXPECT_EQ(java, 12);
}

TEST(Ecosystem, ConvergingHistorySelectionMatchesMaturity) {
  const CorpusOptions options = SmallOptions();
  const EcosystemGenerator eco(options);
  const auto selected = eco.database().AppsWithConvergingHistory(5.0);
  EXPECT_EQ(static_cast<int>(selected.size()), options.mature_apps);
  // Immature apps all have < 5-year spans.
  for (const auto& spec : eco.specs()) {
    if (spec.HistoryYears() < 5.0) {
      bool found = false;
      for (const auto& name : selected) {
        found |= name == spec.name;
      }
      EXPECT_FALSE(found) << spec.name;
    }
  }
}

TEST(Ecosystem, VulnCountsMatchDatabase) {
  const EcosystemGenerator eco(SmallOptions());
  for (const auto& spec : eco.specs()) {
    EXPECT_EQ(eco.database().Summarize(spec.name).total, spec.vuln_count) << spec.name;
  }
}

TEST(Ecosystem, HistorySpansAreExact) {
  const EcosystemGenerator eco(SmallOptions());
  for (const auto& spec : eco.specs()) {
    if (spec.vuln_count < 2) {
      continue;
    }
    const auto summary = eco.database().Summarize(spec.name);
    EXPECT_EQ(summary.first, spec.history_start);
    EXPECT_EQ(summary.last, spec.history_end);
  }
}

TEST(Ecosystem, Figure2CalibrationHolds) {
  // The log–log regression of vuln counts on nominal kLoC must land near the
  // paper's slope 0.39 and R² 24.66% (wide tolerances: 164 samples).
  CorpusOptions options;
  options.mature_apps = 164;
  options.immature_apps = 0;
  const EcosystemGenerator eco(options);
  std::vector<double> kloc;
  std::vector<double> vulns;
  for (const auto& spec : eco.specs()) {
    kloc.push_back(spec.kloc_nominal);
    vulns.push_back(static_cast<double>(spec.vuln_count));
  }
  const support::LinearFit fit = support::FitLogLog(kloc, vulns);
  EXPECT_GT(fit.slope, 0.2);
  EXPECT_LT(fit.slope, 0.6);
  EXPECT_GT(fit.r_squared, 0.12);
  EXPECT_LT(fit.r_squared, 0.40);
}

TEST(Ecosystem, TotalVulnVolumeIsPaperScale) {
  CorpusOptions options;
  options.mature_apps = 164;
  options.immature_apps = 0;
  const EcosystemGenerator eco(options);
  // Paper: 5,975 vulnerabilities over the 164 selected applications. The
  // generator should land within a factor of ~2.
  const auto total = static_cast<long long>(eco.database().size());
  EXPECT_GT(total, 2500);
  EXPECT_LT(total, 13000);
}

TEST(Ecosystem, GeneratedSourcesHitSizeTarget) {
  const EcosystemGenerator eco(SmallOptions());
  const auto& spec = eco.specs()[0];
  const auto files = eco.GenerateSources(spec);
  ASSERT_FALSE(files.empty());
  long long lines = 0;
  for (const auto& file : files) {
    lines += metrics::CountLines(file.text, file.language).total();
  }
  const double target = spec.kloc_target * 1000.0;
  EXPECT_GT(static_cast<double>(lines), 0.7 * target);
  EXPECT_LT(static_cast<double>(lines), 1.8 * target + 600.0);
}

// Property test: generated MiniC must always parse and lower, across many
// seeds and style corners.
class MiniCGenProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MiniCGenProperty, AlwaysParsesAndLowers) {
  support::Rng rng(GetParam());
  AppStyle style;
  style.complexity = rng.NextDouble();
  style.unsafety = rng.NextDouble();
  style.taintiness = rng.NextDouble();
  const std::string source = GenerateMiniCFile(rng, style, 300);
  auto unit = lang::Parse(source);
  ASSERT_TRUE(unit.ok()) << unit.error().ToString() << "\n" << source.substr(0, 2000);
  auto module = lang::LowerToIr(unit.value());
  ASSERT_TRUE(module.ok()) << module.error().ToString() << "\n" << source.substr(0, 2000);
  EXPECT_FALSE(module.value().functions.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiniCGenProperty, ::testing::Range<uint64_t>(1, 80));

TEST(Codegen, StyleShapesCode) {
  support::Rng rng_safe(1);
  support::Rng rng_unsafe(1);
  AppStyle safe;
  safe.unsafety = 0.0;
  safe.taintiness = 0.8;
  AppStyle unsafe_style;
  unsafe_style.unsafety = 1.0;
  unsafe_style.taintiness = 0.8;
  // Same RNG stream, different styles: the unsafe code has fewer guards.
  const std::string safe_src = GenerateMiniCFile(rng_safe, safe, 2000);
  const std::string unsafe_src = GenerateMiniCFile(rng_unsafe, unsafe_style, 2000);
  auto count_occurrences = [](const std::string& text, const std::string& needle) {
    int count = 0;
    size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
      ++count;
      pos += needle.size();
    }
    return count;
  };
  EXPECT_GT(count_occurrences(safe_src, ">= 0 &&"), count_occurrences(unsafe_src, ">= 0 &&"));
}

TEST(Survey, TotalsMatchPaper) {
  const auto papers = GenerateSurveyCorpus();
  int loc = 0;
  int cve = 0;
  int formal = 0;
  for (const auto& paper : papers) {
    switch (paper.method) {
      case EvalMethod::kLinesOfCode:
        ++loc;
        break;
      case EvalMethod::kCveReports:
        ++cve;
        break;
      case EvalMethod::kFormalVerification:
        ++formal;
        break;
    }
  }
  EXPECT_EQ(loc, 384);
  EXPECT_EQ(cve, 116);
  EXPECT_EQ(formal, 31);
  EXPECT_EQ(SurveyVenues().size(), 5u);
  EXPECT_EQ(CountSurvey(papers, "CCS", EvalMethod::kCveReports), 80);
}

}  // namespace
}  // namespace corpus
