// End-to-end tests of the clair pipeline: testbed collection over a small
// synthetic ecosystem, hypothesis training with cross-validation, and the
// developer-facing evaluator (version deltas, library ranking).
#include <gtest/gtest.h>

#include "src/clair/evaluator.h"
#include "src/clair/feature_cache.h"
#include "src/clair/hypothesis.h"
#include "src/clair/pipeline.h"
#include "src/clair/serialize.h"
#include "src/clair/testbed.h"
#include "src/corpus/codegen.h"
#include "src/corpus/ecosystem.h"
#include "src/ml/tree.h"
#include "src/support/fault_injection.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"

namespace clair {
namespace {

// One shared small ecosystem + testbed for the whole suite (expensive).
class ClairTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::CorpusOptions corpus_options;
    corpus_options.mature_apps = 48;
    corpus_options.immature_apps = 8;
    corpus_options.size_scale = 0.01;
    ecosystem_ = new corpus::EcosystemGenerator(corpus_options);
    TestbedOptions testbed_options;
    testbed_options.deep_analysis_max_files = 1;
    testbed_ = new Testbed(*ecosystem_, testbed_options);
    records_ = new std::vector<AppRecord>(testbed_->Collect());
  }

  static void TearDownTestSuite() {
    delete records_;
    delete testbed_;
    delete ecosystem_;
    records_ = nullptr;
    testbed_ = nullptr;
    ecosystem_ = nullptr;
  }

  static corpus::EcosystemGenerator* ecosystem_;
  static Testbed* testbed_;
  static std::vector<AppRecord>* records_;
};

corpus::EcosystemGenerator* ClairTest::ecosystem_ = nullptr;
Testbed* ClairTest::testbed_ = nullptr;
std::vector<AppRecord>* ClairTest::records_ = nullptr;

TEST_F(ClairTest, TestbedSelectsAndExtracts) {
  EXPECT_EQ(records_->size(), 48u);
  for (const auto& record : *records_) {
    EXPECT_GT(record.features.Get("loc.code"), 0.0) << record.name;
    EXPECT_GE(record.labels.total, 2) << record.name;
    EXPECT_GE(record.labels.HistoryYears(), 5.0) << record.name;
  }
  // C-family apps must carry parse-level features.
  int with_mccabe = 0;
  for (const auto& record : *records_) {
    if (record.features.Get("mccabe.total") > 0.0) {
      ++with_mccabe;
    }
  }
  EXPECT_GT(with_mccabe, 30);  // ~44 of 48 are C/C++.
}

TEST_F(ClairTest, HypothesisLabelsAreBinaryAndVaried) {
  std::vector<cvedb::AppSummary> summaries;
  for (const auto& record : *records_) {
    summaries.push_back(record.labels);
  }
  const CorpusStats stats = ComputeCorpusStats(summaries);
  for (const auto& hypothesis : StandardHypotheses()) {
    int positives = 0;
    for (const auto& record : *records_) {
      const int label = hypothesis.label(record.labels, stats);
      ASSERT_GE(label, 0);
      ASSERT_LT(label, static_cast<int>(hypothesis.classes.size()));
      positives += label;
    }
    // No hypothesis should be degenerate on this corpus... except possibly
    // cwe121 on a tiny sample; allow [0, n].
    EXPECT_GE(positives, 0);
    EXPECT_LE(positives, static_cast<int>(records_->size()));
  }
}

TEST_F(ClairTest, PipelineBuildsAlignedDatasets) {
  PipelineOptions options;
  options.cv_folds = 4;
  const TrainingPipeline pipeline(*records_, options);
  EXPECT_FALSE(pipeline.feature_names().empty());
  const ml::Dataset data = pipeline.BuildDataset(StandardHypotheses()[0]);
  EXPECT_EQ(data.num_rows(), records_->size());
  EXPECT_EQ(data.num_features(), pipeline.feature_names().size());
}

TEST_F(ClairTest, CrossValidationBeatsCoinFlipOnRecoverableHypotheses) {
  PipelineOptions options;
  options.cv_folds = 4;
  const TrainingPipeline pipeline(*records_, options);
  // av_network's positive rate is driven by taintiness, which the code
  // reflects via input()/sink density — so an above-chance AUC is expected.
  const Hypothesis* hypothesis = FindHypothesis("av_network");
  ASSERT_NE(hypothesis, nullptr);
  const HypothesisReport report = pipeline.EvaluateHypothesis(*hypothesis);
  EXPECT_EQ(report.per_learner.size(), StandardLearners().size());
  EXPECT_FALSE(report.best_learner.empty());
  EXPECT_GT(report.best.accuracy, 0.0);
  EXPECT_FALSE(report.top_features.empty());
}

TEST_F(ClairTest, TrainedModelPredictsInUnitRange) {
  PipelineOptions options;
  options.cv_folds = 4;
  const TrainingPipeline pipeline(*records_, options);
  const TrainedModel model = pipeline.TrainFinal();
  EXPECT_EQ(model.models().size(), StandardHypotheses().size());
  for (const auto& record : *records_) {
    for (const auto& bundle : model.models()) {
      const double risk = bundle.PredictRisk(record.features);
      EXPECT_GE(risk, 0.0);
      EXPECT_LE(risk, 1.0);
    }
  }
}

TEST_F(ClairTest, EvaluatorComparesVersionsAndRanksLibraries) {
  PipelineOptions options;
  options.cv_folds = 4;
  const TrainingPipeline pipeline(*records_, options);
  const TrainedModel model = pipeline.TrainFinal();
  const SecurityEvaluator evaluator(model, *testbed_);

  // Two synthetic libraries: one generated with maximally safe style, one
  // maximally unsafe — using style extremes far beyond the training spread.
  corpus::AppStyle safe;
  safe.complexity = 0.05;
  safe.unsafety = 0.0;
  safe.taintiness = 0.1;
  corpus::AppStyle unsafe_style;
  unsafe_style.complexity = 0.95;
  unsafe_style.unsafety = 1.0;
  unsafe_style.taintiness = 0.95;
  auto make_files = [](const corpus::AppStyle& style, uint64_t seed) {
    support::Rng rng(seed);
    std::vector<metrics::SourceFile> files;
    metrics::SourceFile file;
    file.path = "lib.c";
    file.language = metrics::Language::kMiniC;
    file.text = corpus::GenerateMiniCFile(rng, style, 600);
    files.push_back(std::move(file));
    return files;
  };
  const auto safe_files = make_files(safe, 101);
  const auto unsafe_files = make_files(unsafe_style, 101);

  const SecurityReport safe_report = evaluator.Evaluate("safelib", safe_files);
  const SecurityReport unsafe_report = evaluator.Evaluate("unsafelib", unsafe_files);
  EXPECT_FALSE(safe_report.predictions.empty());
  EXPECT_FALSE(safe_report.ToString().empty());

  const auto ranked = evaluator.RankLibraries(
      {{"unsafelib", unsafe_files}, {"safelib", safe_files}});
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_LE(ranked[0].overall_risk, ranked[1].overall_risk);

  const VersionDelta delta = evaluator.CompareVersions(safe_files, unsafe_files);
  EXPECT_NEAR(delta.risk_delta,
              unsafe_report.overall_risk - safe_report.overall_risk, 1e-12);
  EXPECT_EQ(delta.by_hypothesis.size(), StandardHypotheses().size());
  EXPECT_FALSE(delta.ToString().empty());
}

TEST_F(ClairTest, DeepAnalysisBudgetCountsAttemptedFiles) {
  // Policy under test (TestbedOptions): the first `deep_analysis_max_files`
  // MiniC files in order consume the budget whether or not they parse.
  metrics::SourceFile broken;
  broken.path = "broken.c";
  broken.language = metrics::Language::kMiniC;
  broken.text = "int main( { this does not parse";
  support::Rng rng(77);
  corpus::AppStyle style;
  metrics::SourceFile good;
  good.path = "good.c";
  good.language = metrics::Language::kMiniC;
  good.text = corpus::GenerateMiniCFile(rng, style, 120);

  TestbedOptions options;
  options.deep_analysis_max_files = 1;
  const Testbed tight(*ecosystem_, options);
  const auto spent_on_failure = tight.ExtractFeatures({broken, good});
  // The unparseable file spent the only slot; nothing was deep-analysed.
  EXPECT_EQ(spent_on_failure.Get("deep.files_attempted"), 1.0);
  EXPECT_EQ(spent_on_failure.Get("deep.files_analyzed"), 0.0);
  EXPECT_FALSE(spent_on_failure.Has("dataflow.instructions"));

  options.deep_analysis_max_files = 2;
  const Testbed wide(*ecosystem_, options);
  const auto with_budget = wide.ExtractFeatures({broken, good});
  EXPECT_EQ(with_budget.Get("deep.files_attempted"), 2.0);
  EXPECT_EQ(with_budget.Get("deep.files_analyzed"), 1.0);

  // Non-MiniC files never consume deep budget.
  metrics::SourceFile python;
  python.path = "tool.py";
  python.language = metrics::Language::kPython;
  python.text = "def f():\n    return 1\n";
  const auto python_only = tight.ExtractFeatures({python});
  EXPECT_EQ(python_only.Get("deep.files_attempted"), 0.0);
  EXPECT_EQ(python_only.Get("deep.files_analyzed"), 0.0);
}

TEST_F(ClairTest, FeatureCacheHitsOnIdenticalInputAndRespectsOptions) {
  support::Rng rng(101);
  corpus::AppStyle style;
  metrics::SourceFile file;
  file.path = "cached.c";
  file.language = metrics::Language::kMiniC;
  file.text = corpus::GenerateMiniCFile(rng, style, 150);
  const std::vector<metrics::SourceFile> files = {file};

  TestbedOptions options;
  options.deep_analysis_max_files = 1;
  const Testbed cached(*ecosystem_, options);
  const auto first = cached.ExtractFeatures(files);
  EXPECT_EQ(cached.cache_stats().hits, 0u);
  EXPECT_EQ(cached.cache_stats().misses, 1u);
  const auto second = cached.ExtractFeatures(files);
  EXPECT_EQ(cached.cache_stats().hits, 1u);
  EXPECT_EQ(cached.cache_stats().entries, 1u);
  EXPECT_TRUE(first.values() == second.values());

  // A content change is a different key.
  auto changed = files;
  changed[0].text += "\nint extra(int a) { return a; }\n";
  (void)cached.ExtractFeatures(changed);
  EXPECT_EQ(cached.cache_stats().misses, 2u);

  // Same sources under different extraction options must not share rows.
  TestbedOptions shallow = options;
  shallow.with_symexec = false;
  const Testbed other(*ecosystem_, shallow);
  const auto without_symexec = other.ExtractFeatures(files);
  EXPECT_FALSE(without_symexec.values() == first.values());

  // Disabled cache: no counters move.
  TestbedOptions off = options;
  off.cache_features = false;
  const Testbed uncached(*ecosystem_, off);
  (void)uncached.ExtractFeatures(files);
  EXPECT_EQ(uncached.cache_stats().hits, 0u);
  EXPECT_EQ(uncached.cache_stats().misses, 0u);
}

TEST_F(ClairTest, FeatureCacheRejectsCorruptRowsAndRecomputes) {
  // Satellite of the robustness layer: a silently mutated cached row must
  // not be served — the lookup-time checksum evicts it and the caller
  // recomputes, with the event visible in integrity_rejects.
  FeatureCache cache;
  metrics::FeatureVector row;
  row.Set("loc.code", 123.0);
  row.Set("mccabe.total", 7.0);
  cache.Insert(42, row);
  metrics::FeatureVector out;
  ASSERT_TRUE(cache.Lookup(42, &out));
  EXPECT_TRUE(out.values() == row.values());

  ASSERT_TRUE(cache.CorruptEntryForTest(42));
  EXPECT_FALSE(cache.Lookup(42, &out));  // Rejected, evicted, counted a miss.
  const auto stats = cache.stats();
  EXPECT_EQ(stats.integrity_rejects, 1u);
  EXPECT_EQ(stats.entries, 0u);
  // Recompute-and-reinsert restores normal service.
  cache.Insert(42, row);
  ASSERT_TRUE(cache.Lookup(42, &out));
  EXPECT_TRUE(out.values() == row.values());

  // An injected cache fault behaves like corruption: reject + recompute.
  cache.Insert(43, row);
  {
    support::FaultInjector::ScopedConfig scoped("cache:1");
    EXPECT_FALSE(cache.Lookup(43, &out));
  }
  EXPECT_EQ(cache.stats().integrity_rejects, 2u);
}

TEST_F(ClairTest, BudgetPolicyHoldsUnderInjectedParseFaults) {
  // Satellite of the robustness layer: a file whose parse is *injected* to
  // fail must behave exactly like an organically unparseable file — it
  // consumes its deep-analysis budget slot, later files keep their
  // position-derived dynamic seeds, and the row completes with robust.*
  // provenance instead of aborting.
  support::Rng rng(909);
  corpus::AppStyle style;
  metrics::SourceFile first;
  first.path = "a_first.c";
  first.language = metrics::Language::kMiniC;
  first.text = corpus::GenerateMiniCFile(rng, style, 100);
  metrics::SourceFile second;
  second.path = "b_second.c";
  second.language = metrics::Language::kMiniC;
  second.text = corpus::GenerateMiniCFile(rng, style, 100);

  TestbedOptions options;
  options.deep_analysis_max_files = 2;
  options.cache_features = false;
  options.stage_retries = 0;  // Deterministic single verdict per file.
  const Testbed testbed(*ecosystem_, options);

  const auto clean = testbed.ExtractFeatures({first, second});
  EXPECT_EQ(clean.Get("deep.files_attempted"), 2.0);
  EXPECT_EQ(clean.Get("deep.files_analyzed"), 2.0);
  EXPECT_FALSE(clean.Has("robust.parse_degraded"));

  // Fail only the first file's parse: key the injection off its digest.
  metrics::FeatureVector faulted;
  {
    support::FaultInjector::ScopedConfig scoped("parse:0.45,seed:5");
    // Find a seed-dependent split where exactly one of the two files fails;
    // scan seeds deterministically until the verdicts differ.
    faulted = testbed.ExtractFeatures({first, second});
    if (faulted.Get("robust.parse_degraded") != 1.0) {
      bool found = false;
      for (int seed = 1; seed <= 64 && !found; ++seed) {
        support::FaultInjector::ScopedConfig rescoped(
            support::Format("parse:0.45,seed:%d", seed));
        faulted = testbed.ExtractFeatures({first, second});
        found = faulted.Get("robust.parse_degraded") == 1.0;
      }
      ASSERT_TRUE(found) << "no seed split the two files in 64 tries";
    }
  }
  // Both slots were spent; only one file was deep-analysed.
  EXPECT_EQ(faulted.Get("deep.files_attempted"), 2.0);
  EXPECT_EQ(faulted.Get("deep.files_analyzed"), 1.0);
  EXPECT_EQ(faulted.Get("robust.parse_failures"), 1.0);
  // The surviving file's dynamic stream is a function of its *position*
  // (attempt index), not of the other file's outcome: the clean run's
  // per-position seeds are the same, so dynamic.runs is identical whenever
  // the second file survived (one entry set, same trial count).
  if (faulted.Has("dynamic.runs")) {
    EXPECT_GT(faulted.Get("dynamic.runs"), 0.0);
  }
}

TEST_F(ClairTest, CachedAndUncachedRowsAreBitIdentical) {
  // Rows served by the feature cache must be byte-for-byte the rows the
  // extractor would have produced — including robust.* provenance.
  support::Rng rng(311);
  corpus::AppStyle style;
  metrics::SourceFile file;
  file.path = "roundtrip.c";
  file.language = metrics::Language::kMiniC;
  file.text = corpus::GenerateMiniCFile(rng, style, 140);
  const std::vector<metrics::SourceFile> files = {file};

  TestbedOptions with_cache;
  with_cache.deep_analysis_max_files = 1;
  const Testbed cached(*ecosystem_, with_cache);
  TestbedOptions no_cache = with_cache;
  no_cache.cache_features = false;
  const Testbed uncached(*ecosystem_, no_cache);

  const auto cold = cached.ExtractFeatures(files);
  const auto warm = cached.ExtractFeatures(files);
  const auto direct = uncached.ExtractFeatures(files);
  EXPECT_EQ(cached.cache_stats().hits, 1u);
  EXPECT_TRUE(cold.values() == warm.values());
  EXPECT_TRUE(cold.values() == direct.values());

  // Same under forced solver faults: the faulted config gets its own cache
  // key (the injector fingerprint is part of it), and the cached faulted
  // row equals the uncached faulted row.
  support::FaultInjector::ScopedConfig scoped("solver:1");
  const auto faulted_cold = cached.ExtractFeatures(files);
  const auto faulted_warm = cached.ExtractFeatures(files);
  const auto faulted_direct = uncached.ExtractFeatures(files);
  EXPECT_TRUE(faulted_cold.values() == faulted_warm.values());
  EXPECT_TRUE(faulted_cold.values() == faulted_direct.values());
  EXPECT_FALSE(faulted_cold.values() == cold.values());
  EXPECT_EQ(faulted_cold.Get("robust.symexec_degraded"), 1.0);
}

// The paper-scale determinism guarantee: the feature matrix, forest
// predictions, and CV scores are bit-identical at 1 worker and at 4.
TEST(ClairDeterminism, ParallelRuntimeIsBitIdenticalToSerial) {
  corpus::CorpusOptions corpus_options;
  corpus_options.mature_apps = 10;
  corpus_options.immature_apps = 2;
  corpus_options.size_scale = 0.01;
  const corpus::EcosystemGenerator ecosystem(corpus_options);

  const auto collect = [&](int threads) {
    TestbedOptions options;
    options.deep_analysis_max_files = 1;
    options.threads = threads;
    const Testbed testbed(ecosystem, options);
    return testbed.Collect();
  };
  const auto serial_records = collect(1);
  const auto parallel_records = collect(4);
  // Byte-identical matrix: the serialized rows are the canonical encoding.
  EXPECT_EQ(SaveRecords(serial_records), SaveRecords(parallel_records));

  // Forest training + prediction and CV under a 1-worker vs 4-worker global
  // pool. Exact equality on every probability and metric.
  const auto evaluate = [&](const std::vector<AppRecord>& records, int threads) {
    support::ThreadPool::SetGlobalThreads(threads);
    PipelineOptions options;
    options.cv_folds = 3;
    const TrainingPipeline pipeline(records, options);
    const Hypothesis& hypothesis = StandardHypotheses()[0];
    ml::Dataset data = pipeline.BuildDataset(hypothesis);
    pipeline.ApplyTransforms(data, nullptr);
    ml::ForestOptions forest_options;
    forest_options.num_trees = 16;
    forest_options.seed = 13;
    ml::RandomForestClassifier forest(forest_options);
    forest.Train(data);
    std::vector<double> outputs;
    for (size_t row = 0; row < data.num_rows(); ++row) {
      const auto proba = forest.PredictProba(data.Row(row));
      outputs.insert(outputs.end(), proba.begin(), proba.end());
    }
    const ml::CvMetrics cv = ml::CrossValidate(
        data,
        [] {
          ml::ForestOptions inner;
          inner.num_trees = 8;
          inner.seed = 5;
          return std::unique_ptr<ml::Classifier>(new ml::RandomForestClassifier(inner));
        },
        3, options.seed);
    outputs.push_back(cv.accuracy);
    outputs.push_back(cv.macro_f1);
    outputs.push_back(cv.auc);
    support::ThreadPool::SetGlobalThreads(0);
    return outputs;
  };
  const auto serial_outputs = evaluate(serial_records, 1);
  const auto parallel_outputs = evaluate(serial_records, 4);
  ASSERT_EQ(serial_outputs.size(), parallel_outputs.size());
  for (size_t i = 0; i < serial_outputs.size(); ++i) {
    EXPECT_EQ(serial_outputs[i], parallel_outputs[i]) << i;
  }
}

TEST(ClairStats, CorpusStatsMedians) {
  cvedb::AppSummary a;
  a.total = 10;
  a.first = 0;
  a.last = 10 * cvedb::kDaysPerYear;
  cvedb::AppSummary b;
  b.total = 30;
  b.first = 0;
  b.last = 5 * cvedb::kDaysPerYear;
  const CorpusStats stats = ComputeCorpusStats({a, b});
  EXPECT_DOUBLE_EQ(stats.median_total_vulns, 20.0);
  EXPECT_DOUBLE_EQ(stats.median_vulns_per_year, 3.5);  // (1 + 6) / 2.
}

TEST(ClairHypotheses, LookupAndMitigations) {
  EXPECT_NE(FindHypothesis("cwe121"), nullptr);
  EXPECT_EQ(FindHypothesis("nonsense"), nullptr);
  for (const auto& hypothesis : StandardHypotheses()) {
    EXPECT_FALSE(hypothesis.mitigation.empty()) << hypothesis.id;
    EXPECT_EQ(hypothesis.classes.size(), 2u);
  }
}

}  // namespace
}  // namespace clair
