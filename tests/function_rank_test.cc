// Function-granular label model and ranking collection: generator profiles
// carry the hazard truth without perturbing the corpus text, CVE attribution
// is deterministic and hazard-concentrated, and CollectFunctionRows produces
// a byte-identical store file at any worker count.
#include "src/clair/function_rank.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/clair/testbed.h"
#include "src/corpus/codegen.h"
#include "src/corpus/ecosystem.h"
#include "src/metrics/extract.h"
#include "src/ml/tree.h"
#include "src/support/rng.h"

namespace {

corpus::EcosystemGenerator SmallEcosystem() {
  corpus::CorpusOptions options;
  options.mature_apps = 12;
  options.immature_apps = 2;
  options.size_scale = 0.01;
  return corpus::EcosystemGenerator(options);
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(FunctionProfiles, ProfilingDoesNotPerturbGeneratedText) {
  corpus::AppStyle style;
  style.unsafety = 0.8;
  style.taintiness = 0.7;
  support::Rng rng_plain(99);
  support::Rng rng_profiled(99);
  const std::string plain = corpus::GenerateMiniCFile(rng_plain, style, 400);
  const auto profiled = corpus::GenerateMiniCFileProfiled(rng_profiled, style, 400);
  EXPECT_EQ(plain, profiled.text);
  EXPECT_FALSE(profiled.functions.empty());
  // Same RNG state afterwards too: the streams stayed in lockstep.
  EXPECT_EQ(rng_plain.NextU64(), rng_profiled.NextU64());
  // An unsafe, tainted style must surface hazard mass somewhere.
  double total_hazard = 0.0;
  int total_lines = 0;
  for (const auto& fn : profiled.functions) {
    EXPECT_FALSE(fn.name.empty());
    EXPECT_GT(fn.lines, 0);
    total_lines += fn.lines;
    total_hazard += fn.HazardWeight();
  }
  EXPECT_GT(total_hazard, 0.0);
  EXPECT_LE(total_lines, static_cast<int>(plain.size()));
}

TEST(FunctionProfiles, ProfiledSourcesMatchUnprofiledByteForByte) {
  const auto ecosystem = SmallEcosystem();
  for (const auto& spec : ecosystem.specs()) {
    const auto plain = ecosystem.GenerateSources(spec);
    const auto profiled = ecosystem.GenerateSourcesProfiled(spec);
    ASSERT_EQ(plain.size(), profiled.size());
    for (size_t i = 0; i < plain.size(); ++i) {
      EXPECT_EQ(plain[i].path, profiled[i].file.path);
      EXPECT_EQ(plain[i].text, profiled[i].file.text);
    }
  }
}

TEST(CveAttribution, DeterministicAndConservesCveCount) {
  const auto ecosystem = SmallEcosystem();
  bool saw_c_family = false;
  for (const auto& spec : ecosystem.specs()) {
    const auto files = ecosystem.GenerateSourcesProfiled(spec);
    const auto first = ecosystem.AttributeCves(spec, files);
    const auto second = ecosystem.AttributeCves(spec, files);
    EXPECT_EQ(first, second);
    if (first.empty()) {
      continue;
    }
    saw_c_family = true;
    int total = 0;
    for (const auto& [key, count] : first) {
      EXPECT_GT(count, 0);
      // Keys name real functions of real files.
      const auto sep = key.find("::");
      ASSERT_NE(sep, std::string::npos);
      total += count;
    }
    EXPECT_EQ(total, spec.vuln_count);
  }
  EXPECT_TRUE(saw_c_family);
}

TEST(CveAttribution, ConcentratesOnHazardousFunctions) {
  // Across the corpus, the mean hazard weight of attributed functions must
  // exceed the mean over all functions — the label model is hazard-driven.
  const auto ecosystem = SmallEcosystem();
  double hazard_attributed = 0.0;
  size_t n_attributed = 0;
  double hazard_all = 0.0;
  size_t n_all = 0;
  for (const auto& spec : ecosystem.specs()) {
    const auto files = ecosystem.GenerateSourcesProfiled(spec);
    const auto attribution = ecosystem.AttributeCves(spec, files);
    for (const auto& entry : files) {
      for (const auto& fn : entry.functions) {
        hazard_all += fn.HazardWeight();
        ++n_all;
        if (attribution.count(entry.file.path + "::" + fn.name) > 0) {
          hazard_attributed += fn.HazardWeight();
          ++n_attributed;
        }
      }
    }
  }
  ASSERT_GT(n_attributed, 0u);
  ASSERT_GT(n_all, n_attributed);
  EXPECT_GT(hazard_attributed / static_cast<double>(n_attributed),
            hazard_all / static_cast<double>(n_all));
}

TEST(CollectFunctionRows, StoreFileByteIdenticalAcrossThreadCounts) {
  const auto ecosystem = SmallEcosystem();
  const std::vector<std::string> feature_names = metrics::FunctionFeatureNames();
  ml::FeatureStoreOptions store_options;
  store_options.chunk_rows = 256;
  std::string bytes_serial;
  clair::FunctionCorpusStats stats_serial;
  {
    const std::string path = TempPath("rows_t1.clfs");
    auto writer = ml::FeatureStoreWriter::Create(path, feature_names,
                                                 clair::FunctionClassNames(),
                                                 store_options);
    ASSERT_TRUE(writer.ok());
    clair::FunctionRankOptions options;
    options.threads = 1;
    options.wave_apps = 3;
    auto stats = clair::CollectFunctionRows(ecosystem, options, *writer.value());
    ASSERT_TRUE(stats.ok());
    stats_serial = stats.value();
    ASSERT_TRUE(writer.value()->Finish().ok());
    bytes_serial = ReadFile(path);
  }
  {
    const std::string path = TempPath("rows_t4.clfs");
    auto writer = ml::FeatureStoreWriter::Create(path, feature_names,
                                                 clair::FunctionClassNames(),
                                                 store_options);
    ASSERT_TRUE(writer.ok());
    clair::FunctionRankOptions options;
    options.threads = 4;
    options.wave_apps = 5;  // Different wave split too: order must not change.
    auto stats = clair::CollectFunctionRows(ecosystem, options, *writer.value());
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().functions, stats_serial.functions);
    EXPECT_EQ(stats.value().positives, stats_serial.positives);
    EXPECT_EQ(stats.value().apps, stats_serial.apps);
    ASSERT_TRUE(writer.value()->Finish().ok());
    EXPECT_EQ(ReadFile(path), bytes_serial);
  }
  EXPECT_GT(stats_serial.functions, 0u);
  EXPECT_GT(stats_serial.positives, 0u);
  EXPECT_LT(stats_serial.positives, stats_serial.functions);
}

TEST(CollectFunctionRows, TestbedWrapperEndToEndRanking) {
  // The whole loop: testbed streams rows -> store -> streamed forest ->
  // top-K ranking against the latent truth. Ranking must beat the random
  // baseline (positives/n) at K=50 — the features recover the hazard.
  const auto ecosystem = SmallEcosystem();
  const std::string path = TempPath("rank_e2e.clfs");
  auto writer = ml::FeatureStoreWriter::Create(
      path, metrics::FunctionFeatureNames(), clair::FunctionClassNames());
  ASSERT_TRUE(writer.ok());
  clair::TestbedOptions testbed_options;
  testbed_options.threads = 2;
  const clair::Testbed testbed(ecosystem, testbed_options);
  auto stats = testbed.CollectFunctionRows(*writer.value());
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(writer.value()->Finish().ok());

  auto store = ml::FeatureStore::Open(path);
  ASSERT_TRUE(store.ok());
  ASSERT_EQ(store.value().num_rows(), stats.value().functions);
  ASSERT_TRUE(store.value().has_codes());

  ml::ForestOptions forest_options;
  forest_options.num_trees = 16;
  forest_options.seed = 2017;
  ml::RandomForestClassifier forest(forest_options);
  forest.TrainStreaming(store.value());

  const std::vector<size_t> ks = {10, 50};
  const auto ranking = clair::EvaluateRanking(forest, store.value(), ks);
  ASSERT_EQ(ranking.size(), 2u);
  const double base_rate = static_cast<double>(stats.value().positives) /
                           static_cast<double>(stats.value().functions);
  EXPECT_GT(ranking[1].precision, base_rate);
  EXPECT_GT(ranking[0].hits, 0u);
}

}  // namespace
