// Tests for the analysis-as-a-service scheduler (scheduler.h) and the
// extraction stage DAG it runs on (stage_graph.h).
//
// The acceptance contract under test:
//   - a batched result is bit-identical to an independent synchronous sweep
//     at any worker count, with batching on or off;
//   - duplicate in-flight requests coalesce into one extraction and all
//     receive identical rows;
//   - priorities order service under a saturated queue;
//   - cancellation unwinds exactly the not-yet-started stages (all of them
//     for a queued request, just predict for a mid-wave one);
//   - under injected faults every request still resolves with a row or a
//     taxonomized failure — never silently dropped.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/clair/evaluator.h"
#include "src/clair/hypothesis.h"
#include "src/clair/pipeline.h"
#include "src/clair/scheduler.h"
#include "src/clair/stage_graph.h"
#include "src/clair/testbed.h"
#include "src/corpus/codegen.h"
#include "src/corpus/ecosystem.h"
#include "src/support/fault_injection.h"
#include "src/support/rng.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"

namespace clair {
namespace {

// --- StageGraph / StageTracker unit tests (no scheduler needed). ---

TEST(StageGraph, ExtractionOrderAndEdges) {
  const StageGraph& graph = StageGraph::Extraction();
  ASSERT_EQ(graph.Order().size(), static_cast<size_t>(kStageKindCount));
  EXPECT_EQ(graph.Order().front(), StageKind::kParse);
  EXPECT_EQ(graph.Order().back(), StageKind::kPredict);
  // Hard spine: parse → lower, features → predict. Soft fan-in from the
  // analyses into features.
  bool lower_hard = false;
  bool features_soft = false;
  for (const StageEdge& edge : graph.edges()) {
    if (edge.from == StageKind::kParse && edge.to == StageKind::kLower) {
      lower_hard = edge.hard;
    }
    if (edge.from == StageKind::kDataflow && edge.to == StageKind::kFeatures) {
      features_soft = !edge.hard;
    }
  }
  EXPECT_TRUE(lower_hard);
  EXPECT_TRUE(features_soft);
}

TEST(StageTracker, WalksInOrderAndSettles) {
  StageTracker tracker(StageGraph::Extraction());
  std::vector<StageKind> ran;
  for (StageKind stage = tracker.NextRunnable(); stage != StageKind::kCount;
       stage = tracker.NextRunnable()) {
    tracker.MarkRunning(stage);
    tracker.MarkDone(stage);
    ran.push_back(stage);
  }
  EXPECT_EQ(ran, StageGraph::Extraction().Order());
  EXPECT_TRUE(tracker.Settled());
}

TEST(StageTracker, HardFailureSkipsDependentsButSoftDegrades) {
  StageTracker tracker(StageGraph::Extraction());
  EXPECT_EQ(tracker.NextRunnable(), StageKind::kParse);
  tracker.MarkFailed(StageKind::kParse);
  // Parse failed: the hard chain through lower skips every deep analysis,
  // but feature assembly only has soft deps on them — it still runs (a
  // failed parse still yields a degraded row; never-drop-a-row), and
  // predict's hard dep on features is then satisfied.
  EXPECT_EQ(tracker.NextRunnable(), StageKind::kFeatures);
  EXPECT_EQ(tracker.state(StageKind::kLower), StageState::kSkipped);
  EXPECT_EQ(tracker.state(StageKind::kDataflow), StageState::kSkipped);
  EXPECT_EQ(tracker.state(StageKind::kDynamic), StageState::kSkipped);
  tracker.MarkDone(StageKind::kFeatures);
  EXPECT_EQ(tracker.NextRunnable(), StageKind::kPredict);
  tracker.MarkDone(StageKind::kPredict);
  EXPECT_EQ(tracker.NextRunnable(), StageKind::kCount);
  EXPECT_TRUE(tracker.Settled());

  StageTracker soft(StageGraph::Extraction());
  soft.MarkDone(StageKind::kParse);
  soft.MarkDone(StageKind::kLower);
  soft.MarkFailed(StageKind::kDataflow);  // Soft edge into features.
  soft.MarkDone(StageKind::kIntervals);
  soft.MarkDone(StageKind::kSymexec);
  soft.MarkDone(StageKind::kDynamic);
  EXPECT_EQ(soft.NextRunnable(), StageKind::kFeatures);
}

TEST(StageTracker, DisableAndCancelPending) {
  StageTracker tracker(StageGraph::Extraction());
  tracker.Disable(StageKind::kPredict);
  tracker.MarkDone(StageKind::kParse);
  // Seven remaining stages minus the disabled one: six unwound.
  EXPECT_EQ(tracker.CancelPending(), 6);
  EXPECT_EQ(tracker.state(StageKind::kLower), StageState::kCancelled);
  EXPECT_EQ(tracker.state(StageKind::kPredict), StageState::kDisabled);
  EXPECT_TRUE(tracker.Settled());
}

// --- Scheduler tests over a shared trained fixture. ---

class SchedulerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::CorpusOptions corpus_options;
    corpus_options.mature_apps = 24;
    corpus_options.immature_apps = 4;
    corpus_options.size_scale = 0.01;
    ecosystem_ = new corpus::EcosystemGenerator(corpus_options);
    TestbedOptions train_options;
    train_options.deep_analysis_max_files = 1;
    Testbed train_testbed(*ecosystem_, train_options);
    PipelineOptions pipeline_options;
    pipeline_options.cv_folds = 4;
    const TrainingPipeline pipeline(train_testbed.Collect(), pipeline_options);
    model_ = new TrainedModel(pipeline.TrainFinal());
  }

  static void TearDownTestSuite() {
    delete model_;
    delete ecosystem_;
    support::ThreadPool::SetGlobalThreads(0);
  }

  // Serving testbeds run cache-free by default so duplicate requests pay
  // full extraction unless the scheduler coalesces them.
  static TestbedOptions ServeOptions(bool cache = false) {
    TestbedOptions options;
    options.deep_analysis_max_files = 1;
    options.cache_features = cache;
    return options;
  }

  static std::vector<metrics::SourceFile> Subject(uint64_t seed, int lines = 60) {
    support::Rng rng(seed);
    corpus::AppStyle style;
    metrics::SourceFile file;
    file.path = support::Format("subject_%llu.c",
                                static_cast<unsigned long long>(seed));
    file.language = metrics::Language::kMiniC;
    file.text = corpus::GenerateMiniCFile(rng, style, lines);
    return {file};
  }

  struct Reference {
    metrics::FeatureVector features;
    std::vector<double> risks;
    double overall = 0.0;
  };

  // The synchronous sweep the determinism contract compares against.
  static Reference Sync(const Testbed& testbed,
                        const std::vector<metrics::SourceFile>& files) {
    Reference ref;
    ref.features = testbed.ExtractFeatures(files);
    double weighted = 0.0;
    double weight_total = 0.0;
    for (const auto& hypothesis : StandardHypotheses()) {
      const HypothesisModel* bundle = model_->ForHypothesis(hypothesis.id);
      if (bundle == nullptr) {
        continue;
      }
      const double risk = bundle->PredictRisk(ref.features);
      const double weight = HypothesisSeverityWeight(hypothesis.id);
      ref.risks.push_back(risk);
      weighted += weight * risk;
      weight_total += weight;
    }
    ref.overall = weight_total > 0.0 ? weighted / weight_total : 0.0;
    return ref;
  }

  static corpus::EcosystemGenerator* ecosystem_;
  static TrainedModel* model_;
};

corpus::EcosystemGenerator* SchedulerTest::ecosystem_ = nullptr;
TrainedModel* SchedulerTest::model_ = nullptr;

TEST_F(SchedulerTest, BatchedMatchesSequentialAcrossThreadCounts) {
  const std::vector<uint64_t> seeds = {1, 2, 3, 1, 2, 1};  // With duplicates.
  const int hardware = support::ResolveThreadCount(0);
  std::vector<std::vector<double>> per_thread_overall;
  for (const int threads : {1, 4, hardware}) {
    SCOPED_TRACE(threads);
    support::ThreadPool::SetGlobalThreads(threads);
    const Testbed reference_testbed(*ecosystem_, ServeOptions());
    const Testbed serve_testbed(*ecosystem_, ServeOptions());
    for (const bool batching : {true, false}) {
      SCOPED_TRACE(batching ? "batched" : "unbatched");
      SchedulerOptions options;
      options.batching = batching;
      Scheduler scheduler(serve_testbed, *model_, options);
      std::vector<uint64_t> ids;
      for (const uint64_t seed : seeds) {
        ScoreRequest request;
        request.subject = support::Format(
            "s%llu", static_cast<unsigned long long>(seed));
        request.files = Subject(seed);
        ids.push_back(scheduler.Submit(request));
      }
      std::vector<double> overall;
      for (size_t i = 0; i < ids.size(); ++i) {
        const ScoreResult result = scheduler.Wait(ids[i]);
        ASSERT_EQ(result.state, RequestState::kDone);
        const Reference ref = Sync(reference_testbed, Subject(seeds[i]));
        // Bit-identical: exact equality on every feature and probability.
        EXPECT_EQ(result.features.values(), ref.features.values());
        EXPECT_EQ(result.hypothesis_risks, ref.risks);
        EXPECT_EQ(result.overall_risk, ref.overall);
        overall.push_back(result.overall_risk);
      }
      if (batching) {
        per_thread_overall.push_back(overall);
      }
    }
  }
  // And across worker counts: the same request stream scores identically.
  for (size_t i = 1; i < per_thread_overall.size(); ++i) {
    EXPECT_EQ(per_thread_overall[i], per_thread_overall[0]);
  }
  support::ThreadPool::SetGlobalThreads(0);
}

TEST_F(SchedulerTest, CoalescingExtractsOnceAndReturnsIdenticalRows) {
  // Cache ON: the single leader extraction is the only miss; followers are
  // credited as coalesced fills, not lookups.
  const Testbed testbed(*ecosystem_, ServeOptions(/*cache=*/true));
  SchedulerOptions options;
  options.start_paused = true;  // One full wave: all six coalesce together.
  Scheduler scheduler(testbed, *model_, options);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    ScoreRequest request;
    request.subject = "dup";
    request.files = Subject(77);
    ids.push_back(scheduler.Submit(request));
  }
  scheduler.Drain();
  std::vector<ScoreResult> results;
  for (const uint64_t id : ids) {
    results.push_back(scheduler.Wait(id));
  }
  int coalesced_flags = 0;
  for (const auto& result : results) {
    ASSERT_EQ(result.state, RequestState::kDone);
    EXPECT_EQ(result.features.values(), results[0].features.values());
    EXPECT_EQ(result.overall_risk, results[0].overall_risk);
    coalesced_flags += result.coalesced ? 1 : 0;
  }
  EXPECT_EQ(coalesced_flags, 5);  // Everyone but the leader.
  EXPECT_EQ(scheduler.stats().coalesced, 5u);
  const FeatureCacheStats cache = testbed.cache_stats();
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_EQ(cache.coalesced_fills, 5u);
}

TEST_F(SchedulerTest, PriorityOrdersServiceUnderSaturatedQueue) {
  const Testbed testbed(*ecosystem_, ServeOptions());
  SchedulerOptions options;
  options.start_paused = true;  // Build the whole queue before any wave.
  options.max_batch = 1;        // Waves of one: completion order == plan order.
  Scheduler scheduler(testbed, *model_, options);
  struct Submitted {
    uint64_t id;
    int priority;
  };
  std::vector<Submitted> submitted;
  const std::vector<int> priorities = {0, 2, 1, 2, 0, 1};
  for (size_t i = 0; i < priorities.size(); ++i) {
    ScoreRequest request;
    request.subject = support::Format("p%zu", i);
    request.files = Subject(200 + i);
    request.priority = priorities[i];
    submitted.push_back({scheduler.Submit(request), priorities[i]});
  }
  scheduler.Drain();
  // Expected service order: priority descending, FIFO within a priority —
  // ids 2,4 (prio 2), then 3,6 (prio 1), then 1,5 (prio 0).
  std::vector<uint64_t> expected_order;
  for (const int priority : {2, 1, 0}) {
    for (const auto& entry : submitted) {
      if (entry.priority == priority) {
        expected_order.push_back(entry.id);
      }
    }
  }
  std::vector<uint64_t> actual_order(expected_order.size());
  for (const auto& entry : submitted) {
    const ScoreResult result = scheduler.Wait(entry.id);
    ASSERT_EQ(result.state, RequestState::kDone);
    ASSERT_GE(result.completion_index, 1u);
    ASSERT_LE(result.completion_index, actual_order.size());
    actual_order[result.completion_index - 1] = entry.id;
  }
  EXPECT_EQ(actual_order, expected_order);
}

TEST_F(SchedulerTest, CancelQueuedUnwindsAllStages) {
  const Testbed testbed(*ecosystem_, ServeOptions());
  SchedulerOptions options;
  options.start_paused = true;
  Scheduler scheduler(testbed, *model_, options);
  ScoreRequest request;
  request.subject = "doomed";
  request.files = Subject(300);
  const uint64_t id = scheduler.Submit(request);
  EXPECT_TRUE(scheduler.Cancel(id));
  EXPECT_FALSE(scheduler.Cancel(id));  // Already resolved.
  const ScoreResult result = scheduler.Wait(id);
  EXPECT_EQ(result.state, RequestState::kCancelled);
  EXPECT_EQ(result.stages_unwound, kStageKindCount);  // Nothing had started.
  EXPECT_TRUE(result.features.empty());
  EXPECT_EQ(scheduler.stats().cancelled, 1u);
  scheduler.Drain();
}

TEST_F(SchedulerTest, CancelMidDagUnwindsExactlyPredict) {
  const Testbed testbed(*ecosystem_, ServeOptions());
  Scheduler* live = nullptr;
  uint64_t victim = 0;
  SchedulerOptions options;
  options.start_paused = true;
  // The hook fires after the wave's extractions land and before its batched
  // predict — the last cancellation point.
  options.on_wave_extracted = [&](uint64_t) {
    if (live != nullptr && victim != 0) {
      EXPECT_TRUE(live->Cancel(victim));
    }
  };
  Scheduler scheduler(testbed, *model_, options);
  live = &scheduler;
  ScoreRequest keep;
  keep.subject = "kept";
  keep.files = Subject(301);
  const uint64_t kept = scheduler.Submit(keep);
  ScoreRequest doomed;
  doomed.subject = "doomed";
  doomed.files = Subject(302);
  victim = scheduler.Submit(doomed);
  scheduler.Drain();
  const ScoreResult cancelled = scheduler.Wait(victim);
  EXPECT_EQ(cancelled.state, RequestState::kCancelled);
  // Extraction had completed; only the predict stage was still pending.
  EXPECT_EQ(cancelled.stages_unwound, 1);
  EXPECT_TRUE(cancelled.hypothesis_risks.empty());
  // Its wave-mate is unaffected and fully scored.
  const ScoreResult survivor = scheduler.Wait(kept);
  EXPECT_EQ(survivor.state, RequestState::kDone);
  EXPECT_FALSE(survivor.hypothesis_risks.empty());
  // Once predict starts there is no cancellation point left.
  EXPECT_FALSE(scheduler.Cancel(kept));
}

TEST_F(SchedulerTest, ExtractOnlyResolvesWithoutPredict) {
  const Testbed testbed(*ecosystem_, ServeOptions());
  Scheduler scheduler(testbed, *model_, {});
  ScoreRequest request;
  request.subject = "probe";
  request.files = Subject(303);
  request.extract_only = true;
  const uint64_t id = scheduler.Submit(request);
  const ScoreResult result = scheduler.Wait(id);
  EXPECT_EQ(result.state, RequestState::kDone);
  EXPECT_FALSE(result.features.empty());
  EXPECT_TRUE(result.hypothesis_risks.empty());
  EXPECT_EQ(result.overall_risk, 0.0);
}

TEST_F(SchedulerTest, WaitOnUnknownIdFailsWithTaxonomizedError) {
  const Testbed testbed(*ecosystem_, ServeOptions());
  Scheduler scheduler(testbed, *model_, {});
  const ScoreResult result = scheduler.Wait(999);
  EXPECT_EQ(result.state, RequestState::kFailed);
  EXPECT_FALSE(result.error.empty());
}

TEST_F(SchedulerTest, DestructorDrainsEveryOutstandingRequest) {
  const Testbed testbed(*ecosystem_, ServeOptions());
  std::vector<uint64_t> ids;
  {
    SchedulerOptions options;
    options.start_paused = true;  // Everything still queued at destruction.
    Scheduler scheduler(testbed, *model_, options);
    for (int i = 0; i < 5; ++i) {
      ScoreRequest request;
      request.subject = support::Format("drain%d", i);
      request.files = Subject(400 + i);
      ids.push_back(scheduler.Submit(request));
    }
    // Destructor must resolve all five before returning.
  }
  // The scheduler is gone; if the drain had dropped a request the process
  // would have deadlocked or crashed above. Re-serve to prove the testbed
  // is still healthy after a full drain-at-destruction cycle.
  Scheduler scheduler(testbed, *model_, {});
  ScoreRequest request;
  request.subject = "after";
  request.files = Subject(405);
  const ScoreResult result = scheduler.Wait(scheduler.Submit(request));
  EXPECT_EQ(result.state, RequestState::kDone);
}

// Chaos: with a deterministic fault forced on, every request still resolves
// with a row whose degraded features byte-match the synchronous sweep under
// the same injection — batching must not change what degradation produces.
TEST_F(SchedulerTest, ChaosEveryRequestResolvesBitIdenticalToSync) {
  for (const char* config : {"dataflow:1", "parse:1"}) {
    SCOPED_TRACE(config);
    support::FaultInjector::ScopedConfig scoped(config);
    const Testbed reference_testbed(*ecosystem_, ServeOptions());
    const Testbed serve_testbed(*ecosystem_, ServeOptions());
    SchedulerOptions options;
    options.start_paused = true;  // One wave: batched predict under faults.
    Scheduler scheduler(serve_testbed, *model_, options);
    const std::vector<uint64_t> seeds = {11, 12, 11, 13};
    std::vector<uint64_t> ids;
    for (const uint64_t seed : seeds) {
      ScoreRequest request;
      request.subject = support::Format(
          "chaos%llu", static_cast<unsigned long long>(seed));
      request.files = Subject(seed);
      ids.push_back(scheduler.Submit(request));
    }
    scheduler.Drain();
    for (size_t i = 0; i < ids.size(); ++i) {
      const ScoreResult result = scheduler.Wait(ids[i]);
      // Never dropped: resolved with a (degraded) row, not an error.
      ASSERT_EQ(result.state, RequestState::kDone);
      const Reference ref = Sync(reference_testbed, Subject(seeds[i]));
      EXPECT_EQ(result.features.values(), ref.features.values());
      EXPECT_EQ(result.hypothesis_risks, ref.risks);
      EXPECT_EQ(result.overall_risk, ref.overall);
    }
    const SchedulerStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed + stats.failed + stats.cancelled,
              static_cast<uint64_t>(seeds.size()));
  }
}

}  // namespace
}  // namespace clair
