// Function-granular incremental extraction: content addressing, diff
// planning, version history, warm re-scores that only re-run changed
// functions, checkpoint/version splicing, and store splicing — every path
// pinned bit-identical to the from-scratch module-level battery.
#include "src/clair/incremental.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/clair/feature_cache.h"
#include "src/clair/function_rank.h"
#include "src/clair/run_report.h"
#include "src/clair/serialize.h"
#include "src/clair/testbed.h"
#include "src/corpus/ecosystem.h"
#include "src/corpus/history.h"
#include "src/metrics/extract.h"
#include "src/ml/feature_store.h"
#include "src/support/fault_injection.h"

namespace {

corpus::EcosystemGenerator SmallEcosystem() {
  corpus::CorpusOptions options;
  options.mature_apps = 12;
  options.immature_apps = 2;
  options.size_scale = 0.01;
  return corpus::EcosystemGenerator(options);
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

metrics::SourceFile MiniC(const std::string& path, const std::string& text) {
  metrics::SourceFile file;
  file.path = path;
  file.language = metrics::Language::kMiniC;
  file.text = text;
  return file;
}

// First app (sorted selection order) with >= `min_files` MiniC files whose
// first MiniC file holds >= `min_fns` functions — the shape the warm
// re-score assertions need.
const corpus::AppSpec* FindRichSpec(const corpus::EcosystemGenerator& eco,
                                    size_t min_files, size_t min_fns) {
  for (const auto& name : eco.database().AppsWithConvergingHistory(5.0)) {
    const corpus::AppSpec* spec = eco.FindSpec(name);
    if (spec == nullptr) {
      continue;
    }
    const auto files = eco.GenerateSources(*spec);
    size_t minic = 0;
    size_t first_fns = 0;
    for (const auto& file : files) {
      if (file.language != metrics::Language::kMiniC) {
        continue;
      }
      if (minic == 0) {
        first_fns = clair::IndexFunctions(file).functions.size();
      }
      ++minic;
    }
    if (minic >= min_files && first_fns >= min_fns) {
      return spec;
    }
  }
  return nullptr;
}

// --- Content addressing ------------------------------------------------------

TEST(TokenHashing, CommentAndWhitespaceInsensitive) {
  const auto base = MiniC("a.c", "int f(int x) { return x + 1; }\n"
                                 "int g() { return f(2); }\n");
  const auto noisy = MiniC("a.c",
                           "// a leading comment\n"
                           "int f(int x)   {\n"
                           "  /* block */ return x + 1;\n"
                           "}\n\n"
                           "int g() { return f(2); }  // trailing\n");
  const auto a = clair::IndexFunctions(base);
  const auto b = clair::IndexFunctions(noisy);
  ASSERT_TRUE(a.parsed);
  ASSERT_TRUE(b.parsed);
  EXPECT_EQ(a.file_token_hash, b.file_token_hash);
  ASSERT_EQ(a.functions.size(), 2u);
  ASSERT_EQ(b.functions.size(), 2u);
  for (size_t i = 0; i < a.functions.size(); ++i) {
    EXPECT_EQ(a.functions[i].name, b.functions[i].name);
    EXPECT_EQ(a.functions[i].token_hash, b.functions[i].token_hash);
  }
}

TEST(TokenHashing, AnyTokenChangePerturbs) {
  const auto base = MiniC("a.c", "int f(int x) { return x + 1; }\n"
                                 "int g() { return f(2); }\n");
  const auto edited = MiniC("a.c", "int f(int x) { return x + 2; }\n"
                                   "int g() { return f(2); }\n");
  const auto a = clair::IndexFunctions(base);
  const auto b = clair::IndexFunctions(edited);
  EXPECT_NE(a.file_token_hash, b.file_token_hash);
  ASSERT_EQ(b.functions.size(), 2u);
  EXPECT_NE(a.functions[0].token_hash, b.functions[0].token_hash);
  // The untouched sibling keeps its key.
  EXPECT_EQ(a.functions[1].token_hash, b.functions[1].token_hash);
  // Preamble (outside every function) is unchanged in both.
  EXPECT_EQ(a.preamble_hash, b.preamble_hash);
}

// --- Diff planner ------------------------------------------------------------

TEST(DiffPlanner, ClassifiesAddModifyDelete) {
  const std::vector<metrics::SourceFile> old_files = {
      MiniC("a.c", "int keep() { return 1; }\nint gone() { return 2; }\n"),
      MiniC("b.c", "int touch() { return 3; }\n")};
  const std::vector<metrics::SourceFile> new_files = {
      MiniC("a.c", "int keep() { return 1; }\nint fresh() { return 9; }\n"),
      MiniC("b.c", "int touch() { return 30; }\n")};
  const auto plan = clair::PlanFunctionDiff(old_files, new_files);
  EXPECT_EQ(plan.unchanged, 1u);
  EXPECT_EQ(plan.modified, 1u);
  EXPECT_EQ(plan.added, 1u);
  EXPECT_EQ(plan.deleted, 1u);
  EXPECT_EQ(plan.Changed(), 3u);
  std::map<std::pair<std::string, std::string>, clair::FunctionChange> got;
  for (const auto& delta : plan.deltas) {
    got[{delta.path, delta.function}] = delta.change;
  }
  EXPECT_EQ(got[std::make_pair(std::string("a.c"), std::string("keep"))], clair::FunctionChange::kUnchanged);
  EXPECT_EQ(got[std::make_pair(std::string("a.c"), std::string("gone"))], clair::FunctionChange::kDeleted);
  EXPECT_EQ(got[std::make_pair(std::string("a.c"), std::string("fresh"))], clair::FunctionChange::kAdded);
  EXPECT_EQ(got[std::make_pair(std::string("b.c"), std::string("touch"))], clair::FunctionChange::kModified);
  const std::set<std::string> changed(plan.changed_files.begin(),
                                      plan.changed_files.end());
  EXPECT_EQ(changed, (std::set<std::string>{"a.c", "b.c"}));
}

TEST(DiffPlanner, RecoversCommitTouchedSet) {
  const auto eco = SmallEcosystem();
  bool checked = false;
  for (const auto& name : eco.database().AppsWithConvergingHistory(5.0)) {
    const corpus::AppSpec* spec = eco.FindSpec(name);
    if (spec == nullptr) {
      continue;
    }
    const auto history = corpus::VersionHistory::ForApp(eco, *spec);
    if (history.commits().empty()) {
      continue;
    }
    const size_t head = history.head_version();
    const auto plan = clair::PlanFunctionDiff(history.Materialize(head - 1),
                                              history.Materialize(head));
    // The last commit's touched set is the planner's ground truth: exactly
    // those functions differ between the adjacent versions.
    std::set<std::pair<std::string, std::string>> expected;
    for (const auto& edit : history.commits().back().edits) {
      expected.insert({edit.path, edit.function});
    }
    std::set<std::pair<std::string, std::string>> modified;
    for (const auto& delta : plan.deltas) {
      if (delta.change == clair::FunctionChange::kModified) {
        modified.insert({delta.path, delta.function});
      }
    }
    EXPECT_EQ(modified, expected) << name;
    EXPECT_EQ(plan.added, 0u) << name;
    EXPECT_EQ(plan.deleted, 0u) << name;
    checked = true;
  }
  EXPECT_TRUE(checked);
}

// --- Version history ---------------------------------------------------------

TEST(VersionHistory, HeadIsByteIdenticalToGenerateSources) {
  const auto eco = SmallEcosystem();
  size_t apps_with_commits = 0;
  for (const auto& name : eco.database().AppsWithConvergingHistory(5.0)) {
    const corpus::AppSpec* spec = eco.FindSpec(name);
    if (spec == nullptr) {
      continue;
    }
    const auto history = corpus::VersionHistory::ForApp(eco, *spec);
    const auto head = history.Materialize(history.head_version());
    const auto direct = eco.GenerateSources(*spec);
    ASSERT_EQ(head.size(), direct.size()) << name;
    for (size_t i = 0; i < head.size(); ++i) {
      EXPECT_EQ(head[i].path, direct[i].path);
      EXPECT_EQ(head[i].text, direct[i].text) << name << " " << head[i].path;
    }
    if (!history.commits().empty()) {
      ++apps_with_commits;
      // Earlier versions still parse: marker edits are valid declarations.
      for (const auto& file : history.Materialize(0)) {
        if (file.language == metrics::Language::kMiniC) {
          EXPECT_TRUE(clair::IndexFunctions(file).parsed)
              << name << " " << file.path;
        }
      }
    }
  }
  EXPECT_GT(apps_with_commits, 0u);
}

TEST(VersionHistory, ProcessMetricsFoldTheAppliedPrefix) {
  const auto eco = SmallEcosystem();
  const corpus::AppSpec* spec = FindRichSpec(eco, 1, 1);
  ASSERT_NE(spec, nullptr);
  const auto history = corpus::VersionHistory::ForApp(eco, *spec);
  ASSERT_FALSE(history.commits().empty());
  const auto at_head = history.ProcessMetricsAt(history.head_version());
  double touches = 0.0;
  for (const auto& [path, fns] : at_head) {
    for (const auto& [fn, pm] : fns) {
      EXPECT_GE(pm.age_days, 0.0) << path << "::" << fn;
      EXPECT_GE(pm.days_since_change, 0.0);
      EXPECT_GE(pm.touches, 0.0);
      touches += pm.touches;
    }
  }
  // Every commit edit lands on some function's counter.
  size_t edits = 0;
  for (const auto& commit : history.commits()) {
    edits += commit.edits.size();
  }
  EXPECT_EQ(static_cast<size_t>(touches), edits);
  // At version 0 nothing has been touched yet.
  double initial_touches = 0.0;
  for (const auto& [path, fns] : history.ProcessMetricsAt(0)) {
    for (const auto& [fn, pm] : fns) {
      initial_touches += pm.touches;
    }
  }
  EXPECT_EQ(initial_touches, 0.0);
}

TEST(FunctionRows, ProcFeaturesArePopulated) {
  const auto eco = SmallEcosystem();
  const corpus::AppSpec* spec = FindRichSpec(eco, 1, 1);
  ASSERT_NE(spec, nullptr);
  const auto& names = metrics::FunctionFeatureNames();
  const auto index_of = [&](const std::string& name) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) {
        return i;
      }
    }
    return names.size();
  };
  const size_t touches_col = index_of("proc.touches");
  const size_t age_col = index_of("proc.age_days");
  ASSERT_LT(touches_col, names.size());
  ASSERT_LT(age_col, names.size());
  const auto rows = clair::ExtractAppFunctionRows(eco, *spec);
  ASSERT_FALSE(rows.empty());
  double total_touches = 0.0;
  double total_age = 0.0;
  for (const auto& row : rows) {
    ASSERT_EQ(row.values.size(), names.size());
    total_touches += row.values[touches_col];
    total_age += row.values[age_col];
  }
  EXPECT_GT(total_touches, 0.0);
  EXPECT_GT(total_age, 0.0);
}

// --- Cache capacity policy ---------------------------------------------------

TEST(Caches, FeatureCacheEvictsOldestFirst) {
  clair::FeatureCache cache(2);
  metrics::FeatureVector fv;
  fv.Set("x", 1.0);
  cache.Insert(1, fv);
  cache.Insert(2, fv);
  cache.Insert(3, fv);  // Evicts key 1 (FIFO).
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  metrics::FeatureVector out;
  EXPECT_FALSE(cache.Lookup(1, &out));
  EXPECT_TRUE(cache.Lookup(2, &out));
  EXPECT_TRUE(cache.Lookup(3, &out));
}

TEST(Caches, RowCacheByteCapBoundsResidency) {
  clair::RowCache cache(1 << 18, 4096);
  const std::vector<double> row(16, 1.5);
  for (uint64_t key = 1; key <= 200; ++key) {
    cache.Insert(key, row);
  }
  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 4096u);
  // Deterministic FIFO: the newest key survives, the oldest is gone.
  std::vector<double> out;
  EXPECT_TRUE(cache.Lookup(200, &out));
  EXPECT_EQ(out, row);
  EXPECT_FALSE(cache.Lookup(1, &out));
}

TEST(RunReportIo, IncrementalCountersRoundTrip) {
  clair::RunReport report;
  report.cache_evictions = 17;
  report.checkpoint_stale_records = 5;
  report.rows_from_cache = 2;
  const auto loaded = clair::LoadRunReport(clair::SaveRunReport(report));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().cache_evictions, 17u);
  EXPECT_EQ(loaded.value().checkpoint_stale_records, 5u);
  const std::string text = report.ToString();
  EXPECT_NE(text.find("cache_evictions=17"), std::string::npos);
  EXPECT_NE(text.find("checkpoint_stale=5"), std::string::npos);

  clair::RunReport merged;
  merged.Merge(report);
  merged.Merge(report);
  EXPECT_EQ(merged.cache_evictions, 34u);
  EXPECT_EQ(merged.checkpoint_stale_records, 10u);
}

// --- The warm re-score acceptance surface ------------------------------------

TEST(Incremental, WarmRescoreRecomputesOnlyChangedFunctions) {
  const auto eco = SmallEcosystem();
  const corpus::AppSpec* spec = FindRichSpec(eco, 2, 2);
  ASSERT_NE(spec, nullptr);
  const auto files = eco.GenerateSources(*spec);

  clair::TestbedOptions options;
  const clair::Testbed testbed(eco, options);
  const auto cold = testbed.ExtractFeatures(files);
  const auto before = testbed.incremental_stats();

  // A one-function edit: the canonical "developer touched one function".
  auto edited = files;
  size_t edited_file = edited.size();
  std::string edited_fn;
  for (size_t i = 0; i < edited.size(); ++i) {
    if (edited[i].language == metrics::Language::kMiniC) {
      const auto index = clair::IndexFunctions(edited[i]);
      ASSERT_GE(index.functions.size(), 2u);
      edited_fn = index.functions.front().name;
      edited_file = i;
      break;
    }
  }
  ASSERT_LT(edited_file, edited.size());
  ASSERT_TRUE(
      corpus::ApplyFunctionEdit(edited[edited_file], edited_fn, "int hotfix_probe = 41;"));

  const auto warm = testbed.ExtractFeatures(edited);
  const auto after = testbed.incremental_stats();

  // Deep analyses re-ran only for the changed set: one parse, one shallow
  // file row, one dataflow battery, one interval battery, one dynamic file.
  EXPECT_EQ(after.files_parsed - before.files_parsed, 1u);
  EXPECT_EQ(after.file_rows_computed - before.file_rows_computed, 1u);
  EXPECT_EQ(after.fn_dataflow_computed - before.fn_dataflow_computed, 1u);
  EXPECT_EQ(after.fn_intervals_computed - before.fn_intervals_computed, 1u);
  EXPECT_EQ(after.dynamic_files_computed - before.dynamic_files_computed, 1u);
  // Everything untouched came from the warm tiers.
  EXPECT_EQ(after.file_rows_reused - before.file_rows_reused, files.size() - 1);
  EXPECT_GE(after.parse_reused - before.parse_reused, 1u);
  EXPECT_GE(after.fn_dataflow_reused - before.fn_dataflow_reused, 1u);
  EXPECT_GE(after.fn_intervals_reused - before.fn_intervals_reused, 1u);
  EXPECT_GE(after.dynamic_files_reused - before.dynamic_files_reused, 1u);

  // The warm result is bit-identical to a from-scratch extraction of the
  // edited tree — granular path (fresh caches) and module-level path alike.
  clair::Testbed scratch(eco, options);
  EXPECT_EQ(warm.values(), scratch.ExtractFeatures(edited).values());
  clair::TestbedOptions module_options = options;
  module_options.cache_functions = false;
  clair::Testbed module_path(eco, module_options);
  EXPECT_EQ(warm.values(), module_path.ExtractFeatures(edited).values());
  EXPECT_EQ(cold.values(), module_path.ExtractFeatures(files).values());
  // And the edit actually moved something.
  EXPECT_NE(warm.values(), cold.values());
}

TEST(Incremental, CollectBitIdenticalAcrossThreadsAndPaths) {
  const auto eco = SmallEcosystem();

  clair::TestbedOptions module_options;
  module_options.cache_functions = false;
  module_options.threads = 1;
  const std::string golden =
      clair::SaveRecords(clair::Testbed(eco, module_options).Collect());

  for (int threads : {1, 4, 0}) {
    clair::TestbedOptions options;
    options.threads = threads;
    const clair::Testbed testbed(eco, options);
    EXPECT_EQ(clair::SaveRecords(testbed.Collect()), golden)
        << "threads=" << threads;
    const auto stats = testbed.incremental_stats();
    EXPECT_GT(stats.fn_dataflow_computed, 0u);
  }
}

TEST(Incremental, ArmedFaultsFallBackToModulePath) {
  const auto eco = SmallEcosystem();
  const corpus::AppSpec* spec = FindRichSpec(eco, 1, 1);
  ASSERT_NE(spec, nullptr);
  const auto files = eco.GenerateSources(*spec);

  support::FaultInjector::ScopedConfig scoped("dataflow:0.5,seed:7");
  clair::TestbedOptions granular_options;
  clair::TestbedOptions module_options;
  module_options.cache_functions = false;
  const clair::Testbed granular(eco, granular_options);
  const clair::Testbed module_path(eco, module_options);
  const auto a = granular.ExtractFeatures(files);
  const auto b = module_path.ExtractFeatures(files);
  // With a fault site armed the granular testbed runs the module-level path
  // verbatim, so injection semantics (and bytes) are identical.
  EXPECT_EQ(a.values(), b.values());
  // The fallback really did bypass the granular tiers.
  const auto stats = granular.incremental_stats();
  EXPECT_EQ(stats.fn_dataflow_computed + stats.fn_dataflow_reused, 0u);
}

// --- Checkpoint splicing across corpus versions ------------------------------

TEST(CheckpointSplice, StaleRecordsAreReextractedAndSuperseded) {
  const auto eco = SmallEcosystem();
  const std::string ckpt = TempPath("incremental_splice.ckpt");
  std::remove(ckpt.c_str());

  // Sweep 1: the corpus one commit before HEAD, checkpointed.
  clair::TestbedOptions lagged_options;
  lagged_options.version_lag = 1;
  lagged_options.checkpoint_path = ckpt;
  const auto lagged = clair::Testbed(eco, lagged_options).Collect();
  ASSERT_FALSE(lagged.empty());

  // Scratch HEAD sweep: the splice target.
  const auto fresh = clair::Testbed(eco, {}).Collect();
  const std::string golden = clair::SaveRecords(fresh);
  ASSERT_NE(clair::SaveRecords(lagged), golden);

  // Sweep 2: HEAD over the lagged checkpoint. Records whose source digest
  // drifted are re-extracted (warm) and appended last-wins; the result is
  // bit-identical to the scratch HEAD sweep.
  clair::TestbedOptions head_options;
  head_options.checkpoint_path = ckpt;
  const clair::Testbed head_testbed(eco, head_options);
  EXPECT_EQ(clair::SaveRecords(head_testbed.Collect()), golden);
  const auto head_report = head_testbed.run_report();
  EXPECT_GT(head_report.checkpoint_stale_records, 0u);

  // Sweep 3: resume again — every record now matches HEAD digests, so the
  // whole corpus resumes from the checkpoint (last-wins supersede).
  const clair::Testbed resumed_testbed(eco, head_options);
  EXPECT_EQ(clair::SaveRecords(resumed_testbed.Collect()), golden);
  const auto resumed_report = resumed_testbed.run_report();
  EXPECT_EQ(resumed_report.checkpoint_stale_records, 0u);
  EXPECT_EQ(resumed_report.apps_from_checkpoint, fresh.size());
}

TEST(CheckpointSplice, TornTailIsDroppedNotTrusted) {
  const auto eco = SmallEcosystem();
  const std::string ckpt = TempPath("incremental_torn.ckpt");
  std::remove(ckpt.c_str());

  clair::TestbedOptions lagged_options;
  lagged_options.version_lag = 1;
  lagged_options.checkpoint_path = ckpt;
  clair::Testbed(eco, lagged_options).Collect();

  // A kill mid-append: the checkpoint loses the tail of its final block.
  std::string bytes = ReadFile(ckpt);
  ASSERT_GT(bytes.size(), 64u);
  bytes.resize(bytes.size() - 37);
  WriteFile(ckpt, bytes);

  clair::TestbedOptions head_options;
  head_options.checkpoint_path = ckpt;
  const clair::Testbed testbed(eco, head_options);
  const auto records = testbed.Collect();
  EXPECT_EQ(clair::SaveRecords(records),
            clair::SaveRecords(clair::Testbed(eco, {}).Collect()));
  EXPECT_GT(testbed.run_report().checkpoint_dropped_blocks, 0u);
}

// --- Feature-store splicing --------------------------------------------------

TEST(StoreSplice, ByteIdenticalToScratchCollection) {
  const auto eco = SmallEcosystem();
  const std::string lagged_path = TempPath("incremental_store_lag.fst");
  const std::string scratch_path = TempPath("incremental_store_head.fst");
  const std::string spliced_path = TempPath("incremental_store_spliced.fst");

  clair::FunctionRankOptions lagged_options;
  lagged_options.version_lag = 1;
  {
    auto writer = ml::FeatureStoreWriter::Create(
        lagged_path, metrics::FunctionFeatureNames(), clair::FunctionClassNames());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(clair::CollectFunctionRows(eco, lagged_options, *writer.value()).ok());
    ASSERT_TRUE(writer.value()->Finish().ok());
  }
  clair::FunctionRankOptions head_options;
  {
    auto writer = ml::FeatureStoreWriter::Create(
        scratch_path, metrics::FunctionFeatureNames(), clair::FunctionClassNames());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(clair::CollectFunctionRows(eco, head_options, *writer.value()).ok());
    ASSERT_TRUE(writer.value()->Finish().ok());
  }

  auto previous = ml::FeatureStore::Open(lagged_path);
  ASSERT_TRUE(previous.ok());
  clair::FunctionCorpusStats stats;
  {
    auto writer = ml::FeatureStoreWriter::Create(
        spliced_path, metrics::FunctionFeatureNames(), clair::FunctionClassNames());
    ASSERT_TRUE(writer.ok());
    auto result = clair::SpliceFunctionRows(eco, head_options, previous.value(),
                                            /*previous_version_lag=*/1,
                                            *writer.value());
    ASSERT_TRUE(result.ok()) << result.error().ToString();
    stats = result.value();
    ASSERT_TRUE(writer.value()->Finish().ok());
  }

  // The spliced store is the scratch store, byte for byte — and most rows
  // rode over from the previous version instead of being re-extracted.
  EXPECT_EQ(ReadFile(spliced_path), ReadFile(scratch_path));
  EXPECT_GT(stats.rows_reused, 0u);
  EXPECT_GT(stats.rows_recomputed, 0u);
  EXPECT_GT(stats.rows_reused, stats.rows_recomputed);
  EXPECT_EQ(stats.rows_reused + stats.rows_recomputed, stats.functions);
}

// --- Eviction accounting through RunReport -----------------------------------

TEST(Incremental, EvictionsSurfaceInRunReport) {
  const auto eco = SmallEcosystem();
  const corpus::AppSpec* spec = FindRichSpec(eco, 1, 1);
  ASSERT_NE(spec, nullptr);
  const auto files = eco.GenerateSources(*spec);

  clair::TestbedOptions tight;
  tight.function_cache_max_bytes = 512;  // Far below one app's payload rows.
  const clair::Testbed testbed(eco, tight);
  const auto squeezed = testbed.ExtractFeatures(files);
  EXPECT_GT(testbed.run_report().cache_evictions, 0u);
  EXPECT_GT(testbed.function_cache_stats().evictions, 0u);

  // Capacity pressure affects performance only, never bytes.
  const clair::Testbed roomy(eco, {});
  EXPECT_EQ(squeezed.values(), roomy.ExtractFeatures(files).values());
}

}  // namespace
