// Fault-injection matrix for the robustness layer (ctest label: robust).
//
// The acceptance contract under test:
//   - with any single injection site forced on (rate 1), Collect() still
//     returns the full record set, with the affected stage degraded to
//     neutral features + robust.* provenance — never a crash, never a
//     silently wrong row;
//   - forced-fault sweeps are bit-identical at 1 worker and at 8;
//   - a checkpoint-interrupted-then-resumed sweep serializes byte-for-byte
//     equal to an uninterrupted one.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/clair/run_report.h"
#include "src/clair/serialize.h"
#include "src/clair/testbed.h"
#include "src/corpus/ecosystem.h"
#include "src/support/fault_injection.h"
#include "src/support/strings.h"

namespace clair {
namespace {

corpus::CorpusOptions SmallCorpus() {
  corpus::CorpusOptions options;
  options.mature_apps = 12;
  options.immature_apps = 2;
  options.size_scale = 0.01;
  return options;
}

TestbedOptions SmallTestbed() {
  TestbedOptions options;
  options.deep_analysis_max_files = 1;
  options.cache_features = false;
  return options;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string TempPath(const char* name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + info->test_suite_name() + "_" + info->name() +
         "_" + name;
}

// Every site forced on, one at a time: the sweep must complete with every
// row present and the matching stage degraded where the site is reachable.
TEST(FaultMatrix, EveryForcedSiteDegradesButNeverDropsRows) {
  const corpus::EcosystemGenerator ecosystem(SmallCorpus());
  const Testbed clean_testbed(ecosystem, SmallTestbed());
  const auto clean = clean_testbed.Collect();
  ASSERT_GT(clean.size(), 0u);

  struct Case {
    const char* config;
    const char* stage;  // Stage expected to carry robust.* provenance.
  };
  const std::vector<Case> matrix = {
      {"parse:1", "parse"},         {"lower:1", "lower"},
      {"dataflow:1", "dataflow"},   {"intervals:1", "intervals"},
      {"solver:1", "symexec"},      {"dynamic:1", "dynamic"},
  };
  for (const auto& test_case : matrix) {
    SCOPED_TRACE(test_case.config);
    support::FaultInjector::ScopedConfig scoped(test_case.config);
    const Testbed testbed(ecosystem, SmallTestbed());
    const auto records = testbed.Collect();
    // Never a dropped row.
    ASSERT_EQ(records.size(), clean.size());
    size_t degraded_rows = 0;
    const std::string degraded_key =
        std::string("robust.") + test_case.stage + "_degraded";
    for (size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].name, clean[i].name);
      // Text/parse-level breadth features always survive.
      EXPECT_GT(records[i].features.Get("loc.code"), 0.0) << records[i].name;
      if (records[i].features.Get(degraded_key) > 0.0) {
        ++degraded_rows;
      }
    }
    // Rate 1 on a reachable site: every row that reached the stage shows
    // the degradation (not every app has MiniC files, and later stages
    // need the earlier ones to have succeeded, so `> 0` is the floor).
    EXPECT_GT(degraded_rows, 0u);
    const RunReport report = testbed.run_report();
    ASSERT_TRUE(report.stages.count(test_case.stage)) << report.ToString();
    EXPECT_EQ(report.stages.at(test_case.stage).degraded, degraded_rows);
    EXPECT_GT(report.stages.at(test_case.stage).injected, 0u);
    // The per-record fold agrees with the live counters on degraded totals.
    const RunReport folded = SummarizeRecordRobustness(records);
    EXPECT_EQ(folded.TotalDegraded(), report.TotalDegraded());
  }
}

// The cache site is exercised separately (it needs caching on): a forced
// cache fault turns every lookup into a reject + recompute, and the final
// rows still match a cache-off sweep exactly.
TEST(FaultMatrix, ForcedCacheFaultFallsBackToRecompute) {
  const corpus::EcosystemGenerator ecosystem(SmallCorpus());
  TestbedOptions options = SmallTestbed();
  const Testbed reference(ecosystem, options);
  const auto expected = reference.Collect();

  options.cache_features = true;
  support::FaultInjector::ScopedConfig scoped("cache:1");
  const Testbed testbed(ecosystem, options);
  const auto first = testbed.Collect();
  const auto second = testbed.Collect();  // Every hit rejected, recomputed.
  EXPECT_EQ(SaveRecords(first), SaveRecords(second));
  EXPECT_GT(testbed.cache_stats().integrity_rejects, 0u);
  // Fault verdicts (none fire at the analysis sites) leave row *content*
  // identical to the reference sweep; only the cache path is perturbed.
  EXPECT_EQ(SaveRecords(first), SaveRecords(expected));
}

// Mixed sub-unity rates with retries enabled: the whole taxonomy
// (failures, injected, retries, recovered, degraded) must be identical at
// 1 worker and at 8 — byte-for-byte on the serialized records.
TEST(FaultMatrix, FaultedSweepIsBitIdenticalAcrossWorkerCounts) {
  const corpus::EcosystemGenerator ecosystem(SmallCorpus());
  support::FaultInjector::ScopedConfig scoped(
      "parse:0.3,solver:0.4,dynamic:0.3,intervals:0.2,seed:9");
  const auto sweep = [&](int threads) {
    TestbedOptions options = SmallTestbed();
    options.stage_retries = 1;
    options.threads = threads;
    const Testbed testbed(ecosystem, options);
    return SaveRecords(testbed.Collect());
  };
  const std::string serial = sweep(1);
  const std::string parallel = sweep(8);
  EXPECT_EQ(serial, parallel);
  // The injected load really fired (otherwise this test proves nothing).
  EXPECT_NE(serial.find("robust."), std::string::npos);
}

// Retries recover transient injected faults: at a middling rate with a
// retry budget, some stages must fail once and then succeed, visible as
// robust.*_retries provenance plus recovered counts.
TEST(FaultMatrix, RetriesRecoverTransientFaults) {
  const corpus::EcosystemGenerator ecosystem(SmallCorpus());
  support::FaultInjector::ScopedConfig scoped("parse:0.4,seed:3");
  TestbedOptions options = SmallTestbed();
  options.stage_retries = 3;
  const Testbed testbed(ecosystem, options);
  const auto records = testbed.Collect();
  const RunReport report = testbed.run_report();
  ASSERT_TRUE(report.stages.count("parse"));
  const StageReport& parse = report.stages.at("parse");
  EXPECT_GT(parse.failures, 0u);
  EXPECT_GT(parse.recovered, 0u) << report.ToString();
  // With 3 re-rolls at rate 0.4, most failed parses recover (p(all four
  // attempts fail) = 0.4^4 ≈ 2.6%) — degraded stays well below failures.
  EXPECT_LT(parse.degraded, parse.failures);
  bool any_retry_provenance = false;
  for (const auto& record : records) {
    any_retry_provenance =
        any_retry_provenance || record.features.Has("robust.parse_retries");
  }
  EXPECT_TRUE(any_retry_provenance);
}

// A tiny step budget trips the deterministic watchdog: the stage degrades
// with a timeout (not a crash), identically at any worker count.
TEST(Watchdog, TinyStepBudgetDegradesDeterministically) {
  const corpus::EcosystemGenerator ecosystem(SmallCorpus());
  const auto sweep = [&](int threads) {
    TestbedOptions options = SmallTestbed();
    options.stage_step_budget = 4;  // Trips in every deep stage immediately.
    options.stage_retries = 0;
    options.threads = threads;
    const Testbed testbed(ecosystem, options);
    const auto records = testbed.Collect();
    const RunReport report = testbed.run_report();
    uint64_t timeouts = 0;
    for (const auto& [name, stage] : report.stages) {
      timeouts += stage.timeouts;
    }
    EXPECT_GT(timeouts, 0u) << report.ToString();
    return SaveRecords(records);
  };
  const std::string serial = sweep(1);
  EXPECT_EQ(serial, sweep(8));
  EXPECT_NE(serial.find("robust."), std::string::npos);
}

// Checkpointed collection: an interrupted sweep (simulated by a prefix of
// the checkpoint file) resumes to records byte-identical to an
// uninterrupted sweep, and resumed rows are not recomputed.
TEST(Checkpoint, InterruptedThenResumedSweepIsByteIdentical) {
  const corpus::EcosystemGenerator ecosystem(SmallCorpus());
  const std::string full_path = TempPath("full.ckpt");
  const std::string partial_path = TempPath("partial.ckpt");
  std::remove(full_path.c_str());
  std::remove(partial_path.c_str());

  // Uninterrupted reference sweep, streaming to full_path.
  TestbedOptions options = SmallTestbed();
  options.threads = 1;
  options.checkpoint_path = full_path;
  const Testbed reference(ecosystem, options);
  const auto expected = reference.Collect();
  const std::string expected_bytes = SaveRecords(expected);
  ASSERT_EQ(reference.run_report().checkpoint_appends, expected.size());

  // Simulate the interrupt: keep the first half of the checkpoint's blocks
  // plus a torn partial line from the kill, as a real SIGKILL would leave.
  const std::string full_text = ReadFile(full_path);
  ASSERT_FALSE(full_text.empty());
  size_t cut = 0;
  size_t crlines = 0;
  for (size_t pos = 0; pos < full_text.size();) {
    const size_t eol = full_text.find('\n', pos);
    if (eol == std::string::npos) {
      break;
    }
    if (support::StartsWith(
            std::string_view(full_text).substr(pos, eol - pos), "crc=")) {
      ++crlines;
      if (crlines == expected.size() / 2) {
        cut = eol + 1;
        break;
      }
    }
    pos = eol + 1;
  }
  ASSERT_GT(cut, 0u);
  {
    std::ofstream out(partial_path, std::ios::binary);
    out << full_text.substr(0, cut);
    out << "[app]\nname=torn-";  // Mid-write kill: no newline, no crc.
  }

  // Resume against the partial checkpoint.
  TestbedOptions resume_options = SmallTestbed();
  resume_options.threads = 4;  // Resume also holds across worker counts.
  resume_options.checkpoint_path = partial_path;
  const Testbed resumed(ecosystem, resume_options);
  const auto records = resumed.Collect();
  EXPECT_EQ(SaveRecords(records), expected_bytes);
  const RunReport report = resumed.run_report();
  EXPECT_EQ(report.apps_from_checkpoint, expected.size() / 2);
  EXPECT_EQ(report.checkpoint_appends,
            expected.size() - expected.size() / 2);
  // The torn tail was recovered from, but never silently: the dropped
  // block is audited in the resume's report.
  EXPECT_EQ(report.checkpoint_dropped_blocks, 1u);

  // Third run: the resumed checkpoint now holds every record (half from
  // the first sweep, half appended after the torn line was closed) and a
  // fresh sweep recomputes nothing.
  const Testbed replay(ecosystem, resume_options);
  const auto replayed = replay.Collect();
  EXPECT_EQ(SaveRecords(replayed), expected_bytes);
  EXPECT_EQ(replay.run_report().apps_from_checkpoint, expected.size());
  EXPECT_EQ(replay.run_report().checkpoint_appends, 0u);

  std::remove(full_path.c_str());
  std::remove(partial_path.c_str());
}

// The checkpoint loader itself: round-trip, torn tails, corrupt blocks.
TEST(Checkpoint, LoaderDropsTornAndCorruptBlocks) {
  AppRecord record;
  record.name = "app-a";
  record.labels.app = "app-a";
  record.labels.total = 3;
  record.labels.max_score = 7.5;
  record.features.Set("loc.code", 100.0);
  record.features.Set("mccabe.total", 0.1234567890123456789);
  AppRecord other = record;
  other.name = "app-b";
  other.labels.app = "app-b";

  const std::string block_a = SaveCheckpointRecord(record);
  const std::string block_b = SaveCheckpointRecord(other);

  // Clean round-trip preserves doubles exactly.
  CheckpointLoadStats stats;
  auto loaded = LoadCheckpoint(block_a + block_b, &stats);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(stats.complete_records, 2u);
  EXPECT_EQ(stats.dropped_blocks, 0u);
  EXPECT_EQ(loaded[0].features.Get("mccabe.total"),
            record.features.Get("mccabe.total"));
  EXPECT_EQ(SaveRecords(loaded), SaveRecords({record, other}));

  // Torn tail: the partial block is dropped, the complete one survives.
  loaded = LoadCheckpoint(block_a + block_b.substr(0, block_b.size() / 2), &stats);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].name, "app-a");
  EXPECT_EQ(stats.dropped_blocks, 1u);

  // Orphan block without a crc followed by a good block: orphan dropped.
  loaded = LoadCheckpoint("[app]\nname=torn\n" + block_b, &stats);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].name, "app-b");
  EXPECT_EQ(stats.dropped_blocks, 1u);

  // Bit-flipped payload: crc mismatch, block dropped, no crash.
  std::string corrupt = block_a;
  corrupt[corrupt.find("100") + 1] = '7';
  loaded = LoadCheckpoint(corrupt + block_b, &stats);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].name, "app-b");
  EXPECT_EQ(stats.dropped_blocks, 1u);

  // Unreadable garbage degrades to an empty resume set.
  loaded = LoadCheckpoint("complete garbage\nnot a checkpoint\n", &stats);
  EXPECT_TRUE(loaded.empty());
}

// run_report() sanity on a clean sweep: attempts line up with the deep
// budget, nothing failed, and the fold over records agrees.
TEST(RunReportTest, CleanSweepAccounting) {
  const corpus::EcosystemGenerator ecosystem(SmallCorpus());
  const Testbed testbed(ecosystem, SmallTestbed());
  const auto records = testbed.Collect();
  const RunReport report = testbed.run_report();
  EXPECT_EQ(report.apps_total, records.size());
  EXPECT_EQ(report.TotalDegraded(), 0u);
  EXPECT_EQ(report.TotalFailures(), SummarizeRecordRobustness(records).TotalFailures());
  ASSERT_TRUE(report.stages.count("parse"));
  // One parse attempt per deep-budget slot actually consumed (apps without
  // MiniC files consume none), none retried.
  double deep_files = 0.0;
  for (const auto& record : records) {
    deep_files += record.features.Get("deep.files_attempted");
  }
  EXPECT_EQ(report.stages.at("parse").attempts, static_cast<uint64_t>(deep_files));
  EXPECT_EQ(report.stages.at("parse").failures, 0u);
  // The table renders every active stage plus the sweep totals.
  const std::string table = report.ToString();
  EXPECT_NE(table.find("parse"), std::string::npos);
  EXPECT_NE(table.find("apps="), std::string::npos);
}

// Merge is how the shard coordinator folds per-worker reports into one
// fleet report: stage maps union, counters sum, and a poisoned counter
// saturates at UINT64_MAX instead of wrapping into a small lie.
TEST(RunReportTest, MergeUnionsStagesAndSaturates) {
  RunReport left;
  left.stages["parse"].attempts = 10;
  left.stages["parse"].failures = 2;
  left.stages["parse"].wall_seconds = 1.5;
  left.apps_total = 6;
  left.checkpoint_dropped_blocks = UINT64_MAX - 1;

  RunReport right;
  right.stages["parse"].attempts = 5;
  right.stages["parse"].failures = UINT64_MAX;  // Poisoned input.
  right.stages["parse"].wall_seconds = 0.5;
  right.stages["dynamic"].attempts = 3;
  right.apps_total = 8;
  right.checkpoint_dropped_blocks = 7;

  left.Merge(right);
  ASSERT_EQ(left.stages.size(), 2u);
  EXPECT_EQ(left.stages.at("parse").attempts, 15u);
  EXPECT_EQ(left.stages.at("parse").failures, UINT64_MAX);  // Clamped.
  EXPECT_DOUBLE_EQ(left.stages.at("parse").wall_seconds, 2.0);
  EXPECT_EQ(left.stages.at("dynamic").attempts, 3u);
  EXPECT_EQ(left.apps_total, 14u);
  EXPECT_EQ(left.checkpoint_dropped_blocks, UINT64_MAX);  // Clamped.
}

// The report's text round-trip is how a shard worker ships its taxonomy
// across the process boundary; every counter must survive exactly.
TEST(RunReportTest, SaveLoadRoundTrip) {
  RunReport report;
  report.stages["parse"].attempts = 42;
  report.stages["parse"].failures = 3;
  report.stages["parse"].injected = 2;
  report.stages["parse"].timeouts = 1;
  report.stages["parse"].retries = 4;
  report.stages["parse"].recovered = 2;
  report.stages["parse"].degraded = 1;
  report.stages["parse"].wall_seconds = 0.1234567890123456789;
  report.stages["symexec"].attempts = 7;
  report.apps_total = 14;
  report.apps_from_checkpoint = 5;
  report.rows_from_cache = 2;
  report.checkpoint_appends = 9;
  report.cache_misses = 11;
  report.cache_entries = 4;
  report.cache_coalesced_fills = 1;
  report.cache_integrity_rejects = 1;
  report.checkpoint_dropped_blocks = 3;

  const std::string text = SaveRunReport(report);
  const auto loaded = LoadRunReport(text);
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToString();
  EXPECT_EQ(SaveRunReport(loaded.value()), text);  // Fixed point.
  EXPECT_EQ(loaded.value().stages.at("parse").attempts, 42u);
  EXPECT_EQ(loaded.value().stages.at("parse").wall_seconds,
            report.stages.at("parse").wall_seconds);
  EXPECT_EQ(loaded.value().checkpoint_dropped_blocks, 3u);

  EXPECT_FALSE(LoadRunReport("no header here\n").ok());
  EXPECT_FALSE(LoadRunReport("[run_report]\napps_total=notanumber\n").ok());
}

}  // namespace
}  // namespace clair
