// Tests for the attack-surface (RASQ) and attack-graph analyses.
#include <gtest/gtest.h>

#include "src/attack/graph.h"
#include "src/attack/surface.h"

namespace attack {
namespace {

TEST(Surface, RasqWeightedSum) {
  SurfaceProfile profile("server");
  profile.Set(SurfaceElement::kOpenSocket, 2);
  profile.Set(SurfaceElement::kCommandLineInput, 5);
  EXPECT_NEAR(profile.Rasq(), 2 * 1.0 + 5 * 0.2, 1e-12);
  EXPECT_EQ(profile.Count(SurfaceElement::kOpenSocket), 2);
  EXPECT_EQ(profile.Count(SurfaceElement::kWeakAcl), 0);
}

TEST(Surface, RelativeComparison) {
  SurfaceProfile hardened("hardened");
  hardened.Set(SurfaceElement::kOpenSocket, 1);
  SurfaceProfile exposed("exposed");
  exposed.Set(SurfaceElement::kOpenSocket, 4);
  EXPECT_NEAR(RelativeRasq(exposed, hardened), 4.0, 1e-12);
  EXPECT_NEAR(RelativeRasq(hardened, exposed), 0.25, 1e-12);
  SurfaceProfile empty("none");
  EXPECT_EQ(RelativeRasq(empty, empty), 1.0);
}

TEST(Surface, FromFeaturesUsesTaintSignals) {
  metrics::FeatureVector features;
  features.Set("dataflow.input_sites", 3.0);
  features.Set("dataflow.tainted_sinks", 2.0);
  features.Set("callgraph.roots", 4.0);
  const SurfaceProfile profile = SurfaceProfile::FromFeatures("app", features);
  EXPECT_EQ(profile.Count(SurfaceElement::kOpenSocket), 3);
  EXPECT_EQ(profile.Count(SurfaceElement::kRpcEndpoint), 4);
  EXPECT_GT(profile.Rasq(), 0.0);
}

// Classic three-host scenario: internet -> web server (remote exploit) ->
// database (remote exploit requiring user foothold) -> local privilege
// escalation on the database host.
NetworkModel MakeTestNetwork() {
  NetworkModel model;
  const int internet = model.AddHost("internet", {});
  const int web = model.AddHost("web", {"httpd"});
  const int db = model.AddHost("db", {"sqld", "cron"});
  model.Connect(internet, web);
  model.ConnectBoth(web, db);
  model.AddExploit({"CVE-web-rce", "httpd", Privilege::kUser, Privilege::kUser,
                    /*remote=*/true, 1.0});
  model.AddExploit({"CVE-sql-auth", "sqld", Privilege::kUser, Privilege::kUser,
                    /*remote=*/true, 2.0});
  model.AddExploit({"CVE-cron-lpe", "cron", Privilege::kUser, Privilege::kRoot,
                    /*remote=*/false, 1.5});
  return model;
}

TEST(Graph, ReachabilityThroughChain) {
  const NetworkModel model = MakeTestNetwork();
  const AttackGraph graph(model, {model.HostIndex("internet"), Privilege::kRoot});
  EXPECT_TRUE(graph.CanReach({model.HostIndex("web"), Privilege::kUser}));
  EXPECT_TRUE(graph.CanReach({model.HostIndex("db"), Privilege::kRoot}));
  // No exploit grants root on the web host.
  EXPECT_FALSE(graph.CanReach({model.HostIndex("web"), Privilege::kRoot}));
}

TEST(Graph, NoPathWithoutConnectivity) {
  NetworkModel model;
  const int internet = model.AddHost("internet", {});
  const int isolated = model.AddHost("isolated", {"httpd"});
  (void)internet;
  model.AddExploit({"CVE-web-rce", "httpd", Privilege::kUser, Privilege::kUser, true, 1.0});
  const AttackGraph graph(model, {0, Privilege::kRoot});
  EXPECT_FALSE(graph.CanReach({isolated, Privilege::kUser}));
}

TEST(Graph, ShortestPathFollowsCosts) {
  const NetworkModel model = MakeTestNetwork();
  const AttackGraph graph(model, {model.HostIndex("internet"), Privilege::kRoot});
  const auto path = graph.ShortestPath({model.HostIndex("db"), Privilege::kRoot});
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(model.exploits()[path[0].exploit].id, "CVE-web-rce");
  EXPECT_EQ(model.exploits()[path[1].exploit].id, "CVE-sql-auth");
  EXPECT_EQ(model.exploits()[path[2].exploit].id, "CVE-cron-lpe");
  double total = 0.0;
  for (const auto& edge : path) {
    total += edge.cost;
  }
  EXPECT_NEAR(total, 4.5, 1e-12);
}

TEST(Graph, ShortestPathEmptyWhenUnreachable) {
  const NetworkModel model = MakeTestNetwork();
  const AttackGraph graph(model, {model.HostIndex("internet"), Privilege::kRoot});
  EXPECT_TRUE(graph.ShortestPath({model.HostIndex("web"), Privilege::kRoot}).empty());
}

TEST(Graph, MinimalCutIsBottleneck) {
  const NetworkModel model = MakeTestNetwork();
  const AttackGraph graph(model, {model.HostIndex("internet"), Privilege::kRoot});
  // Every attack on db-root passes through the single web RCE: patching it
  // alone suffices.
  const auto cut = graph.MinimalCut(model, {model.HostIndex("db"), Privilege::kRoot});
  ASSERT_EQ(cut.size(), 1u);
  EXPECT_EQ(cut[0], "CVE-web-rce");
}

TEST(Graph, MinimalCutNeedsTwoWithRedundantPaths) {
  NetworkModel model;
  const int internet = model.AddHost("internet", {});
  const int target = model.AddHost("target", {"httpd", "ftpd"});
  model.Connect(internet, target);
  model.AddExploit({"CVE-http", "httpd", Privilege::kUser, Privilege::kRoot, true, 1.0});
  model.AddExploit({"CVE-ftp", "ftpd", Privilege::kUser, Privilege::kRoot, true, 1.0});
  const AttackGraph graph(model, {internet, Privilege::kRoot});
  const auto cut = graph.MinimalCut(model, {target, Privilege::kRoot});
  EXPECT_EQ(cut.size(), 2u);
}

TEST(Graph, MinimalCutEmptyWhenAlreadySafe) {
  NetworkModel model;
  model.AddHost("internet", {});
  model.AddHost("target", {"httpd"});
  // No connectivity, no exploits.
  const AttackGraph graph(model, {0, Privilege::kRoot});
  EXPECT_TRUE(graph.MinimalCut(model, {1, Privilege::kRoot}).empty());
}

}  // namespace
}  // namespace attack
