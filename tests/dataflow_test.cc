// Tests for the dataflow analyses: reaching definitions, liveness,
// dominators, and flow-sensitive taint.
#include <gtest/gtest.h>

#include "src/dataflow/analyses.h"
#include "src/lang/parser.h"

namespace dataflow {
namespace {

lang::IrModule MustLower(std::string_view source) {
  auto unit = lang::Parse(source);
  EXPECT_TRUE(unit.ok()) << (unit.ok() ? "" : unit.error().ToString());
  auto module = lang::LowerToIr(unit.value());
  EXPECT_TRUE(module.ok()) << (module.ok() ? "" : module.error().ToString());
  return std::move(module).value();
}

TEST(ReachingDefs, BranchMergesDefinitions) {
  const auto module = MustLower(R"(
    int f(int c) {
      int x = 1;
      if (c) { x = 2; } else { x = 3; }
      return x;
    }
  )");
  const auto& fn = module.functions[0];
  const ReachingDefinitions rd(fn);
  // At the join block (the one whose terminator returns), both branch
  // definitions of x reach.
  lang::RegId x_reg = lang::kNoReg;
  for (lang::RegId r = 0; r < fn.reg_count; ++r) {
    if (fn.reg_names[static_cast<size_t>(r)] == "x") {
      x_reg = r;
    }
  }
  ASSERT_NE(x_reg, lang::kNoReg);
  lang::BlockId return_block = -1;
  for (size_t b = 0; b < fn.blocks.size(); ++b) {
    if (fn.blocks[b].term.kind == lang::TerminatorKind::kReturn &&
        fn.blocks[b].term.value == x_reg) {
      return_block = static_cast<lang::BlockId>(b);
    }
  }
  ASSERT_GE(return_block, 0);
  EXPECT_EQ(rd.CountReaching(return_block, x_reg), 2);
  EXPECT_GT(rd.MeanReachingPerUse(), 0.0);
}

TEST(Liveness, DeadAfterLastUse) {
  const auto module = MustLower(R"(
    int f() {
      int a = 1;
      int b = a + 1;
      return b;
    }
  )");
  const Liveness lv(module.functions[0]);
  // Straight-line function: nothing is live on entry to the (single) block.
  EXPECT_GE(lv.MaxLiveAtEntry(), 0);
}

TEST(Liveness, LoopCarriedVariableIsLive) {
  const auto module = MustLower(R"(
    int f(int n) {
      int acc = 0;
      for (int i = 0; i < n; ++i) { acc += i; }
      return acc;
    }
  )");
  const auto& fn = module.functions[0];
  const Liveness lv(fn);
  // acc must be live at the loop header.
  lang::RegId acc = lang::kNoReg;
  for (lang::RegId r = 0; r < fn.reg_count; ++r) {
    if (fn.reg_names[static_cast<size_t>(r)] == "acc") {
      acc = r;
    }
  }
  ASSERT_NE(acc, lang::kNoReg);
  bool live_somewhere = false;
  for (size_t b = 1; b < fn.blocks.size(); ++b) {
    live_somewhere |= lv.LiveIn(static_cast<lang::BlockId>(b), acc);
  }
  EXPECT_TRUE(live_somewhere);
  EXPECT_GE(lv.MaxLiveAtEntry(), 2);  // acc and i (and n).
}

TEST(Dominators, DiamondStructure) {
  const auto module = MustLower(R"(
    int f(int c) {
      int x = 0;
      if (c) { x = 1; } else { x = 2; }
      return x;
    }
  )");
  const auto& fn = module.functions[0];
  const Dominators dom(fn);
  // Entry dominates everything reachable.
  for (size_t b = 0; b < fn.blocks.size(); ++b) {
    if (dom.Idom(static_cast<lang::BlockId>(b)) != -1) {
      EXPECT_TRUE(dom.Dominates(0, static_cast<lang::BlockId>(b)));
    }
  }
  EXPECT_GE(dom.TreeDepth(), 1);
  // Neither branch arm dominates the join. Find the arms via the entry's
  // branch terminator.
  const auto& term = fn.blocks[0].term;
  ASSERT_EQ(term.kind, lang::TerminatorKind::kBranch);
  EXPECT_FALSE(dom.Dominates(term.target_true, term.target_false));
  EXPECT_FALSE(dom.Dominates(term.target_false, term.target_true));
}

TEST(Taint, DirectFlowToSink) {
  const auto module = MustLower(R"(
    int f() {
      int x = input();
      int y = x * 2;
      sink(y);
      return 0;
    }
  )");
  const TaintSummary ts = AnalyzeTaint(module.functions[0]);
  EXPECT_EQ(ts.input_sites, 1);
  EXPECT_EQ(ts.tainted_sinks, 1);
  EXPECT_GE(ts.tainted_instructions, 1);
}

TEST(Taint, ConstantOverwriteClearsTaint) {
  const auto module = MustLower(R"(
    int f() {
      int x = input();
      x = 5;
      sink(x);
      return 0;
    }
  )");
  const TaintSummary ts = AnalyzeTaint(module.functions[0]);
  EXPECT_EQ(ts.tainted_sinks, 0);
}

TEST(Taint, FlowsThroughLoopJoin) {
  const auto module = MustLower(R"(
    int f(int n) {
      int x = 0;
      for (int i = 0; i < n; ++i) {
        if (i == 3) { x = input(); }
      }
      sink(x);
      return 0;
    }
  )");
  // Flow-sensitive with a loop fixpoint: x may be tainted at the sink.
  const TaintSummary ts = AnalyzeTaint(module.functions[0]);
  EXPECT_EQ(ts.tainted_sinks, 1);
}

TEST(Taint, ArrayGranularity) {
  const auto module = MustLower(R"(
    int f() {
      int buf[4];
      buf[0] = input();
      sink(buf[1]);
      return 0;
    }
  )");
  // Array-level granularity: storing taint anywhere taints reads everywhere
  // (conservative may-analysis).
  const TaintSummary ts = AnalyzeTaint(module.functions[0]);
  EXPECT_EQ(ts.tainted_sinks, 1);
}

TEST(Taint, TaintedIndexCounted) {
  const auto module = MustLower(R"(
    int f() {
      int buf[4];
      int i = input();
      if (i >= 0 && i < 4) { buf[i] = 9; }
      return 0;
    }
  )");
  const TaintSummary ts = AnalyzeTaint(module.functions[0]);
  EXPECT_GE(ts.tainted_array_indices, 1);
  EXPECT_GE(ts.tainted_branches, 1);
}

TEST(Features, ModuleSummaryPopulated) {
  const auto module = MustLower(R"(
    int helper(int v) { return v + 1; }
    int f() {
      int x = input();
      int buf[8];
      if (x >= 0 && x < 8) { buf[x] = helper(x); }
      sink(buf[0]);
      return 0;
    }
  )");
  const auto fv = DataflowFeatures(module);
  EXPECT_EQ(fv.Get("dataflow.input_sites"), 1.0);
  EXPECT_GE(fv.Get("dataflow.tainted_sinks"), 1.0);
  EXPECT_GE(fv.Get("dataflow.tainted_call_args"), 1.0);
  EXPECT_GT(fv.Get("dataflow.max_live_regs"), 0.0);
  EXPECT_GT(fv.Get("dataflow.max_dom_depth"), 0.0);
}

}  // namespace
}  // namespace dataflow
