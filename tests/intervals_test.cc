// Tests for the interval abstract interpreter: lattice algebra, transfer
// precision, branch refinement, widening termination, and soundness against
// the concrete interpreter (property test).
#include <gtest/gtest.h>

#include <map>

#include "src/corpus/codegen.h"
#include "src/dataflow/intervals.h"
#include "src/lang/interp.h"
#include "src/metrics/callgraph.h"
#include "src/lang/parser.h"
#include "src/support/rng.h"

namespace dataflow {
namespace {

lang::IrModule MustLower(std::string_view source) {
  auto unit = lang::Parse(source);
  EXPECT_TRUE(unit.ok()) << (unit.ok() ? "" : unit.error().ToString());
  auto module = lang::LowerToIr(unit.value());
  EXPECT_TRUE(module.ok()) << (module.ok() ? "" : module.error().ToString());
  return std::move(module).value();
}

int CountFindings(const IntervalReport& report, AiFinding::Kind kind) {
  int count = 0;
  for (const auto& finding : report.findings) {
    count += finding.kind == kind ? 1 : 0;
  }
  return count;
}

// --- Lattice algebra ----------------------------------------------------------

TEST(IntervalAlgebra, JoinMeetWiden) {
  const Interval a = Interval::Range(0, 10);
  const Interval b = Interval::Range(5, 20);
  EXPECT_EQ(Join(a, b), Interval::Range(0, 20));
  EXPECT_EQ(Meet(a, b), Interval::Range(5, 10));
  EXPECT_TRUE(Meet(Interval::Range(0, 1), Interval::Range(5, 6)).bottom);
  EXPECT_EQ(Join(Interval::Bottom(), a), a);
  // Widening blows growing bounds to infinity but keeps stable ones.
  const Interval widened = Widen(Interval::Range(0, 10), Interval::Range(0, 11));
  EXPECT_EQ(widened.lo, 0);
  EXPECT_EQ(widened.hi, Interval::kMax);
}

TEST(IntervalAlgebra, ArithmeticSaturates) {
  const Interval big = Interval::Range(INT64_MAX / 2, INT64_MAX - 1);
  const Interval sum = AddI(big, big);
  EXPECT_EQ(sum.hi, Interval::kMax);
  const Interval product = MulI(Interval::Range(-3, 3), Interval::Range(-5, 7));
  EXPECT_EQ(product, Interval::Range(-21, 21));
  EXPECT_EQ(NegI(Interval::Range(-2, 9)), Interval::Range(-9, 2));
  EXPECT_EQ(SubI(Interval::Const(10), Interval::Range(1, 4)), Interval::Range(6, 9));
}

TEST(IntervalAlgebra, DivisionAndRemainder) {
  EXPECT_EQ(DivI(Interval::Range(10, 20), Interval::Range(2, 5)), Interval::Range(2, 10));
  const Interval rem = RemI(Interval::Range(0, 100), Interval::Const(7));
  EXPECT_EQ(rem, Interval::Range(0, 6));
  const Interval negrem = RemI(Interval::Range(-100, -1), Interval::Const(7));
  EXPECT_EQ(negrem, Interval::Range(-6, 0));
}

// --- Proving safety ------------------------------------------------------------

TEST(Intervals, ProvesConstantIndexSafe) {
  const auto module = MustLower(R"(
    int f() {
      int buf[8];
      buf[3] = 1;
      return buf[3];
    }
  )");
  const IntervalReport report = AnalyzeIntervals(module.functions[0]);
  EXPECT_EQ(report.array_accesses, 2);
  EXPECT_EQ(report.proven_in_bounds, 2);
  EXPECT_TRUE(report.findings.empty());
}

TEST(Intervals, ProvesGuardedInputIndexSafe) {
  const auto module = MustLower(R"(
    int f() {
      int buf[8];
      int i = input();
      if (i >= 0 && i < 8) {
        buf[i] = 1;
      }
      return 0;
    }
  )");
  const IntervalReport report = AnalyzeIntervals(module.functions[0]);
  EXPECT_EQ(report.proven_in_bounds, report.array_accesses);
  EXPECT_TRUE(report.findings.empty());
}

TEST(Intervals, FlagsUnguardedInputIndex) {
  const auto module = MustLower(R"(
    int f() {
      int buf[8];
      int i = input();
      buf[i] = 1;
      return 0;
    }
  )");
  const IntervalReport report = AnalyzeIntervals(module.functions[0]);
  EXPECT_EQ(CountFindings(report, AiFinding::Kind::kPossibleOutOfBounds), 1);
}

TEST(Intervals, FlagsInsufficientGuard) {
  const auto module = MustLower(R"(
    int f() {
      int buf[8];
      int i = input();
      if (i < 16) {        // Missing lower bound, upper bound too lax.
        buf[i] = 1;
      }
      return 0;
    }
  )");
  const IntervalReport report = AnalyzeIntervals(module.functions[0]);
  EXPECT_EQ(CountFindings(report, AiFinding::Kind::kPossibleOutOfBounds), 1);
}

TEST(Intervals, ProvesLoopBoundedIndexSafe) {
  const auto module = MustLower(R"(
    int f() {
      int buf[10];
      for (int i = 0; i < 10; ++i) {
        buf[i] = i;
      }
      return buf[0];
    }
  )");
  // Widening sends i's upper bound to +inf at the header, but the branch
  // refinement (i < 10) restores it inside the body.
  const IntervalReport report = AnalyzeIntervals(module.functions[0]);
  EXPECT_EQ(report.proven_in_bounds, report.array_accesses);
  EXPECT_TRUE(report.findings.empty());
}

TEST(Intervals, DivisionByGuardedValueProven) {
  const auto module = MustLower(R"(
    int f(int d) {
      if (d > 0) {
        return 100 / d;
      }
      return 0;
    }
  )");
  const IntervalReport report = AnalyzeIntervals(module.functions[0]);
  EXPECT_EQ(report.divisions, 1);
  EXPECT_EQ(report.proven_nonzero_divisor, 1);
}

TEST(Intervals, UnguardedDivisionFlagged) {
  const auto module = MustLower("int f(int d) { return 100 / d; }");
  const IntervalReport report = AnalyzeIntervals(module.functions[0]);
  EXPECT_EQ(CountFindings(report, AiFinding::Kind::kPossibleDivByZero), 1);
}

TEST(Intervals, EqualityRefinement) {
  const auto module = MustLower(R"(
    int f() {
      int buf[4];
      int i = input();
      if (i == 2) {
        buf[i] = 7;
      }
      return 0;
    }
  )");
  const IntervalReport report = AnalyzeIntervals(module.functions[0]);
  EXPECT_EQ(report.proven_in_bounds, report.array_accesses);
}

TEST(Intervals, InfeasibleBranchPruned) {
  const auto module = MustLower(R"(
    int f() {
      int x = 5;
      int buf[2];
      if (x > 10) {
        buf[100] = 1;  // Dead: x is exactly 5.
      }
      return 0;
    }
  )");
  const IntervalReport report = AnalyzeIntervals(module.functions[0]);
  EXPECT_TRUE(report.findings.empty());
}

TEST(Intervals, WideningTerminatesOnUnboundedLoop) {
  const auto module = MustLower(R"(
    int f() {
      int x = 0;
      while (x >= 0) {
        x = x + 1;
      }
      return x;
    }
  )");
  // Must terminate (widening) and produce a report without hanging.
  const IntervalReport report = AnalyzeIntervals(module.functions[0]);
  EXPECT_EQ(report.array_accesses, 0);
}

// --- Soundness property --------------------------------------------------------
// If the analysis reports zero possible-OOB findings for a function, the
// concrete interpreter must never observe an out-of-bounds fault in it.

class IntervalSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalSoundness, NoFindingsImpliesNoConcreteFaults) {
  support::Rng rng(GetParam() * 104729);
  corpus::AppStyle style;
  style.complexity = rng.NextDouble() * 0.7;
  style.unsafety = rng.NextDouble();
  style.taintiness = rng.NextDouble();
  const std::string source = corpus::GenerateMiniCFile(rng, style, 150);
  const auto module = MustLower(source);

  // Per-function cleanliness; a concrete run of `fn` can fault inside any
  // transitive callee, so the property is asserted only when every function
  // reachable from `fn` is clean for the fault kind.
  std::map<std::string, std::pair<bool, bool>> clean;  // (oob, div).
  for (const auto& fn : module.functions) {
    const IntervalReport report = AnalyzeIntervals(fn);
    clean[fn.name] = {
        CountFindings(report, AiFinding::Kind::kPossibleOutOfBounds) == 0,
        CountFindings(report, AiFinding::Kind::kPossibleDivByZero) == 0};
  }
  const metrics::CallGraph graph(module);
  for (const auto& fn : module.functions) {
    bool oob_clean = true;
    bool div_clean = true;
    for (const auto& callee : graph.ReachableFrom(fn.name)) {
      const auto it = clean.find(callee);
      if (it == clean.end()) {
        continue;
      }
      oob_clean &= it->second.first;
      div_clean &= it->second.second;
    }
    if (!oob_clean) {
      continue;  // The analysis admits it cannot prove this call tree.
    }
    support::Rng input_rng(GetParam());
    for (int trial = 0; trial < 25; ++trial) {
      std::vector<int64_t> inputs;
      std::vector<int64_t> args;
      for (int i = 0; i < 12; ++i) {
        inputs.push_back(static_cast<int64_t>(input_rng.NextBelow(1 << 15)) - (1 << 14));
      }
      for (size_t i = 0; i < fn.param_regs.size(); ++i) {
        args.push_back(static_cast<int64_t>(input_rng.NextBelow(1 << 15)) - (1 << 14));
      }
      const auto trace = lang::Execute(module, fn.name, args, inputs);
      EXPECT_NE(trace.outcome, lang::ExecOutcome::kOutOfBounds)
          << fn.name << " faulted despite a clean interval report\n"
          << source.substr(0, 1500);
      if (div_clean) {
        EXPECT_NE(trace.outcome, lang::ExecOutcome::kDivisionByZero) << fn.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSoundness, ::testing::Range<uint64_t>(1, 30));

// --- Saturating-arithmetic regressions ---------------------------------------
//
// The sentinel encoding reads kMin as -inf only in the lo position and kMax
// as +inf only in the hi position; the original helpers treated the values as
// infinite regardless of position, collapsing genuine extreme constants and
// (for division) mishandling zero-endpoint divisors. These pins hold the
// corrected values in BOTH domains: the sentinel ops directly, and the
// ConstantInterval algebra through the conversion bijection.

TEST(IntervalAlgebra, ExtremeConstantsRegression) {
  // [kMin,kMin] + [5,5]: kMin is a genuine constant here, not -inf. The old
  // SatAdd collapsed this to [kMin,kMin], excluding the true value kMin+5.
  EXPECT_EQ(AddI(Interval::Const(Interval::kMin), Interval::Const(5)),
            Interval::Range(Interval::kMin, Interval::kMin + 5));
  // Dual bug on the hi side via subtraction.
  EXPECT_EQ(SubI(Interval::Const(Interval::kMax), Interval::Const(5)),
            Interval::Range(Interval::kMax - 5, Interval::kMax));
  // [kMax,kMax] denotes [kMax, +inf) (hi-position kMax is the +inf
  // sentinel), so its negation is (-inf, -kMax]. The old SatNeg returned
  // [kMin,kMin], whose hi-position kMin wrongly excludes -kMax = kMin+1.
  EXPECT_EQ(NegI(Interval::Const(Interval::kMax)),
            Interval::Range(Interval::kMin, Interval::kMin + 1));
  // [kMin,kMin] denotes (-inf, kMin]; its negation is [2^63, +inf), whose
  // lower bound saturates inward to kMax and whose upper side is the +inf
  // sentinel — [kMax, kMax] is the tightest sentinel claim.
  EXPECT_EQ(NegI(Interval::Const(Interval::kMin)),
            Interval::Range(Interval::kMax, Interval::kMax));
  // [kMax, +inf) * {-1} = (-inf, -kMax]; the old SatMul produced
  // [kMin,kMin], excluding -kMax.
  EXPECT_EQ(MulI(Interval::Const(Interval::kMax), Interval::Const(-1)),
            Interval::Range(Interval::kMin, Interval::kMin + 1));
  // A genuinely unbounded-below operand stays unbounded below.
  EXPECT_EQ(MulI(Interval::Range(Interval::kMin, 5), Interval::Const(2)),
            Interval::Range(Interval::kMin, 10));
}

TEST(IntervalAlgebra, ZeroEndpointDivisorRegression) {
  // Divisor [0,5]: zero is excluded semantically (the analysis refines
  // divisors), so actual divisors are [1,5] and 20/1 = 20 is reachable. The
  // old straddle test (`lo < 0 && hi > 0`) missed zero endpoints and gave
  // the unsound [2,4].
  EXPECT_EQ(DivI(Interval::Range(10, 20), Interval::Range(0, 5)),
            Interval::Range(2, 20));
  EXPECT_EQ(DivI(Interval::Range(10, 20), Interval::Range(-5, 0)),
            Interval::Range(-20, -2));
  // Straddling divisor: both sign parts contribute.
  EXPECT_EQ(DivI(Interval::Range(10, 20), Interval::Range(-3, 5)),
            Interval::Range(-20, 20));
  // Divisor exactly {0}: no legal divisor value remains.
  EXPECT_TRUE(DivI(Interval::Range(10, 20), Interval::Const(0)).bottom);
}

TEST(IntervalAlgebra, RemainderSignPins) {
  // Sign follows the dividend; magnitude bounded by max(|b|) - 1 = 4.
  EXPECT_EQ(RemI(Interval::Range(-7, 100), Interval::Range(1, 5)),
            Interval::Range(-4, 4));
  // Negative divisor: |r| < |-7| = 7 and a nonnegative dividend keeps r >= 0.
  EXPECT_EQ(RemI(Interval::Range(0, 100), Interval::Const(-7)),
            Interval::Range(0, 6));
  EXPECT_EQ(RemI(Interval::Range(-100, 0), Interval::Const(7)),
            Interval::Range(-6, 0));
}

TEST(ConstantIntervalAlgebra, MirrorsFixedSentinelValues) {
  using support::ConstantInterval;
  // The same regression cases through the support algebra: genuine extreme
  // constants stay exact because definedness is explicit.
  const auto sum = ConstantInterval::SinglePoint(INT64_MIN) +
                   ConstantInterval::SinglePoint(5);
  EXPECT_EQ(sum, ConstantInterval::SinglePoint(INT64_MIN + 5));
  const auto prod = ConstantInterval::SinglePoint(INT64_MAX) *
                    ConstantInterval::SinglePoint(-1);
  EXPECT_EQ(prod, ConstantInterval::SinglePoint(INT64_MIN + 1));
  // -{INT64_MIN} = {2^63}: above int64, so the result is bounded below by
  // INT64_MAX (saturated inward) and unbounded above.
  const auto neg = -ConstantInterval::SinglePoint(INT64_MIN);
  EXPECT_TRUE(neg.min_defined);
  EXPECT_EQ(neg.min, INT64_MAX);
  EXPECT_FALSE(neg.max_defined);
  // One-sided bounds propagate through addition.
  EXPECT_EQ(ConstantInterval::BoundedBelow(3) + ConstantInterval::SinglePoint(10),
            ConstantInterval::BoundedBelow(13));
  // Division and remainder (raw algebra keeps the dividend-magnitude
  // tightening the dataflow shim drops).
  EXPECT_EQ(ConstantInterval(10, 20) / ConstantInterval(0, 5),
            ConstantInterval(2, 20));
  EXPECT_EQ(ConstantInterval(3, 100) % ConstantInterval(7, 7),
            ConstantInterval(0, 6));
  EXPECT_EQ(ConstantInterval(2, 2) % ConstantInterval(7, 7),
            ConstantInterval(0, 2));  // |r| <= |a| tightening.
  // Conversion roundtrip agrees with the fixed sentinel ops.
  EXPECT_EQ(FromConstantInterval(
                ToConstantInterval(Interval::Const(Interval::kMax)) *
                ToConstantInterval(Interval::Const(-1))),
            MulI(Interval::Const(Interval::kMax), Interval::Const(-1)));
}

TEST(ConstantIntervalAlgebra, ShiftAndDeciderPins) {
  using support::ConstantInterval;
  using support::Tristate;
  EXPECT_EQ(ConstantInterval::Shl(ConstantInterval(1, 3), ConstantInterval(2, 4)),
            ConstantInterval(4, 48));
  EXPECT_EQ(ConstantInterval::Shr(ConstantInterval(-17, 100), ConstantInterval(2, 2)),
            ConstantInterval(-5, 25));  // Arithmetic shift: floor(-17/4) = -5.
  // Shift amount not provably in [0, 63] -> give up.
  EXPECT_TRUE(ConstantInterval::Shl(ConstantInterval(1, 1),
                                    ConstantInterval(-1, 2))
                  .is_everything());
  EXPECT_EQ(ConstantInterval::ProveLt(ConstantInterval(0, 4), ConstantInterval(5, 9)),
            Tristate::kTrue);
  EXPECT_EQ(ConstantInterval::ProveLt(ConstantInterval(5, 9), ConstantInterval(0, 4)),
            Tristate::kFalse);
  EXPECT_EQ(ConstantInterval::ProveLt(ConstantInterval(0, 5), ConstantInterval(5, 9)),
            Tristate::kUnknown);
  EXPECT_EQ(ConstantInterval::ProveEq(ConstantInterval::SinglePoint(7),
                                      ConstantInterval::SinglePoint(7)),
            Tristate::kTrue);
  EXPECT_EQ(ConstantInterval::ProveNe(ConstantInterval(0, 3), ConstantInterval(4, 9)),
            Tristate::kTrue);
  EXPECT_EQ(ConstantInterval::ProveGe(ConstantInterval::BoundedBelow(10),
                                      ConstantInterval::BoundedAbove(9)),
            Tristate::kTrue);
}

// --- Engine/reference report equality ----------------------------------------

TEST(IntervalModeEquality, ReportsBitIdenticalAcrossDomains) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    support::Rng rng(seed * 7919);
    corpus::AppStyle style;
    style.complexity = rng.NextDouble() * 0.8;
    style.unsafety = rng.NextDouble();
    style.taintiness = rng.NextDouble();
    const std::string source = corpus::GenerateMiniCFile(rng, style, 160);
    const auto module = MustLower(source);
    for (const auto& fn : module.functions) {
      IntervalOptions engine_opts;
      engine_opts.mode = DataflowMode::kEngine;
      engine_opts.record_block_ranges = true;
      IntervalOptions ref_opts = engine_opts;
      ref_opts.mode = DataflowMode::kReference;
      const IntervalReport a = AnalyzeIntervals(fn, engine_opts);
      const IntervalReport b = AnalyzeIntervals(fn, ref_opts);
      EXPECT_EQ(a.array_accesses, b.array_accesses) << fn.name;
      EXPECT_EQ(a.proven_in_bounds, b.proven_in_bounds) << fn.name;
      EXPECT_EQ(a.divisions, b.divisions) << fn.name;
      EXPECT_EQ(a.proven_nonzero_divisor, b.proven_nonzero_divisor) << fn.name;
      ASSERT_EQ(a.findings.size(), b.findings.size()) << fn.name;
      for (size_t i = 0; i < a.findings.size(); ++i) {
        EXPECT_EQ(a.findings[i].kind, b.findings[i].kind) << fn.name;
        EXPECT_EQ(a.findings[i].function, b.findings[i].function);
        EXPECT_EQ(a.findings[i].line, b.findings[i].line);
      }
      ASSERT_EQ(a.block_entry_regs.size(), b.block_entry_regs.size()) << fn.name;
      for (size_t blk = 0; blk < a.block_entry_regs.size(); ++blk) {
        EXPECT_EQ(a.block_entry_regs[blk], b.block_entry_regs[blk])
            << fn.name << " block " << blk;
      }
    }
  }
}

TEST(IntervalFeaturesTest, ModuleAggregation) {
  const auto module = MustLower(R"(
    int safe() { int b[4]; b[1] = 2; return b[1]; }
    int risky() { int b[4]; int i = input(); b[i] = 1; return 100 / i; }
  )");
  const auto fv = IntervalFeatures(module);
  EXPECT_EQ(fv.Get("ai.array_accesses"), 3.0);
  EXPECT_EQ(fv.Get("ai.proven_in_bounds"), 2.0);
  EXPECT_EQ(fv.Get("ai.possible_oob"), 1.0);
  EXPECT_EQ(fv.Get("ai.possible_div0"), 1.0);
  EXPECT_GT(fv.Get("ai.unproven_access_ratio"), 0.0);
}

}  // namespace
}  // namespace dataflow
