// Tests for the interval abstract interpreter: lattice algebra, transfer
// precision, branch refinement, widening termination, and soundness against
// the concrete interpreter (property test).
#include <gtest/gtest.h>

#include <map>

#include "src/corpus/codegen.h"
#include "src/dataflow/intervals.h"
#include "src/lang/interp.h"
#include "src/metrics/callgraph.h"
#include "src/lang/parser.h"
#include "src/support/rng.h"

namespace dataflow {
namespace {

lang::IrModule MustLower(std::string_view source) {
  auto unit = lang::Parse(source);
  EXPECT_TRUE(unit.ok()) << (unit.ok() ? "" : unit.error().ToString());
  auto module = lang::LowerToIr(unit.value());
  EXPECT_TRUE(module.ok()) << (module.ok() ? "" : module.error().ToString());
  return std::move(module).value();
}

int CountFindings(const IntervalReport& report, AiFinding::Kind kind) {
  int count = 0;
  for (const auto& finding : report.findings) {
    count += finding.kind == kind ? 1 : 0;
  }
  return count;
}

// --- Lattice algebra ----------------------------------------------------------

TEST(IntervalAlgebra, JoinMeetWiden) {
  const Interval a = Interval::Range(0, 10);
  const Interval b = Interval::Range(5, 20);
  EXPECT_EQ(Join(a, b), Interval::Range(0, 20));
  EXPECT_EQ(Meet(a, b), Interval::Range(5, 10));
  EXPECT_TRUE(Meet(Interval::Range(0, 1), Interval::Range(5, 6)).bottom);
  EXPECT_EQ(Join(Interval::Bottom(), a), a);
  // Widening blows growing bounds to infinity but keeps stable ones.
  const Interval widened = Widen(Interval::Range(0, 10), Interval::Range(0, 11));
  EXPECT_EQ(widened.lo, 0);
  EXPECT_EQ(widened.hi, Interval::kMax);
}

TEST(IntervalAlgebra, ArithmeticSaturates) {
  const Interval big = Interval::Range(INT64_MAX / 2, INT64_MAX - 1);
  const Interval sum = AddI(big, big);
  EXPECT_EQ(sum.hi, Interval::kMax);
  const Interval product = MulI(Interval::Range(-3, 3), Interval::Range(-5, 7));
  EXPECT_EQ(product, Interval::Range(-21, 21));
  EXPECT_EQ(NegI(Interval::Range(-2, 9)), Interval::Range(-9, 2));
  EXPECT_EQ(SubI(Interval::Const(10), Interval::Range(1, 4)), Interval::Range(6, 9));
}

TEST(IntervalAlgebra, DivisionAndRemainder) {
  EXPECT_EQ(DivI(Interval::Range(10, 20), Interval::Range(2, 5)), Interval::Range(2, 10));
  const Interval rem = RemI(Interval::Range(0, 100), Interval::Const(7));
  EXPECT_EQ(rem, Interval::Range(0, 6));
  const Interval negrem = RemI(Interval::Range(-100, -1), Interval::Const(7));
  EXPECT_EQ(negrem, Interval::Range(-6, 0));
}

// --- Proving safety ------------------------------------------------------------

TEST(Intervals, ProvesConstantIndexSafe) {
  const auto module = MustLower(R"(
    int f() {
      int buf[8];
      buf[3] = 1;
      return buf[3];
    }
  )");
  const IntervalReport report = AnalyzeIntervals(module.functions[0]);
  EXPECT_EQ(report.array_accesses, 2);
  EXPECT_EQ(report.proven_in_bounds, 2);
  EXPECT_TRUE(report.findings.empty());
}

TEST(Intervals, ProvesGuardedInputIndexSafe) {
  const auto module = MustLower(R"(
    int f() {
      int buf[8];
      int i = input();
      if (i >= 0 && i < 8) {
        buf[i] = 1;
      }
      return 0;
    }
  )");
  const IntervalReport report = AnalyzeIntervals(module.functions[0]);
  EXPECT_EQ(report.proven_in_bounds, report.array_accesses);
  EXPECT_TRUE(report.findings.empty());
}

TEST(Intervals, FlagsUnguardedInputIndex) {
  const auto module = MustLower(R"(
    int f() {
      int buf[8];
      int i = input();
      buf[i] = 1;
      return 0;
    }
  )");
  const IntervalReport report = AnalyzeIntervals(module.functions[0]);
  EXPECT_EQ(CountFindings(report, AiFinding::Kind::kPossibleOutOfBounds), 1);
}

TEST(Intervals, FlagsInsufficientGuard) {
  const auto module = MustLower(R"(
    int f() {
      int buf[8];
      int i = input();
      if (i < 16) {        // Missing lower bound, upper bound too lax.
        buf[i] = 1;
      }
      return 0;
    }
  )");
  const IntervalReport report = AnalyzeIntervals(module.functions[0]);
  EXPECT_EQ(CountFindings(report, AiFinding::Kind::kPossibleOutOfBounds), 1);
}

TEST(Intervals, ProvesLoopBoundedIndexSafe) {
  const auto module = MustLower(R"(
    int f() {
      int buf[10];
      for (int i = 0; i < 10; ++i) {
        buf[i] = i;
      }
      return buf[0];
    }
  )");
  // Widening sends i's upper bound to +inf at the header, but the branch
  // refinement (i < 10) restores it inside the body.
  const IntervalReport report = AnalyzeIntervals(module.functions[0]);
  EXPECT_EQ(report.proven_in_bounds, report.array_accesses);
  EXPECT_TRUE(report.findings.empty());
}

TEST(Intervals, DivisionByGuardedValueProven) {
  const auto module = MustLower(R"(
    int f(int d) {
      if (d > 0) {
        return 100 / d;
      }
      return 0;
    }
  )");
  const IntervalReport report = AnalyzeIntervals(module.functions[0]);
  EXPECT_EQ(report.divisions, 1);
  EXPECT_EQ(report.proven_nonzero_divisor, 1);
}

TEST(Intervals, UnguardedDivisionFlagged) {
  const auto module = MustLower("int f(int d) { return 100 / d; }");
  const IntervalReport report = AnalyzeIntervals(module.functions[0]);
  EXPECT_EQ(CountFindings(report, AiFinding::Kind::kPossibleDivByZero), 1);
}

TEST(Intervals, EqualityRefinement) {
  const auto module = MustLower(R"(
    int f() {
      int buf[4];
      int i = input();
      if (i == 2) {
        buf[i] = 7;
      }
      return 0;
    }
  )");
  const IntervalReport report = AnalyzeIntervals(module.functions[0]);
  EXPECT_EQ(report.proven_in_bounds, report.array_accesses);
}

TEST(Intervals, InfeasibleBranchPruned) {
  const auto module = MustLower(R"(
    int f() {
      int x = 5;
      int buf[2];
      if (x > 10) {
        buf[100] = 1;  // Dead: x is exactly 5.
      }
      return 0;
    }
  )");
  const IntervalReport report = AnalyzeIntervals(module.functions[0]);
  EXPECT_TRUE(report.findings.empty());
}

TEST(Intervals, WideningTerminatesOnUnboundedLoop) {
  const auto module = MustLower(R"(
    int f() {
      int x = 0;
      while (x >= 0) {
        x = x + 1;
      }
      return x;
    }
  )");
  // Must terminate (widening) and produce a report without hanging.
  const IntervalReport report = AnalyzeIntervals(module.functions[0]);
  EXPECT_EQ(report.array_accesses, 0);
}

// --- Soundness property --------------------------------------------------------
// If the analysis reports zero possible-OOB findings for a function, the
// concrete interpreter must never observe an out-of-bounds fault in it.

class IntervalSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalSoundness, NoFindingsImpliesNoConcreteFaults) {
  support::Rng rng(GetParam() * 104729);
  corpus::AppStyle style;
  style.complexity = rng.NextDouble() * 0.7;
  style.unsafety = rng.NextDouble();
  style.taintiness = rng.NextDouble();
  const std::string source = corpus::GenerateMiniCFile(rng, style, 150);
  const auto module = MustLower(source);

  // Per-function cleanliness; a concrete run of `fn` can fault inside any
  // transitive callee, so the property is asserted only when every function
  // reachable from `fn` is clean for the fault kind.
  std::map<std::string, std::pair<bool, bool>> clean;  // (oob, div).
  for (const auto& fn : module.functions) {
    const IntervalReport report = AnalyzeIntervals(fn);
    clean[fn.name] = {
        CountFindings(report, AiFinding::Kind::kPossibleOutOfBounds) == 0,
        CountFindings(report, AiFinding::Kind::kPossibleDivByZero) == 0};
  }
  const metrics::CallGraph graph(module);
  for (const auto& fn : module.functions) {
    bool oob_clean = true;
    bool div_clean = true;
    for (const auto& callee : graph.ReachableFrom(fn.name)) {
      const auto it = clean.find(callee);
      if (it == clean.end()) {
        continue;
      }
      oob_clean &= it->second.first;
      div_clean &= it->second.second;
    }
    if (!oob_clean) {
      continue;  // The analysis admits it cannot prove this call tree.
    }
    support::Rng input_rng(GetParam());
    for (int trial = 0; trial < 25; ++trial) {
      std::vector<int64_t> inputs;
      std::vector<int64_t> args;
      for (int i = 0; i < 12; ++i) {
        inputs.push_back(static_cast<int64_t>(input_rng.NextBelow(1 << 15)) - (1 << 14));
      }
      for (size_t i = 0; i < fn.param_regs.size(); ++i) {
        args.push_back(static_cast<int64_t>(input_rng.NextBelow(1 << 15)) - (1 << 14));
      }
      const auto trace = lang::Execute(module, fn.name, args, inputs);
      EXPECT_NE(trace.outcome, lang::ExecOutcome::kOutOfBounds)
          << fn.name << " faulted despite a clean interval report\n"
          << source.substr(0, 1500);
      if (div_clean) {
        EXPECT_NE(trace.outcome, lang::ExecOutcome::kDivisionByZero) << fn.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSoundness, ::testing::Range<uint64_t>(1, 30));

TEST(IntervalFeaturesTest, ModuleAggregation) {
  const auto module = MustLower(R"(
    int safe() { int b[4]; b[1] = 2; return b[1]; }
    int risky() { int b[4]; int i = input(); b[i] = 1; return 100 / i; }
  )");
  const auto fv = IntervalFeatures(module);
  EXPECT_EQ(fv.Get("ai.array_accesses"), 3.0);
  EXPECT_EQ(fv.Get("ai.proven_in_bounds"), 2.0);
  EXPECT_EQ(fv.Get("ai.possible_oob"), 1.0);
  EXPECT_EQ(fv.Get("ai.possible_div0"), 1.0);
  EXPECT_GT(fv.Get("ai.unproven_access_ratio"), 0.0);
}

}  // namespace
}  // namespace dataflow
