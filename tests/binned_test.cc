// Tests for the quantile-binned dataset view and histogram tree training:
// binning mechanics on adversarial distributions, binned-vs-exact split
// equivalence, accuracy parity on quantile-compressed data, index-view
// training parity, and 1-vs-N-worker bit-identity.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/ml/binned.h"
#include "src/ml/dataset.h"
#include "src/ml/eval.h"
#include "src/ml/linear.h"
#include "src/ml/naive_bayes.h"
#include "src/ml/tree.h"
#include "src/support/rng.h"
#include "src/support/thread_pool.h"

namespace ml {
namespace {

Dataset MakeBlobs(size_t per_class, double separation, uint64_t seed) {
  Dataset data = Dataset::ForClassification({"f0", "f1", "noise"}, {"neg", "pos"});
  support::Rng rng(seed);
  for (size_t i = 0; i < per_class; ++i) {
    data.AddRow({rng.Normal(0.0, 1.0), rng.Normal(0.0, 1.0), rng.Normal(0.0, 1.0)}, 0.0);
    data.AddRow({rng.Normal(separation, 1.0), rng.Normal(separation, 1.0),
                 rng.Normal(0.0, 1.0)},
                1.0);
  }
  return data;
}

std::vector<size_t> AllRows(const Dataset& data) {
  std::vector<size_t> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), size_t{0});
  return rows;
}

// Flattened predictions over every training row.
std::vector<double> ForestOutputs(const RandomForestClassifier& forest,
                                  const Dataset& data) {
  std::vector<double> out;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    const auto proba = forest.PredictProba(data.Row(i));
    out.insert(out.end(), proba.begin(), proba.end());
  }
  return out;
}

double TrainAccuracy(const Classifier& model, const Dataset& data) {
  size_t correct = 0;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    correct += model.Predict(data.Row(i)) == data.ClassIndex(i) ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(data.num_rows());
}

TEST(BinnedView, ExactModeWhenFewDistinctValues) {
  Dataset data = Dataset::ForRegression({"a", "b"}, "y");
  for (int i = 0; i < 100; ++i) {
    data.AddRow({static_cast<double>(i % 7), 3.5}, 0.0);
  }
  const auto view = data.Binned(256);
  ASSERT_EQ(view->num_features(), 2u);
  EXPECT_TRUE(view->all_exact());
  // Column a: one bin per distinct value, thresholds at consecutive midpoints.
  const BinnedColumn& a = view->column(0);
  EXPECT_EQ(a.num_bins, 7);
  ASSERT_EQ(a.thresholds.size(), 6u);
  for (size_t b = 0; b < a.thresholds.size(); ++b) {
    EXPECT_DOUBLE_EQ(a.thresholds[b], static_cast<double>(b) + 0.5);
  }
  for (size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_EQ(a.codes[i], static_cast<uint8_t>(i % 7));
  }
  // Column b is constant: a single bin, no thresholds, nothing to split on.
  const BinnedColumn& b = view->column(1);
  EXPECT_EQ(b.num_bins, 1);
  EXPECT_TRUE(b.thresholds.empty());
}

TEST(BinnedView, QuantileModeRespectsBinBudgetUnderHeavyTies) {
  // Adversarial distribution: one value holds 60% of the mass, the tail is
  // 500 distinct values (> 256 total), forcing quantile compression.
  Dataset data = Dataset::ForRegression({"a"}, "y");
  support::Rng rng(7);
  for (int i = 0; i < 750; ++i) {
    data.AddRow({0.0}, 0.0);
  }
  for (int i = 0; i < 500; ++i) {
    data.AddRow({1.0 + static_cast<double>(i) * 0.01}, 0.0);
  }
  const auto view = data.Binned(256);
  const BinnedColumn& col = view->column(0);
  EXPECT_FALSE(col.exact);
  EXPECT_FALSE(view->all_exact());
  EXPECT_GE(col.num_bins, 2);
  EXPECT_LE(col.num_bins, 256);
  // Codes are monotone in the raw value and thresholds separate the bins.
  for (size_t i = 0; i + 1 < data.num_rows(); ++i) {
    if (data.Feature(i, 0) <= data.Feature(i + 1, 0)) {
      EXPECT_LE(col.codes[i], col.codes[i + 1]);
    }
  }
  for (size_t b = 0; b + 1 < col.thresholds.size(); ++b) {
    EXPECT_LT(col.thresholds[b], col.thresholds[b + 1]);
  }
  // The heavy tie lands alone in bin 0.
  EXPECT_EQ(col.codes[0], 0);
  EXPECT_GT(col.thresholds[0], 0.0);
  EXPECT_LT(col.thresholds[0], 1.0);
}

TEST(BinnedView, CacheIsSharedAndInvalidatedOnMutation) {
  Dataset data = MakeBlobs(30, 2.0, 11);
  const auto first = data.Binned(256);
  EXPECT_EQ(first.get(), data.Binned(256).get());  // Cached.
  EXPECT_NE(first.get(), data.Binned(64).get());   // Different bin budget.
  data.AddRow({0.0, 0.0, 0.0}, 0.0);
  const auto after = data.Binned(256);
  EXPECT_NE(first.get(), after.get());  // Mutation invalidates.
  EXPECT_EQ(after->num_rows(), data.num_rows());
}

// With <= 256 rows every column is exactly binned, so the histogram search
// considers the same candidate boundaries with the same integer class counts
// as the sort-based search: the grown tree partitions identically and
// training-row predictions match bit for bit.
TEST(Tree, HistogramMatchesExactOnExactlyBinnedData) {
  const Dataset data = MakeBlobs(60, 1.0, 17);  // 120 rows, weak separation.
  ASSERT_TRUE(data.Binned(256)->all_exact());
  TreeOptions histogram_options;
  histogram_options.split_mode = SplitMode::kHistogram;
  TreeOptions exact_options;
  exact_options.split_mode = SplitMode::kExact;
  DecisionTreeClassifier histogram_tree(histogram_options, 3);
  DecisionTreeClassifier exact_tree(exact_options, 3);
  histogram_tree.Train(data);
  exact_tree.Train(data);
  EXPECT_EQ(histogram_tree.node_count(), exact_tree.node_count());
  EXPECT_EQ(histogram_tree.depth(), exact_tree.depth());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    const auto h = histogram_tree.PredictProba(data.Row(i));
    const auto e = exact_tree.PredictProba(data.Row(i));
    ASSERT_EQ(h.size(), e.size());
    for (size_t c = 0; c < h.size(); ++c) {
      EXPECT_EQ(h[c], e[c]) << "row " << i << " class " << c;
    }
  }
  // Same splits => same impurity decreases.
  const auto hi = histogram_tree.FeatureImportance();
  const auto ei = exact_tree.FeatureImportance();
  ASSERT_EQ(hi.size(), ei.size());
  for (size_t j = 0; j < hi.size(); ++j) {
    EXPECT_EQ(hi[j].first, ei[j].first);
    EXPECT_DOUBLE_EQ(hi[j].second, ei[j].second);
  }
}

TEST(Tree, HistogramMatchesExactOnTiesAndConstantColumns) {
  // Heavy ties, a constant column, and an integer signal column.
  Dataset data = Dataset::ForClassification({"signal", "tied", "constant"}, {"a", "b"});
  support::Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    const double label = i % 2 == 0 ? 0.0 : 1.0;
    data.AddRow({label * 2.0 + static_cast<double>(rng.NextBelow(3)),
                 static_cast<double>(rng.NextBelow(2)), 5.0},
                label);
  }
  ASSERT_TRUE(data.Binned(256)->all_exact());
  TreeOptions histogram_options;
  histogram_options.split_mode = SplitMode::kHistogram;
  TreeOptions exact_options;
  exact_options.split_mode = SplitMode::kExact;
  DecisionTreeClassifier histogram_tree(histogram_options, 9);
  DecisionTreeClassifier exact_tree(exact_options, 9);
  histogram_tree.Train(data);
  exact_tree.Train(data);
  EXPECT_EQ(histogram_tree.node_count(), exact_tree.node_count());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_EQ(histogram_tree.Predict(data.Row(i)), exact_tree.Predict(data.Row(i)));
  }
}

// On continuous data with > 256 distinct values the histogram learner is an
// approximation; the acceptance bar is accuracy within 1% of the exact
// sort-based learner.
TEST(Forest, HistogramAccuracyWithinOnePercentOfExact)  {
  Dataset data = MakeBlobs(400, 2.0, 29);  // 800 rows: quantile compression.
  ASSERT_FALSE(data.Binned(256)->all_exact());
  ForestOptions histogram_options;
  histogram_options.num_trees = 24;
  histogram_options.seed = 7;
  histogram_options.tree.split_mode = SplitMode::kHistogram;
  ForestOptions exact_options = histogram_options;
  exact_options.tree.split_mode = SplitMode::kExact;
  RandomForestClassifier histogram_forest(histogram_options);
  RandomForestClassifier exact_forest(exact_options);
  histogram_forest.Train(data);
  exact_forest.Train(data);
  const double histogram_accuracy = TrainAccuracy(histogram_forest, data);
  const double exact_accuracy = TrainAccuracy(exact_forest, data);
  EXPECT_NEAR(histogram_accuracy, exact_accuracy, 0.01);

  const auto cv_factory = [](SplitMode mode) {
    return [mode] {
      ForestOptions options;
      options.num_trees = 16;
      options.seed = 3;
      options.tree.split_mode = mode;
      return std::unique_ptr<Classifier>(new RandomForestClassifier(options));
    };
  };
  const CvMetrics histogram_cv =
      CrossValidate(data, cv_factory(SplitMode::kHistogram), 5, 1);
  const CvMetrics exact_cv = CrossValidate(data, cv_factory(SplitMode::kExact), 5, 1);
  EXPECT_NEAR(histogram_cv.accuracy, exact_cv.accuracy, 0.01);
}

TEST(TreeRegressor, HistogramMatchesExactFitOnPiecewiseData) {
  Dataset data = Dataset::ForRegression({"x"}, "y");
  for (int i = 0; i < 100; ++i) {
    const double x = static_cast<double>(i);
    data.AddRow({x}, x < 50 ? 10.0 : -5.0);
  }
  TreeOptions histogram_options;
  histogram_options.split_mode = SplitMode::kHistogram;
  TreeOptions exact_options;
  exact_options.split_mode = SplitMode::kExact;
  DecisionTreeRegressor histogram_tree(histogram_options);
  DecisionTreeRegressor exact_tree(exact_options);
  histogram_tree.Train(data);
  exact_tree.Train(data);
  for (size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_NEAR(histogram_tree.Predict(data.Row(i)), exact_tree.Predict(data.Row(i)),
                1e-9);
  }
}

// TrainIndexed on a bootstrap-style index view must reproduce training on the
// materialised Subset copy: the gather orders are identical, so the fitted
// parameters (and therefore predictions) match exactly for the non-tree
// learners, and for exact-mode forests the whole RNG stream lines up.
TEST(TrainIndexed, MatchesSubsetTrainingForAllLearners) {
  const Dataset data = MakeBlobs(80, 1.5, 31);
  support::Rng rng(13);
  std::vector<size_t> rows(data.num_rows());
  for (auto& row : rows) {
    row = rng.NextBelow(data.num_rows());  // With repeats, like a bag.
  }
  const Dataset subset = data.Subset(rows);
  const auto probe = [&](const Classifier& a, const Classifier& b) {
    for (size_t i = 0; i < 20; ++i) {
      const auto pa = a.PredictProba(data.Row(i));
      const auto pb = b.PredictProba(data.Row(i));
      ASSERT_EQ(pa.size(), pb.size());
      for (size_t c = 0; c < pa.size(); ++c) {
        EXPECT_EQ(pa[c], pb[c]) << "row " << i;
      }
    }
  };

  LogisticClassifier logistic_indexed;
  logistic_indexed.TrainIndexed(data, rows);
  LogisticClassifier logistic_subset;
  logistic_subset.Train(subset);
  probe(logistic_indexed, logistic_subset);

  NaiveBayesClassifier bayes_indexed;
  bayes_indexed.TrainIndexed(data, rows);
  NaiveBayesClassifier bayes_subset;
  bayes_subset.Train(subset);
  probe(bayes_indexed, bayes_subset);

  KnnClassifier knn_indexed(5);
  knn_indexed.TrainIndexed(data, rows);
  KnnClassifier knn_subset(5);
  knn_subset.Train(subset);
  probe(knn_indexed, knn_subset);

  // Exact-mode forest: split search does not depend on dataset-global
  // binning, so index-view bagging must equal Subset bagging bit for bit.
  ForestOptions forest_options;
  forest_options.num_trees = 8;
  forest_options.seed = 21;
  forest_options.tree.split_mode = SplitMode::kExact;
  RandomForestClassifier forest_indexed(forest_options);
  forest_indexed.TrainIndexed(data, rows);
  RandomForestClassifier forest_subset(forest_options);
  forest_subset.Train(subset);
  probe(forest_indexed, forest_subset);
}

TEST(TrainIndexed, LinearRegressorMatchesSubset) {
  Dataset data = Dataset::ForRegression({"a", "b"}, "y");
  support::Rng rng(37);
  for (int i = 0; i < 150; ++i) {
    const double a = rng.Uniform(-5, 5);
    const double b = rng.Uniform(-5, 5);
    data.AddRow({a, b}, 1.0 + 2.0 * a - 0.5 * b + rng.Normal(0, 0.05));
  }
  std::vector<size_t> rows;
  for (size_t i = 0; i < data.num_rows(); i += 2) {
    rows.push_back(i);
  }
  LinearRegressor indexed;
  indexed.TrainIndexed(data, rows);
  LinearRegressor subset;
  subset.Train(data.Subset(rows));
  ASSERT_EQ(indexed.weights().size(), subset.weights().size());
  for (size_t j = 0; j < indexed.weights().size(); ++j) {
    EXPECT_EQ(indexed.weights()[j], subset.weights()[j]);
  }
}

// Forest training and CV on index views must not depend on the worker count:
// per-tree RNG streams are keyed by task index and results are reduced in
// index order.
TEST(Determinism, ForestAndCvBitIdenticalAcrossThreadCounts) {
  const Dataset data = MakeBlobs(100, 1.0, 41);
  const auto run = [&](int threads) {
    support::ThreadPool::SetGlobalThreads(threads);
    ForestOptions options;
    options.num_trees = 16;
    options.seed = 13;
    RandomForestClassifier forest(options);
    forest.TrainIndexed(data, AllRows(data));
    std::vector<double> outputs = ForestOutputs(forest, data);
    const CvMetrics cv = CrossValidate(
        data,
        [] {
          ForestOptions inner;
          inner.num_trees = 8;
          inner.seed = 5;
          return std::unique_ptr<Classifier>(new RandomForestClassifier(inner));
        },
        4, 17);
    outputs.push_back(cv.accuracy);
    outputs.push_back(cv.macro_f1);
    outputs.push_back(cv.auc);
    support::ThreadPool::SetGlobalThreads(0);
    return outputs;
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << i;
  }
}

}  // namespace
}  // namespace ml
