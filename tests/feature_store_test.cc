// Out-of-core columnar feature store: format round-trips, string-table
// dedup, chunk-boundary cases, corruption tolerance (bit flips, truncation,
// torn directory), binning parity with the in-memory BinnedView, and the
// streamed-vs-in-memory training bit-identity the store exists to provide.
#include "src/ml/feature_store.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/ml/binned.h"
#include "src/ml/dataset.h"
#include "src/ml/eval.h"
#include "src/ml/tree.h"
#include "src/support/rng.h"

namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// Synthetic classification rows: a few informative columns, one
// high-cardinality column (exercises quantile compression at small
// max_bins), integer class targets.
struct SyntheticRows {
  std::vector<std::string> feature_names;
  std::vector<std::string> class_names;
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
};

SyntheticRows MakeRows(size_t n, uint64_t seed) {
  SyntheticRows out;
  out.feature_names = {"a", "b", "c", "wide"};
  out.class_names = {"neg", "pos"};
  support::Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row(4);
    row[0] = static_cast<double>(rng.NextBelow(7));
    row[1] = static_cast<double>(rng.NextBelow(3)) * 0.5;
    row[2] = rng.NextBool(0.3) ? 1.0 : 0.0;
    row[3] = rng.NextDouble() * 100.0;  // Effectively all-distinct.
    const double target = (row[0] + row[2] * 3.0 > 4.0) != rng.NextBool(0.15) ? 1.0 : 0.0;
    out.rows.push_back(std::move(row));
    out.targets.push_back(target);
  }
  return out;
}

// Writes the synthetic rows to a fresh store at `path`.
uint64_t WriteStore(const std::string& path, const SyntheticRows& data,
                    ml::FeatureStoreOptions options) {
  auto writer =
      ml::FeatureStoreWriter::Create(path, data.feature_names, data.class_names, options);
  EXPECT_TRUE(writer.ok()) << writer.error().message();
  for (size_t i = 0; i < data.rows.size(); ++i) {
    writer.value()->Append("row_" + std::to_string(i), data.rows[i], data.targets[i]);
  }
  auto rows = writer.value()->Finish();
  EXPECT_TRUE(rows.ok()) << rows.error().message();
  return rows.ok() ? rows.value() : 0;
}

ml::Dataset MakeDataset(const SyntheticRows& data) {
  ml::Dataset set = ml::Dataset::ForClassification(data.feature_names, data.class_names);
  for (size_t i = 0; i < data.rows.size(); ++i) {
    set.AddRow(data.rows[i], data.targets[i]);
  }
  return set;
}

TEST(FeatureStore, RoundTripsRowsAndSchema) {
  const std::string path = TempPath("roundtrip.clfs");
  const auto data = MakeRows(100, 1);
  ml::FeatureStoreOptions options;
  options.chunk_rows = 32;
  EXPECT_EQ(WriteStore(path, data, options), 100u);

  auto store = ml::FeatureStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.error().message();
  const ml::FeatureStore& s = store.value();
  EXPECT_EQ(s.num_rows(), 100u);
  EXPECT_EQ(s.num_chunks(), 4u);  // 32+32+32+4.
  EXPECT_EQ(s.num_features(), 4u);
  EXPECT_TRUE(s.is_classification());
  EXPECT_EQ(s.feature_names(), data.feature_names);
  EXPECT_EQ(s.class_names(), data.class_names);
  EXPECT_EQ(s.stats().dropped_chunks, 0u);
  EXPECT_FALSE(s.stats().recovered_by_scan);
  EXPECT_TRUE(s.has_codes());

  // Every cell and target survives, both via chunks and via GatherRow.
  size_t global = 0;
  for (size_t c = 0; c < s.num_chunks(); ++c) {
    const auto chunk = s.chunk(c);
    EXPECT_EQ(chunk.row_begin, global);
    for (size_t r = 0; r < chunk.rows; ++r, ++global) {
      EXPECT_EQ(chunk.targets[r], data.targets[global]);
      for (size_t f = 0; f < s.num_features(); ++f) {
        EXPECT_EQ(chunk.Column(f)[r], data.rows[global][f]);
      }
      EXPECT_EQ(s.RowName(global), "row_" + std::to_string(global));
    }
    s.ReleaseChunk(c);
  }
  EXPECT_EQ(global, 100u);
  EXPECT_EQ(s.GatherRow(77), data.rows[77]);
}

TEST(FeatureStore, ToDatasetMatchesInMemoryConstruction) {
  const std::string path = TempPath("todataset.clfs");
  const auto data = MakeRows(64, 2);
  ml::FeatureStoreOptions options;
  options.chunk_rows = 10;
  WriteStore(path, data, options);
  auto store = ml::FeatureStore::Open(path);
  ASSERT_TRUE(store.ok());
  const ml::Dataset from_store = store.value().ToDataset();
  const ml::Dataset direct = MakeDataset(data);
  ASSERT_EQ(from_store.num_rows(), direct.num_rows());
  for (size_t i = 0; i < direct.num_rows(); ++i) {
    EXPECT_EQ(from_store.Target(i), direct.Target(i));
    for (size_t f = 0; f < direct.num_features(); ++f) {
      EXPECT_EQ(from_store.Row(i)[f], direct.Row(i)[f]);
    }
  }
}

// --- String table -----------------------------------------------------------

TEST(FeatureStoreStrings, DeduplicatesRepeatedNames) {
  const std::string path = TempPath("dedup.clfs");
  auto writer = ml::FeatureStoreWriter::Create(path, {"x"}, {"a", "b"});
  ASSERT_TRUE(writer.ok());
  const double x[] = {1.0};
  for (int i = 0; i < 50; ++i) {
    writer.value()->Append(i % 2 == 0 ? "even" : "odd", x, 0.0);
  }
  EXPECT_EQ(writer.value()->string_count(), 2u);
  ASSERT_TRUE(writer.value()->Finish().ok());
  auto store = ml::FeatureStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value().string_count(), 2u);
  EXPECT_EQ(store.value().RowName(0), "even");
  EXPECT_EQ(store.value().RowName(1), "odd");
  EXPECT_EQ(store.value().RowName(49), "odd");
}

TEST(FeatureStoreStrings, RoundTripsEmptyUtf8AndLongNames) {
  const std::string path = TempPath("names.clfs");
  const std::string empty;
  const std::string utf8 = "caf\xC3\xA9/\xE6\xA0\xB8::\xF0\x9F\x94\x92check";
  const std::string long_name(4096, 'n');
  auto writer = ml::FeatureStoreWriter::Create(path, {"x"}, {});
  ASSERT_TRUE(writer.ok());
  const double x[] = {0.5};
  writer.value()->Append(empty, x, 0.0);
  writer.value()->Append(utf8, x, 1.0);
  writer.value()->Append(long_name, x, 2.0);
  ASSERT_TRUE(writer.value()->Finish().ok());
  auto store = ml::FeatureStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value().RowName(0), empty);
  EXPECT_EQ(store.value().RowName(1), utf8);
  EXPECT_EQ(store.value().RowName(2), long_name);
  EXPECT_EQ(store.value().target_name(), "target");  // Regression default.
  EXPECT_FALSE(store.value().is_classification());
}

// --- Chunk boundaries -------------------------------------------------------

TEST(FeatureStoreChunks, ZeroRowStoreOpensEmpty) {
  const std::string path = TempPath("empty.clfs");
  auto writer = ml::FeatureStoreWriter::Create(path, {"x", "y"}, {"a", "b"});
  ASSERT_TRUE(writer.ok());
  auto rows = writer.value()->Finish();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), 0u);
  auto store = ml::FeatureStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.error().message();
  EXPECT_EQ(store.value().num_rows(), 0u);
  EXPECT_EQ(store.value().num_chunks(), 0u);
  EXPECT_EQ(store.value().num_features(), 2u);
}

TEST(FeatureStoreChunks, ExactlyOneChunkWhenRowsEqualChunkRows) {
  const std::string path = TempPath("onechunk.clfs");
  const auto data = MakeRows(16, 3);
  ml::FeatureStoreOptions options;
  options.chunk_rows = 16;
  WriteStore(path, data, options);
  auto store = ml::FeatureStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value().num_chunks(), 1u);
  EXPECT_EQ(store.value().chunk(0).rows, 16u);
}

TEST(FeatureStoreChunks, NonMultipleRowCountLeavesShortTailChunk) {
  const std::string path = TempPath("tail.clfs");
  const auto data = MakeRows(21, 4);
  ml::FeatureStoreOptions options;
  options.chunk_rows = 8;
  WriteStore(path, data, options);
  auto store = ml::FeatureStore::Open(path);
  ASSERT_TRUE(store.ok());
  ASSERT_EQ(store.value().num_chunks(), 3u);
  EXPECT_EQ(store.value().chunk(0).rows, 8u);
  EXPECT_EQ(store.value().chunk(1).rows, 8u);
  EXPECT_EQ(store.value().chunk(2).rows, 5u);
  EXPECT_EQ(store.value().num_rows(), 21u);
}

// --- Binning parity ---------------------------------------------------------

TEST(FeatureStoreCodes, CodesAndThresholdsMatchInMemoryBinnedView) {
  const std::string path = TempPath("codes.clfs");
  const auto data = MakeRows(300, 5);
  ml::FeatureStoreOptions options;
  options.chunk_rows = 64;
  options.max_bins = 16;  // Forces quantile compression on the wide column.
  WriteStore(path, data, options);
  auto store = ml::FeatureStore::Open(path);
  ASSERT_TRUE(store.ok());
  const ml::FeatureStore& s = store.value();
  ASSERT_TRUE(s.has_codes());

  const ml::Dataset set = MakeDataset(data);
  const auto view_ptr = set.Binned(16);
  const ml::BinnedView& view = *view_ptr;
  for (size_t f = 0; f < s.num_features(); ++f) {
    const auto& column = view.column(f);
    ASSERT_EQ(s.num_bins(f), column.num_bins) << "feature " << f;
    EXPECT_EQ(s.bin_exact(f), column.exact);
    const auto thresholds = s.thresholds(f);
    ASSERT_EQ(thresholds.size(), column.thresholds.size());
    for (size_t b = 0; b < thresholds.size(); ++b) {
      EXPECT_EQ(thresholds[b], column.thresholds[b]);
    }
    size_t global = 0;
    for (size_t c = 0; c < s.num_chunks(); ++c) {
      const auto chunk = s.chunk(c);
      const auto codes = chunk.Codes(f);
      for (size_t r = 0; r < chunk.rows; ++r, ++global) {
        ASSERT_EQ(codes[r], column.codes[global])
            << "feature " << f << " row " << global;
      }
    }
  }
}

// --- Corruption tolerance ---------------------------------------------------

// Flips one byte inside the given file offset range.
void FlipByte(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

uint64_t FileSize(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  return static_cast<uint64_t>(f.tellg());
}

TEST(FeatureStoreCorruption, BitFlipInChunkDropsOnlyThatChunk) {
  const std::string path = TempPath("flip.clfs");
  const auto data = MakeRows(96, 6);
  ml::FeatureStoreOptions options;
  options.chunk_rows = 32;
  WriteStore(path, data, options);
  {
    auto clean = ml::FeatureStore::Open(path);
    ASSERT_TRUE(clean.ok());
    ASSERT_EQ(clean.value().num_chunks(), 3u);
  }
  // Flip a byte at 45% of the file. Data/codes payloads dominate the layout
  // (96 rows x 4 features x 8 bytes ≈ 3 KiB per chunk, header+schema
  // < 200 B, strings/bins/directory < 10% at the tail), so this lands in
  // exactly one chunk's payload.
  const uint64_t offset = FileSize(path) * 45 / 100;
  FlipByte(path, offset);
  auto store = ml::FeatureStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.error().message();
  EXPECT_EQ(store.value().stats().dropped_chunks, 1u);
  EXPECT_FALSE(store.value().stats().recovered_by_scan);
  EXPECT_EQ(store.value().num_chunks(), 2u);
  EXPECT_EQ(store.value().num_rows(), 64u);
  // Surviving chunks still serve correct bytes. Surviving rows are
  // renumbered densely, so recover each row's original index from its
  // interned name ("row_<original>").
  for (size_t c = 0; c < store.value().num_chunks(); ++c) {
    const auto chunk = store.value().chunk(c);
    for (size_t r = 0; r < chunk.rows; ++r) {
      const std::string& name = store.value().StringAt(chunk.name_ids[r]);
      ASSERT_EQ(name.substr(0, 4), "row_");
      const size_t original = std::stoul(name.substr(4));
      for (size_t f = 0; f < 4; ++f) {
        EXPECT_EQ(chunk.Column(f)[r], data.rows[original][f]);
      }
    }
  }
}

TEST(FeatureStoreCorruption, TruncationRecoversIntactPrefixByScan) {
  const std::string path = TempPath("trunc.clfs");
  const auto data = MakeRows(96, 7);
  ml::FeatureStoreOptions options;
  options.chunk_rows = 32;
  options.write_codes = false;  // Data chunks only: predictable layout.
  WriteStore(path, data, options);
  // Cut the file mid-way: footer, directory, string table, and the tail
  // chunk all vanish. The scan recovers the intact prefix chunks.
  const uint64_t cut = FileSize(path) / 2;
  ASSERT_EQ(truncate(path.c_str(), static_cast<off_t>(cut)), 0);
  auto store = ml::FeatureStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.error().message();
  EXPECT_TRUE(store.value().stats().recovered_by_scan);
  EXPECT_GE(store.value().stats().dropped_chunks, 1u);
  EXPECT_FALSE(store.value().has_codes());
  EXPECT_LT(store.value().num_rows(), 96u);
  EXPECT_GT(store.value().num_rows(), 0u);
  for (size_t c = 0; c < store.value().num_chunks(); ++c) {
    const auto chunk = store.value().chunk(c);
    for (size_t r = 0; r < chunk.rows; ++r) {
      const size_t global = chunk.row_begin + r;
      EXPECT_EQ(chunk.targets[r], data.targets[global]);
      for (size_t f = 0; f < 4; ++f) {
        EXPECT_EQ(chunk.Column(f)[r], data.rows[global][f]);
      }
    }
  }
}

TEST(FeatureStoreCorruption, TornFooterFallsBackToScan) {
  const std::string path = TempPath("torn.clfs");
  const auto data = MakeRows(40, 8);
  ml::FeatureStoreOptions options;
  options.chunk_rows = 16;
  WriteStore(path, data, options);
  // Corrupt the footer magic (last 8 bytes).
  FlipByte(path, FileSize(path) - 4);
  auto store = ml::FeatureStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.error().message();
  EXPECT_TRUE(store.value().stats().recovered_by_scan);
  EXPECT_EQ(store.value().num_rows(), 40u);  // All data chunks intact.
}

TEST(FeatureStoreCorruption, GarbageFileFailsOpenCleanly) {
  const std::string path = TempPath("garbage.clfs");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a feature store at all, not even close.";
  }
  auto store = ml::FeatureStore::Open(path);
  EXPECT_FALSE(store.ok());
  auto missing = ml::FeatureStore::Open(TempPath("does_not_exist.clfs"));
  EXPECT_FALSE(missing.ok());
}

// --- Streamed-vs-in-memory training bit-identity ----------------------------

ml::TreeOptions StableTreeOptions() {
  ml::TreeOptions options;
  options.max_depth = 8;
  options.split_mode = ml::SplitMode::kHistogram;
  options.feature_sample = ml::FeatureSample::kStableByNode;
  options.features_per_split = 2;  // < num_features: exercises sampling.
  options.max_bins = 16;
  return options;
}

TEST(TrainStreaming, SingleTreeBitIdenticalToTrainIndexed) {
  const std::string path = TempPath("train_tree.clfs");
  const auto data = MakeRows(500, 9);
  ml::FeatureStoreOptions options;
  options.chunk_rows = 64;  // Multi-chunk.
  options.max_bins = 16;
  WriteStore(path, data, options);
  auto store = ml::FeatureStore::Open(path);
  ASSERT_TRUE(store.ok());

  const ml::Dataset set = MakeDataset(data);
  std::vector<size_t> all_rows(set.num_rows());
  for (size_t i = 0; i < all_rows.size(); ++i) {
    all_rows[i] = i;
  }
  ml::DecisionTreeClassifier indexed(StableTreeOptions(), /*seed=*/42);
  indexed.TrainIndexed(set, all_rows);
  ml::DecisionTreeClassifier streamed(StableTreeOptions(), /*seed=*/42);
  streamed.TrainStreaming(store.value());

  EXPECT_EQ(streamed.node_count(), indexed.node_count());
  EXPECT_EQ(streamed.depth(), indexed.depth());
  ASSERT_EQ(streamed.StructureDigest(), indexed.StructureDigest());
  for (size_t i = 0; i < data.rows.size(); ++i) {
    EXPECT_EQ(streamed.PredictProba(data.rows[i]), indexed.PredictProba(data.rows[i]));
  }
}

TEST(TrainStreaming, TreeHonorsBootstrapMultiplicities) {
  const std::string path = TempPath("train_bag.clfs");
  const auto data = MakeRows(200, 10);
  ml::FeatureStoreOptions options;
  options.chunk_rows = 50;
  options.max_bins = 16;
  WriteStore(path, data, options);
  auto store = ml::FeatureStore::Open(path);
  ASSERT_TRUE(store.ok());

  // A bootstrap bag as indices (for TrainIndexed) and as multiplicities
  // (for TrainStreaming): same multiset.
  support::Rng rng(77);
  std::vector<size_t> bag;
  std::vector<uint32_t> multiplicity(data.rows.size(), 0);
  for (size_t i = 0; i < data.rows.size(); ++i) {
    const size_t pick = rng.NextBelow(data.rows.size());
    bag.push_back(pick);
    ++multiplicity[pick];
  }
  const ml::Dataset set = MakeDataset(data);
  ml::DecisionTreeClassifier indexed(StableTreeOptions(), /*seed=*/7);
  indexed.TrainIndexed(set, bag);
  ml::DecisionTreeClassifier streamed(StableTreeOptions(), /*seed=*/7);
  streamed.TrainStreaming(store.value(), multiplicity);
  EXPECT_EQ(streamed.StructureDigest(), indexed.StructureDigest());
}

TEST(TrainStreaming, ForestBitIdenticalToTrainIndexedAtAnyThreads) {
  const std::string path = TempPath("train_forest.clfs");
  const auto data = MakeRows(400, 11);
  ml::FeatureStoreOptions options;
  options.chunk_rows = 128;
  WriteStore(path, data, options);
  auto store = ml::FeatureStore::Open(path);
  ASSERT_TRUE(store.ok());

  ml::ForestOptions forest_options;
  forest_options.num_trees = 8;
  forest_options.seed = 123;
  forest_options.tree = StableTreeOptions();
  forest_options.tree.max_bins = ml::BinnedView::kDefaultBins;

  const ml::Dataset set = MakeDataset(data);
  std::vector<size_t> all_rows(set.num_rows());
  for (size_t i = 0; i < all_rows.size(); ++i) {
    all_rows[i] = i;
  }
  ml::RandomForestClassifier indexed(forest_options);
  indexed.TrainIndexed(set, all_rows);
  ml::RandomForestClassifier streamed(forest_options);
  streamed.TrainStreaming(store.value());

  ASSERT_EQ(streamed.StructureDigest(), indexed.StructureDigest());
  for (size_t i = 0; i < data.rows.size(); i += 17) {
    EXPECT_EQ(streamed.PredictProba(data.rows[i]), indexed.PredictProba(data.rows[i]));
  }
  // Importances come from identical trees.
  EXPECT_EQ(streamed.FeatureImportance(), indexed.FeatureImportance());
}

TEST(TrainStreaming, ForestDigestStableAcrossRepeatRuns) {
  // Run under CLAIR_THREADS=4 via the _mt4 ctest re-run: the digest must not
  // depend on worker scheduling.
  const std::string path = TempPath("train_repeat.clfs");
  const auto data = MakeRows(300, 12);
  ml::FeatureStoreOptions options;
  options.chunk_rows = 64;
  WriteStore(path, data, options);
  auto store = ml::FeatureStore::Open(path);
  ASSERT_TRUE(store.ok());
  ml::ForestOptions forest_options;
  forest_options.num_trees = 6;
  forest_options.seed = 5;
  uint64_t first = 0;
  for (int run = 0; run < 3; ++run) {
    ml::RandomForestClassifier forest(forest_options);
    forest.TrainStreaming(store.value());
    if (run == 0) {
      first = forest.StructureDigest();
    } else {
      EXPECT_EQ(forest.StructureDigest(), first);
    }
  }
  EXPECT_NE(first, 0u);
}

// --- Dataset bulk append ----------------------------------------------------

TEST(DatasetAppendRows, EquivalentToRowByRowAddRow) {
  const auto data = MakeRows(60, 13);
  ml::Dataset one_by_one = MakeDataset(data);
  ml::Dataset bulk =
      ml::Dataset::ForClassification(data.feature_names, data.class_names);
  std::vector<double> row_major;
  for (const auto& row : data.rows) {
    row_major.insert(row_major.end(), row.begin(), row.end());
  }
  bulk.AppendRows(row_major, data.targets);
  ASSERT_EQ(bulk.num_rows(), one_by_one.num_rows());
  for (size_t i = 0; i < bulk.num_rows(); ++i) {
    EXPECT_EQ(bulk.Target(i), one_by_one.Target(i));
    for (size_t f = 0; f < bulk.num_features(); ++f) {
      EXPECT_EQ(bulk.Row(i)[f], one_by_one.Row(i)[f]);
    }
  }
}

// --- Ranking evaluator ------------------------------------------------------

TEST(TopKRanking, CountsHitsInScoreOrder) {
  const std::vector<double> scores = {0.9, 0.1, 0.8, 0.7, 0.2, 0.95};
  const std::vector<int> labels = {1, 0, 0, 1, 0, 1};
  const std::vector<size_t> ks = {1, 3, 6, 100};
  const auto metrics = ml::TopKRanking(scores, labels, ks);
  ASSERT_EQ(metrics.size(), 4u);
  // Order: idx5 (1), idx0 (1), idx2 (0), idx3 (1), idx4 (0), idx1 (0).
  EXPECT_EQ(metrics[0].k, 1u);
  EXPECT_EQ(metrics[0].hits, 1u);
  EXPECT_DOUBLE_EQ(metrics[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(metrics[0].recall, 1.0 / 3.0);
  EXPECT_EQ(metrics[1].hits, 2u);
  EXPECT_DOUBLE_EQ(metrics[1].precision, 2.0 / 3.0);
  EXPECT_EQ(metrics[2].hits, 3u);
  EXPECT_DOUBLE_EQ(metrics[2].recall, 1.0);
  EXPECT_EQ(metrics[3].k, 6u);  // Clamped to row count.
}

TEST(TopKRanking, TieBreaksByRowIndexStable) {
  const std::vector<double> scores = {0.5, 0.5, 0.5};
  const std::vector<int> labels = {0, 1, 0};
  const std::vector<size_t> ks = {1, 2};
  const auto metrics = ml::TopKRanking(scores, labels, ks);
  EXPECT_EQ(metrics[0].hits, 0u);  // Row 0 first on ties.
  EXPECT_EQ(metrics[1].hits, 1u);
}

}  // namespace
