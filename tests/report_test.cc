// Tests for the terminal renderers.
#include <gtest/gtest.h>

#include "src/report/render.h"

namespace report {
namespace {

TEST(Scatter, RendersPointsAndLegend) {
  Series series;
  series.label = "data";
  series.glyph = 'o';
  series.xs = {1, 10, 100};
  series.ys = {1, 10, 100};
  ScatterOptions options;
  options.log_x = true;
  options.log_y = true;
  options.title = "Test plot";
  options.x_label = "x";
  options.y_label = "y";
  const std::string out = RenderScatter({series}, options);
  EXPECT_NE(out.find("Test plot"), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("o = data"), std::string::npos);
  EXPECT_NE(out.find("log scale"), std::string::npos);
}

TEST(Scatter, LogAxesDropNonPositive) {
  Series series;
  series.xs = {-1, 0};
  series.ys = {1, 1};
  ScatterOptions options;
  options.log_x = true;
  const std::string out = RenderScatter({series}, options);
  EXPECT_NE(out.find("(no data)"), std::string::npos);
}

TEST(Scatter, MultipleSeriesDistinctGlyphs) {
  Series a;
  a.glyph = '*';
  a.label = "A";
  a.xs = {1};
  a.ys = {1};
  Series b;
  b.glyph = '+';
  b.label = "B";
  b.xs = {2};
  b.ys = {2};
  const std::string out = RenderScatter({a, b}, {});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(Bars, ScalesToWidth) {
  const std::string out = RenderBars({{"big", 100.0}, {"half", 50.0}}, 40, "title");
  EXPECT_NE(out.find("title"), std::string::npos);
  const size_t big_hashes = std::count(out.begin(), out.begin() + out.find("100"), '#');
  EXPECT_EQ(big_hashes, 40u);
  EXPECT_NE(out.find("half"), std::string::npos);
}

TEST(Table, AlignsColumns) {
  const std::string out = RenderTable({"name", "value"}, {{"x", "1"}, {"longer", "22"}});
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Csv, QuotesSpecialCharacters) {
  const std::string out = ToCsv({"a", "b"}, {{"plain", "with,comma"}, {"with\"quote", "x"}});
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_EQ(out.find("\"plain\""), std::string::npos);  // No needless quoting.
}

}  // namespace
}  // namespace report
