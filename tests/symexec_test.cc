// Tests for the SAT solver, bit-blaster, model counters, and symbolic
// executor, including property-style cross-validation of the bit-blaster
// against concrete expression evaluation.
#include <gtest/gtest.h>

#include "src/corpus/codegen.h"
#include "src/lang/interp.h"
#include "src/lang/parser.h"
#include "src/metrics/callgraph.h"
#include "src/support/rng.h"
#include "src/support/thread_pool.h"
#include "src/symexec/bitblast.h"
#include "src/symexec/counter.h"
#include "src/symexec/executor.h"
#include "src/symexec/sat.h"

namespace symx {
namespace {

lang::IrModule MustLower(std::string_view source) {
  auto unit = lang::Parse(source);
  EXPECT_TRUE(unit.ok()) << (unit.ok() ? "" : unit.error().ToString());
  auto module = lang::LowerToIr(unit.value());
  EXPECT_TRUE(module.ok()) << (module.ok() ? "" : module.error().ToString());
  return std::move(module).value();
}

// --- SAT solver -------------------------------------------------------------

TEST(Sat, SimpleSatisfiable) {
  SatSolver solver;
  const Var a = solver.NewVar();
  const Var b = solver.NewVar();
  solver.AddBinary(MakeLit(a, false), MakeLit(b, false));
  solver.AddBinary(MakeLit(a, true), MakeLit(b, false));
  EXPECT_EQ(solver.Solve(), SatResult::kSat);
  EXPECT_TRUE(solver.ModelValue(b));
}

TEST(Sat, SimpleUnsat) {
  SatSolver solver;
  const Var a = solver.NewVar();
  solver.AddUnit(MakeLit(a, false));
  solver.AddUnit(MakeLit(a, true));
  EXPECT_EQ(solver.Solve(), SatResult::kUnsat);
}

TEST(Sat, PigeonholeUnsat) {
  // 4 pigeons, 3 holes: classic small UNSAT needing real search.
  SatSolver solver;
  const int pigeons = 4;
  const int holes = 3;
  std::vector<std::vector<Var>> at(pigeons, std::vector<Var>(holes));
  for (auto& row : at) {
    for (auto& v : row) {
      v = solver.NewVar();
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) {
      clause.push_back(MakeLit(at[p][h], false));
    }
    solver.AddClause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        solver.AddBinary(MakeLit(at[p1][h], true), MakeLit(at[p2][h], true));
      }
    }
  }
  EXPECT_EQ(solver.Solve(), SatResult::kUnsat);
}

TEST(Sat, Assumptions) {
  SatSolver solver;
  const Var a = solver.NewVar();
  const Var b = solver.NewVar();
  solver.AddBinary(MakeLit(a, true), MakeLit(b, false));  // a -> b
  EXPECT_EQ(solver.Solve({MakeLit(a, false)}), SatResult::kSat);
  EXPECT_TRUE(solver.ModelValue(b));
  solver.AddUnit(MakeLit(b, true));
  EXPECT_EQ(solver.Solve({MakeLit(a, false)}), SatResult::kUnsat);
  EXPECT_EQ(solver.Solve({MakeLit(a, true)}), SatResult::kSat);
}

TEST(Sat, RandomThreeSatAgreesWithBruteForce) {
  // Cross-validate the solver against exhaustive checking on random 3-SAT.
  support::Rng rng(42);
  for (int iter = 0; iter < 200; ++iter) {
    const int num_vars = 8;
    const int num_clauses = 3 + static_cast<int>(rng.NextBelow(30));
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < num_clauses; ++c) {
      std::vector<Lit> clause;
      for (int k = 0; k < 3; ++k) {
        const Var v = static_cast<Var>(rng.NextBelow(num_vars));
        clause.push_back(MakeLit(v, rng.NextBool()));
      }
      clauses.push_back(clause);
    }
    bool brute_sat = false;
    for (uint32_t mask = 0; mask < (1u << num_vars) && !brute_sat; ++mask) {
      bool all = true;
      for (const auto& clause : clauses) {
        bool any = false;
        for (const Lit lit : clause) {
          const bool value = ((mask >> LitVar(lit)) & 1) != 0;
          if (value != LitNegated(lit)) {
            any = true;
            break;
          }
        }
        if (!any) {
          all = false;
          break;
        }
      }
      brute_sat = all;
    }
    SatSolver solver;
    for (int v = 0; v < num_vars; ++v) {
      solver.NewVar();
    }
    for (auto& clause : clauses) {
      solver.AddClause(std::move(clause));
    }
    EXPECT_EQ(solver.Solve() == SatResult::kSat, brute_sat) << "iteration " << iter;
  }
}

// --- Bit-blasting cross-validation -------------------------------------------

struct RandomExprCase {
  uint64_t seed;
};

class BitblastProperty : public ::testing::TestWithParam<uint64_t> {};

// Builds a random expression over `vars`, then checks that for a SAT model of
// (expr == K) the concrete evaluation agrees.
TEST_P(BitblastProperty, ModelsEvaluateConsistently) {
  support::Rng rng(GetParam());
  ExprPool pool(8);
  std::vector<ExprRef> vars = {pool.FreshVar("x"), pool.FreshVar("y")};
  // Random expression tree.
  std::vector<ExprRef> terms = vars;
  terms.push_back(pool.Const(static_cast<int64_t>(rng.NextBelow(7)) - 3));
  for (int step = 0; step < 6; ++step) {
    const ExprOp ops[] = {ExprOp::kAdd,  ExprOp::kSub, ExprOp::kMul, ExprOp::kAnd,
                          ExprOp::kOr,   ExprOp::kXor, ExprOp::kEq,  ExprOp::kNe,
                          ExprOp::kSlt,  ExprOp::kSle, ExprOp::kShl, ExprOp::kShr};
    const ExprOp op = ops[rng.NextBelow(sizeof(ops) / sizeof(ops[0]))];
    const ExprRef a = terms[rng.NextBelow(terms.size())];
    const ExprRef b = terms[rng.NextBelow(terms.size())];
    terms.push_back(pool.Binary(op, a, b));
  }
  const ExprRef expr = terms.back();

  SatSolver solver;
  BitBlaster blaster(pool, solver);
  blaster.Encode(expr);
  // Force the variables to exist in the solver.
  blaster.VarBits(0);
  blaster.VarBits(1);
  if (solver.Solve() != SatResult::kSat) {
    return;  // Constant-folded to a trivial formula with no model needed.
  }
  std::vector<int64_t> assignment = {blaster.ModelValueOf(0), blaster.ModelValueOf(1)};
  const int64_t concrete = pool.Eval(expr, assignment);
  // Re-encode equality with the concrete value and check satisfiability
  // under the same assignment, pinned via unit clauses.
  SatSolver solver2;
  BitBlaster blaster2(pool, solver2);
  const ExprRef eq = pool.Binary(ExprOp::kEq, expr, pool.Const(concrete));
  blaster2.AssertTrue(eq);
  for (int var_id = 0; var_id < 2; ++var_id) {
    const auto& bits = blaster2.VarBits(var_id);
    const uint64_t value = static_cast<uint64_t>(assignment[static_cast<size_t>(var_id)]);
    for (size_t i = 0; i < bits.size(); ++i) {
      solver2.AddUnit(MakeLit(bits[i], ((value >> i) & 1) == 0));
    }
  }
  EXPECT_EQ(solver2.Solve(), SatResult::kSat) << pool.ToString(expr);
}

INSTANTIATE_TEST_SUITE_P(RandomExprs, BitblastProperty,
                         ::testing::Range<uint64_t>(1, 60));

// --- Model counting ----------------------------------------------------------

TEST(Counter, ExactCountSmallRange) {
  ExprPool pool(8);
  const ExprRef x = pool.FreshVar("x");
  // 0 <= x < 10 over signed 8-bit: exactly 10 models.
  std::vector<ExprRef> constraints = {
      pool.Binary(ExprOp::kSle, pool.Const(0), x),
      pool.Binary(ExprOp::kSlt, x, pool.Const(10)),
  };
  const CountResult result = CountExact(pool, constraints, {0}, 1000);
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.models, 10u);
}

TEST(Counter, ExactCountConjunction) {
  ExprPool pool(8);
  const ExprRef x = pool.FreshVar("x");
  const ExprRef y = pool.FreshVar("y");
  // x in [0,4) and y == x: 4 models over (x, y).
  std::vector<ExprRef> constraints = {
      pool.Binary(ExprOp::kSle, pool.Const(0), x),
      pool.Binary(ExprOp::kSlt, x, pool.Const(4)),
      pool.Binary(ExprOp::kEq, y, x),
  };
  const CountResult result = CountExact(pool, constraints, {0, 1}, 1000);
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.models, 4u);
}

TEST(Counter, CapIsRespected) {
  ExprPool pool(8);
  const ExprRef x = pool.FreshVar("x");
  std::vector<ExprRef> constraints = {pool.Binary(ExprOp::kNe, x, pool.Const(5))};
  const CountResult result = CountExact(pool, constraints, {0}, 16);
  EXPECT_FALSE(result.exact);
  EXPECT_EQ(result.models, 16u);
}

TEST(Counter, SamplingMatchesExactFraction) {
  ExprPool pool(8);
  const ExprRef x = pool.FreshVar("x");
  // x >= 0 over signed 8-bit: exactly half the space.
  std::vector<ExprRef> constraints = {pool.Binary(ExprOp::kSle, pool.Const(0), x)};
  support::Rng rng(7);
  const double fraction = EstimateFraction(pool, constraints, rng, 4000);
  EXPECT_NEAR(fraction, 0.5, 0.05);
}

// --- Symbolic executor --------------------------------------------------------

TEST(Executor, CountsPathsOfDiamond) {
  const auto module = MustLower(R"(
    int main() {
      int a = input();
      int b = input();
      int r = 0;
      if (a > 0) { r += 1; }
      if (b > 0) { r += 2; }
      return r;
    }
  )");
  const SymExecResult result = Explore(module, "main");
  EXPECT_EQ(result.paths_completed, 4u);
  EXPECT_TRUE(result.vulns.empty());
}

TEST(Executor, FindsGuardedOutOfBounds) {
  const auto module = MustLower(R"(
    int main() {
      int buf[4];
      int i = input();
      if (i >= 0 && i < 8) {
        buf[i] = 1;
        return buf[i];
      }
      return 0;
    }
  )");
  const SymExecResult result = Explore(module, "main");
  ASSERT_FALSE(result.vulns.empty());
  EXPECT_EQ(result.vulns[0].kind, VulnKind::kOutOfBounds);
  // Trigger range is i in [4, 8): 4 of 2^16 values.
  const double expected = 4.0 / 65536.0;
  EXPECT_GT(result.vulns[0].exploit_fraction, 0.0);
  EXPECT_LT(result.vulns[0].exploit_fraction, 100 * expected + 0.01);
}

TEST(Executor, NoFalsePositiveWhenFullyGuarded) {
  const auto module = MustLower(R"(
    int main() {
      int buf[4];
      int i = input();
      if (i >= 0 && i < 4) {
        buf[i] = 1;
        return buf[i];
      }
      return 0;
    }
  )");
  const SymExecResult result = Explore(module, "main");
  EXPECT_TRUE(result.vulns.empty()) << result.vulns.size();
}

TEST(Executor, FindsDivisionByZero) {
  const auto module = MustLower(R"(
    int main() {
      int d = input();
      return 100 / d;
    }
  )");
  const SymExecResult result = Explore(module, "main");
  ASSERT_EQ(result.vulns.size(), 1u);
  EXPECT_EQ(result.vulns[0].kind, VulnKind::kDivByZero);
  // Exactly one of 2^16 divisor values faults; sampling may see zero hits
  // but the site must still be reported via the SAT check.
  EXPECT_GE(result.vulns[0].paths, 1u);
}

TEST(Executor, DivisionGuardedIsSafe) {
  const auto module = MustLower(R"(
    int main() {
      int d = input();
      if (d == 0) { return 0; }
      return 100 / d;
    }
  )");
  const SymExecResult result = Explore(module, "main");
  EXPECT_TRUE(result.vulns.empty());
}

TEST(Executor, LoopPathExplosionIsBounded) {
  const auto module = MustLower(R"(
    int main() {
      int n = input();
      int total = 0;
      for (int i = 0; i < n; ++i) {
        total += i;
      }
      return total;
    }
  )");
  SymExecOptions options;
  options.max_paths = 32;
  const SymExecResult result = Explore(module, "main", options);
  EXPECT_TRUE(result.path_limit_hit);
  EXPECT_LE(result.paths_explored, 32u);
}

TEST(Executor, SymbolicIndexReadsCorrectCell) {
  // a[0..3] = {5,6,7,8}; return a[i] with i constrained to 2 via assume.
  const auto module = MustLower(R"(
    int main() {
      int a[4];
      a[0] = 5; a[1] = 6; a[2] = 7; a[3] = 8;
      int i = input();
      assume(i == 2);
      return a[i];
    }
  )");
  const SymExecResult result = Explore(module, "main");
  EXPECT_EQ(result.paths_completed, 1u);
  EXPECT_TRUE(result.vulns.empty());
}

TEST(Executor, InterproceduralVulnerability) {
  const auto module = MustLower(R"(
    int index_into(int idx) {
      int table[8];
      return table[idx];
    }
    int main() {
      int x = input();
      if (x > 100) {
        return index_into(x);
      }
      return 0;
    }
  )");
  const SymExecResult result = Explore(module, "main");
  ASSERT_FALSE(result.vulns.empty());
  EXPECT_EQ(result.vulns[0].kind, VulnKind::kOutOfBounds);
  EXPECT_EQ(result.vulns[0].function, "index_into");
}

TEST(Executor, AgreesWithInterpreterOnConcreteRuns) {
  // Property check: for each feasible completed path count, running the
  // interpreter over a grid of inputs must never produce an outcome class the
  // executor considers impossible (no vulns reported => no faults observed).
  const auto module = MustLower(R"(
    int main() {
      int a = input();
      int r = 0;
      if (a > 5) { r = a - 5; } else { r = 5 - a; }
      if (r % 2 == 0) { r += 10; }
      return r;
    }
  )");
  const SymExecResult sym = Explore(module, "main");
  EXPECT_TRUE(sym.vulns.empty());
  for (int64_t a = -20; a <= 20; ++a) {
    const auto trace = lang::Execute(module, "main", {}, {a});
    EXPECT_EQ(trace.outcome, lang::ExecOutcome::kReturned) << "a=" << a;
  }
}


TEST(Executor, EmptySymbolicLoopExhaustsBudget) {
  // Regression: an instruction-free loop body must still consume the step
  // budget (blocks without instructions execute only terminators).
  const auto module = MustLower(R"(
    int main() {
      int x = input();
      while (x > 0) { }
      return 0;
    }
  )");
  SymExecOptions options;
  options.max_paths = 8;
  options.max_steps_per_path = 256;
  options.max_total_steps = 1024;
  const SymExecResult result = Explore(module, "main", options);
  EXPECT_GT(result.paths_explored, 0u);  // Terminated at all.
}

TEST(Executor, RunawayExpressionsAreConcretized) {
  // x doubles every iteration: without concretization the expression tree
  // for x explodes and bit-blasting dominates. With max_expr_nodes the
  // exploration stays cheap and bounded.
  const auto module = MustLower(R"(
    int main() {
      int x = input();
      for (int i = 0; i < 200; ++i) {
        x = x * x + x;
      }
      return x;
    }
  )");
  SymExecOptions options;
  options.max_paths = 4;
  options.max_expr_nodes = 64;
  options.max_total_steps = 1 << 12;
  const SymExecResult result = Explore(module, "main", options);
  EXPECT_GT(result.paths_explored, 0u);
}

TEST(Executor, SolverQueryBudgetDegradesGracefully) {
  const auto module = MustLower(R"(
    int main() {
      int r = 0;
      for (int i = 0; i < 6; ++i) {
        int x = input();
        if (x * x - x > 100) { r += 1; }
      }
      return r;
    }
  )");
  SymExecOptions options;
  options.max_paths = 128;
  options.max_solver_queries = 4;
  options.solver_conflict_budget = 100;
  const SymExecResult result = Explore(module, "main", options);
  // Budget exhaustion must not prevent termination.
  EXPECT_GT(result.paths_explored, 0u);
  EXPECT_LE(result.solver_queries, 4u + 4u);  // Feasibility plus counting slack.
}

// --- Incremental solving equivalence -----------------------------------------

TEST(Sat, IncrementalSolvesMatchFreshOracle) {
  // A persistent solver under interleaved clause additions, assumption
  // queries (with and without decision restriction, with repeated assumption
  // sets to exercise trail reuse), and model blocking must agree with a
  // fresh solver rebuilt from scratch for every query.
  support::Rng rng(0xD1CE);
  constexpr int kNumVars = 8;
  for (int iter = 0; iter < 40; ++iter) {
    SatSolver inc;
    std::vector<Var> all_vars;
    for (int v = 0; v < kNumVars; ++v) {
      all_vars.push_back(inc.NewVar());
    }
    std::vector<std::vector<Lit>> clauses;
    const auto oracle_sat = [&](const std::vector<Lit>& assumptions) {
      SatSolver fresh;
      for (int v = 0; v < kNumVars; ++v) {
        fresh.NewVar();
      }
      for (const auto& clause : clauses) {
        fresh.AddClause(clause);
      }
      for (const Lit a : assumptions) {
        fresh.AddUnit(a);
      }
      return fresh.Solve() == SatResult::kSat;
    };
    const auto model_satisfies = [&](const std::vector<Lit>& assumptions) {
      for (const Lit a : assumptions) {
        if (inc.ModelValue(LitVar(a)) == LitNegated(a)) {
          return false;
        }
      }
      for (const auto& clause : clauses) {
        bool any = false;
        for (const Lit lit : clause) {
          if (inc.ModelValue(LitVar(lit)) != LitNegated(lit)) {
            any = true;
            break;
          }
        }
        if (!any) {
          return false;
        }
      }
      return true;
    };
    std::vector<Lit> prev_assumptions;
    for (int round = 0; round < 10; ++round) {
      const int new_clauses = static_cast<int>(rng.NextBelow(3));
      for (int c = 0; c < new_clauses; ++c) {
        std::vector<Lit> clause;
        const int len = 1 + static_cast<int>(rng.NextBelow(3));
        for (int k = 0; k < len; ++k) {
          clause.push_back(
              MakeLit(static_cast<Var>(rng.NextBelow(kNumVars)), rng.NextBool()));
        }
        clauses.push_back(clause);
        inc.AddClause(clause);
      }
      std::vector<Lit> assumptions;
      if (round % 3 == 2) {
        assumptions = prev_assumptions;  // Repeat: hits the trail-reuse path.
      } else {
        for (int v = 0; v < kNumVars; ++v) {
          if (rng.NextBelow(4) == 0) {
            assumptions.push_back(MakeLit(static_cast<Var>(v), rng.NextBool()));
          }
        }
      }
      prev_assumptions = assumptions;
      // Restricting decisions to ALL variables is always sound and drives
      // the restricted-query machinery (per-call heap, epoch stamps).
      const bool restricted = rng.NextBool();
      const SatResult got = inc.Solve(assumptions, 0, restricted ? &all_vars : nullptr);
      ASSERT_NE(got, SatResult::kUnknown);
      ASSERT_EQ(got == SatResult::kSat, oracle_sat(assumptions))
          << "iter " << iter << " round " << round;
      if (got == SatResult::kSat) {
        ASSERT_TRUE(model_satisfies(assumptions)) << "iter " << iter;
        if (rng.NextBool()) {
          // Block the model (enumeration style) and re-query under the same
          // assumptions: exercises the backjump + resumed-search path.
          std::vector<Lit> blocking;
          for (const Var v : all_vars) {
            blocking.push_back(MakeLit(v, inc.ModelValue(v)));
          }
          inc.AddBlockingClause(blocking);
          clauses.push_back(std::move(blocking));
          const SatResult after =
              inc.Solve(assumptions, 0, restricted ? &all_vars : nullptr);
          ASSERT_EQ(after == SatResult::kSat, oracle_sat(assumptions))
              << "iter " << iter << " round " << round << " after blocking";
          if (after == SatResult::kSat) {
            ASSERT_TRUE(model_satisfies(assumptions)) << "iter " << iter;
          }
        }
      }
    }
  }
}

TEST(Executor, IncrementalAndOneShotModesAgree) {
  // The incremental solver is the default; the one-shot oracle must produce
  // bit-identical exploration results on a corpus covering branching, vulns,
  // loops, symbolic arrays, and interprocedural flows.
  const char* kPrograms[] = {
      // Diamond branching.
      R"(int main() {
           int r = 0;
           int a = input(); if (a > 0) { r += 1; }
           int b = input(); if (b > 0) { r += 2; }
           int c = input(); if (c > 0) { r += 4; }
           return r;
         })",
      // Guarded and unguarded out-of-bounds.
      R"(int main() {
           int buf[8];
           int i = input();
           if (i >= 0 && i < 10) { buf[i] = 1; }
           return buf[0];
         })",
      // Division by zero behind a branch.
      R"(int main() {
           int d = input();
           int r = 0;
           if (d != 1) { r = 100 / d; }
           return r;
         })",
      // Loop with symbolic bound.
      R"(int main() {
           int n = input();
           int s = 0;
           for (int i = 0; i < n && i < 5; ++i) { s += i; }
           return s;
         })",
      // Symbolic array index read.
      R"(int main() {
           int t[4];
           t[0] = 10; t[1] = 20; t[2] = 30; t[3] = 40;
           int i = input();
           if (i >= 0 && i < 4) { return t[i]; }
           return 0;
         })",
      // Interprocedural vulnerability.
      R"(int poke(int i) { int b[4]; b[i] = 7; return b[0]; }
         int main() {
           int x = input();
           if (x > 2) { return poke(x); }
           return 0;
         })",
  };
  for (const char* source : kPrograms) {
    const auto module = MustLower(source);
    SymExecOptions options;
    options.max_paths = 256;
    options.max_solver_queries = 1 << 16;  // Generous: no budget divergence.
    options.incremental_solver = true;
    const SymExecResult inc = Explore(module, "main", options);
    options.incremental_solver = false;
    const SymExecResult oneshot = Explore(module, "main", options);
    EXPECT_EQ(inc.paths_explored, oneshot.paths_explored) << source;
    EXPECT_EQ(inc.paths_completed, oneshot.paths_completed) << source;
    EXPECT_EQ(inc.paths_aborted, oneshot.paths_aborted) << source;
    EXPECT_EQ(inc.paths_faulted, oneshot.paths_faulted) << source;
    EXPECT_EQ(inc.paths_infeasible_assume, oneshot.paths_infeasible_assume) << source;
    EXPECT_EQ(inc.forks, oneshot.forks) << source;
    ASSERT_EQ(inc.vulns.size(), oneshot.vulns.size()) << source;
    for (size_t i = 0; i < inc.vulns.size(); ++i) {
      EXPECT_EQ(inc.vulns[i].kind, oneshot.vulns[i].kind) << source;
      EXPECT_EQ(inc.vulns[i].function, oneshot.vulns[i].function) << source;
      EXPECT_EQ(inc.vulns[i].line, oneshot.vulns[i].line) << source;
      EXPECT_EQ(inc.vulns[i].paths, oneshot.vulns[i].paths) << source;
      EXPECT_EQ(inc.vulns[i].exploit_fraction, oneshot.vulns[i].exploit_fraction)
          << source;
    }
    // Solver-query counts are NOT compared: the modes may find different
    // models, so cache-hit patterns (and therefore query counts) can differ
    // while every exploration-visible result stays identical.
  }
}

// --- Range-guided path pruning ----------------------------------------------

// Semantic exploration results that must be bit-identical whether or not the
// range domain pruned solver queries. Counter fields (solver_queries,
// range_pruned, sat_conflicts, model_reuse_hits) are intentionally excluded:
// differing query counts are the optimisation's whole point.
void ExpectSameExploration(const SymExecResult& a, const SymExecResult& b,
                           const std::string& label) {
  EXPECT_EQ(a.paths_explored, b.paths_explored) << label;
  EXPECT_EQ(a.paths_completed, b.paths_completed) << label;
  EXPECT_EQ(a.paths_aborted, b.paths_aborted) << label;
  EXPECT_EQ(a.paths_infeasible_assume, b.paths_infeasible_assume) << label;
  EXPECT_EQ(a.paths_faulted, b.paths_faulted) << label;
  EXPECT_EQ(a.paths_limited, b.paths_limited) << label;
  EXPECT_EQ(a.path_limit_hit, b.path_limit_hit) << label;
  EXPECT_EQ(a.forks, b.forks) << label;
  EXPECT_EQ(a.symbolic_inputs, b.symbolic_inputs) << label;
  ASSERT_EQ(a.vulns.size(), b.vulns.size()) << label;
  for (size_t i = 0; i < a.vulns.size(); ++i) {
    EXPECT_EQ(a.vulns[i].kind, b.vulns[i].kind) << label;
    EXPECT_EQ(a.vulns[i].function, b.vulns[i].function) << label;
    EXPECT_EQ(a.vulns[i].line, b.vulns[i].line) << label;
    EXPECT_EQ(a.vulns[i].paths, b.vulns[i].paths) << label;
    EXPECT_EQ(a.vulns[i].exploit_fraction, b.vulns[i].exploit_fraction) << label;
  }
}

TEST(Executor, RangePruningPreservesExplorationResults) {
  const char* kPrograms[] = {
      // Correlated branches: the inner guards are implied or refuted by the
      // outer ones, the bread-and-butter pruning case.
      R"(int main() {
           int x = input();
           int r = 0;
           if (x > 5) {
             if (x > 3) { r += 1; }
             if (x < 2) { r += 2; }
           }
           return r;
         })",
      // Array access whose bounds check is subsumed by earlier guards.
      R"(int main() {
           int buf[8];
           int i = input();
           if (i >= 0) {
             if (i < 8) {
               buf[i] = 1;
               return buf[i];
             }
           }
           return 0;
         })",
      // Equality/disequality holes a convex interval cannot express.
      R"(int main() {
           int x = input();
           int r = 0;
           if (x == 7) { r = 70; }
           if (x != 7) { r = 7; }
           return 100 / (x - 6);
         })",
      // Division guarded transitively.
      R"(int main() {
           int d = input();
           if (d > 0) { return 100 / d; }
           return 0;
         })",
      // Loop with symbolic bound: loop-carried guards accumulate.
      R"(int main() {
           int n = input();
           int s = 0;
           for (int i = 0; i < n && i < 5; ++i) { s += i; }
           return s;
         })",
      // Interprocedural vulnerability.
      R"(int poke(int i) { int b[4]; b[i] = 7; return b[0]; }
         int main() {
           int x = input();
           if (x > 2) { return poke(x); }
           return 0;
         })",
  };
  uint64_t total_pruned = 0;
  for (const char* source : kPrograms) {
    const auto module = MustLower(source);
    SymExecOptions options;
    options.max_paths = 256;
    options.max_solver_queries = 1 << 16;  // Generous: no budget divergence.
    options.range_pruning = false;
    const SymExecResult ref = Explore(module, "main", options);
    options.range_pruning = true;
    const SymExecResult pruned = Explore(module, "main", options);
    ExpectSameExploration(ref, pruned, source);
    EXPECT_EQ(ref.range_pruned, 0u) << source;
    EXPECT_LE(pruned.solver_queries, ref.solver_queries) << source;
    total_pruned += pruned.range_pruned;
  }
  // The corpus above is built to be decidable: pruning must actually fire.
  EXPECT_GT(total_pruned, 0u);
}

TEST(Executor, RangePruningAgreesOnGeneratedCorpus) {
  // Randomized breadth: generated MiniC programs (branch-heavy, array-heavy,
  // interprocedural) must explore identically with and without pruning.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    support::Rng rng(seed * 104729);
    corpus::AppStyle style;
    style.complexity = rng.NextDouble() * 0.6;
    style.unsafety = rng.NextDouble();
    style.taintiness = rng.NextDouble();
    const std::string source = corpus::GenerateMiniCFile(rng, style, 120);
    const auto module = MustLower(source);
    const metrics::CallGraph graph(module);
    const auto roots = graph.Roots();
    ASSERT_FALSE(roots.empty());

    SymExecOptions options;
    options.max_paths = 48;
    options.max_steps_per_path = 2048;
    options.exploit_sample_trials = 32;
    options.max_solver_queries = 1 << 16;
    options.range_pruning = false;
    const SymExecResult ref = Explore(module, roots.front(), options);
    options.range_pruning = true;
    const SymExecResult pruned = Explore(module, roots.front(), options);
    ExpectSameExploration(ref, pruned, "seed " + std::to_string(seed));
    EXPECT_LE(pruned.solver_queries, ref.solver_queries) << "seed " << seed;
  }
}

TEST(Executor, RangePruningSkipsSolverQueries) {
  // Every inner decision is implied by the outer guards, so the pruned run
  // must answer most feasibility checks without the solver.
  const auto module = MustLower(R"(
    int main() {
      int x = input();
      int buf[8];
      int r = 0;
      if (x >= 0) {
        if (x < 8) {
          buf[x] = 1;
          if (x >= 0) { r += 1; }
          if (x > 9) { r += 2; }
          r += buf[x];
        }
      }
      return r;
    }
  )");
  SymExecOptions options;
  options.max_solver_queries = 1 << 16;
  options.range_pruning = false;
  const SymExecResult ref = Explore(module, "main", options);
  options.range_pruning = true;
  const SymExecResult pruned = Explore(module, "main", options);
  ExpectSameExploration(ref, pruned, "correlated guards");
  EXPECT_GT(pruned.range_pruned, 0u);
  EXPECT_LT(pruned.solver_queries, ref.solver_queries);
}

TEST(Executor, PruneRateFeatureIsReported) {
  const auto module = MustLower(R"(
    int main() {
      int x = input();
      int r = 0;
      if (x > 4) {
        if (x > 2) { r += 1; }
        if (x < 0) { r += 2; }
      }
      return r;
    }
  )");
  SymExecOptions options;
  const metrics::FeatureVector on = SymexFeatures(module, options);
  EXPECT_GT(on.Get("symx.range_pruned"), 0.0);
  EXPECT_GT(on.Get("symx.range_prune_rate"), 0.0);
  EXPECT_LE(on.Get("symx.range_prune_rate"), 1.0);
  options.range_pruning = false;
  const metrics::FeatureVector off = SymexFeatures(module, options);
  EXPECT_EQ(off.Get("symx.range_pruned"), 0.0);
  EXPECT_EQ(off.Get("symx.range_prune_rate"), 0.0);
  // Pruning must not change the semantic features, only the counters.
  for (const char* key : {"symx.paths", "symx.paths_completed",
                          "symx.vuln_sites", "symx.oob_sites",
                          "symx.divzero_sites", "symx.max_exploit_fraction",
                          "symx.sum_exploit_fraction"}) {
    EXPECT_EQ(on.Get(key), off.Get(key)) << key;
  }
}

TEST(Executor, SymexFeaturesAreThreadCountInvariant) {
  const auto module = MustLower(R"(
    int helper(int v) { int b[4]; if (v < 6) { b[v] = 1; } return b[0]; }
    int main() {
      int x = input();
      int r = 0;
      if (x > 0) { r = helper(x); }
      return r;
    }
  )");
  support::ThreadPool::SetGlobalThreads(1);
  const metrics::FeatureVector serial = SymexFeatures(module);
  support::ThreadPool::SetGlobalThreads(4);
  const metrics::FeatureVector parallel = SymexFeatures(module);
  support::ThreadPool::SetGlobalThreads(0);  // Restore the default.
  EXPECT_EQ(serial.ToString(), parallel.ToString());
}

// The serving scheduler keeps one incremental SAT session per worker thread
// alive across requests (SymExecOptions::reuse_solver_session). A recycled
// session must behave exactly like a fresh solver: same paths, same queries,
// same vulnerabilities — and the reuse must actually happen.
TEST(Executor, RecycledSolverSessionBitIdenticalToFresh) {
  const auto module = MustLower(R"(
    int main() {
      int buf[4];
      int i = input();
      int j = input();
      if (i >= 0 && i < 8 && j > i) {
        buf[i] = j;
        return buf[i];
      }
      return 0;
    }
  )");
  SymExecOptions fresh_options;
  fresh_options.reuse_solver_session = false;
  const SymExecResult fresh = Explore(module, "main", fresh_options);

  SymExecOptions reuse_options;  // reuse_solver_session defaults to true.
  const uint64_t reuses_before = SolverSessionReuseCount();
  const SymExecResult first = Explore(module, "main", reuse_options);
  const SymExecResult second = Explore(module, "main", reuse_options);
  // The second run leased this thread's warmed session after a Reset().
  EXPECT_GT(SolverSessionReuseCount(), reuses_before);

  for (const SymExecResult* recycled : {&first, &second}) {
    EXPECT_EQ(recycled->paths_explored, fresh.paths_explored);
    EXPECT_EQ(recycled->paths_completed, fresh.paths_completed);
    EXPECT_EQ(recycled->paths_faulted, fresh.paths_faulted);
    EXPECT_EQ(recycled->forks, fresh.forks);
    EXPECT_EQ(recycled->solver_queries, fresh.solver_queries);
    ASSERT_EQ(recycled->vulns.size(), fresh.vulns.size());
    for (size_t i = 0; i < fresh.vulns.size(); ++i) {
      EXPECT_EQ(recycled->vulns[i].kind, fresh.vulns[i].kind);
      EXPECT_EQ(recycled->vulns[i].line, fresh.vulns[i].line);
      // Exact equality: the counter runs on the same solver state.
      EXPECT_EQ(recycled->vulns[i].exploit_fraction, fresh.vulns[i].exploit_fraction);
    }
  }
}

}  // namespace
}  // namespace symx
