// The paper's §1 motivating scenario: "in selecting between two library
// implementations for use in a web service, our proposed metric would
// identify which is less likely to have vulnerabilities."
//
// Trains the metric, then ranks three synthetic parser libraries whose
// coding styles range from defensive to reckless.
#include <cstdio>

#include "src/clair/evaluator.h"
#include "src/clair/pipeline.h"
#include "src/clair/testbed.h"
#include "src/corpus/codegen.h"
#include "src/corpus/ecosystem.h"

namespace {

std::vector<metrics::SourceFile> MakeLibrary(const corpus::AppStyle& style, uint64_t seed,
                                             const char* name) {
  support::Rng rng(seed);
  std::vector<metrics::SourceFile> files;
  for (int i = 0; i < 3; ++i) {
    metrics::SourceFile file;
    file.path = std::string(name) + "/src/part" + std::to_string(i) + ".c";
    file.language = metrics::Language::kMiniC;
    file.text = corpus::GenerateMiniCFile(rng, style, 400);
    files.push_back(std::move(file));
  }
  return files;
}

}  // namespace

int main() {
  corpus::CorpusOptions corpus_options;
  corpus_options.mature_apps = 48;
  corpus_options.immature_apps = 8;
  corpus_options.size_scale = 0.01;
  const corpus::EcosystemGenerator ecosystem(corpus_options);
  clair::TestbedOptions testbed_options;
  testbed_options.deep_analysis_max_files = 1;
  const clair::Testbed testbed(ecosystem, testbed_options);
  clair::PipelineOptions pipeline_options;
  pipeline_options.cv_folds = 5;
  const clair::TrainingPipeline pipeline(testbed.Collect(), pipeline_options);
  const clair::TrainedModel model = pipeline.TrainFinal();
  const clair::SecurityEvaluator evaluator(model, testbed);

  corpus::AppStyle defensive;
  defensive.complexity = 0.2;
  defensive.unsafety = 0.05;
  defensive.taintiness = 0.3;
  corpus::AppStyle average;
  average.complexity = 0.5;
  average.unsafety = 0.5;
  average.taintiness = 0.5;
  corpus::AppStyle reckless;
  reckless.complexity = 0.9;
  reckless.unsafety = 0.95;
  reckless.taintiness = 0.9;

  const auto ranked = evaluator.RankLibraries({
      {"parse-fast (reckless style)", MakeLibrary(reckless, 7, "parse-fast")},
      {"parse-solid (defensive style)", MakeLibrary(defensive, 7, "parse-solid")},
      {"parse-plain (average style)", MakeLibrary(average, 7, "parse-plain")},
  });

  std::printf("Library ranking (least risky first):\n");
  for (size_t i = 0; i < ranked.size(); ++i) {
    std::printf("  %zu. %-30s overall risk %.3f\n", i + 1, ranked[i].subject.c_str(),
                ranked[i].overall_risk);
  }
  std::printf("\nDetailed report for the recommended library:\n%s",
              ranked.front().ToString().c_str());
  return 0;
}
