// §4.1's complementary signals: the RASQ attack surface of two deployment
// configurations and an attack graph over a small network, including the
// minimal patch set that disconnects the attacker from the crown jewels.
#include <cstdio>

#include "src/attack/graph.h"
#include "src/attack/surface.h"

int main() {
  // --- Attack surface (Howard et al.) --------------------------------------
  attack::SurfaceProfile hardened("server-hardened");
  hardened.Set(attack::SurfaceElement::kOpenSocket, 1);
  hardened.Set(attack::SurfaceElement::kEnabledAccount, 2);
  hardened.Set(attack::SurfaceElement::kCommandLineInput, 3);

  attack::SurfaceProfile defaults("server-default-install");
  defaults.Set(attack::SurfaceElement::kOpenSocket, 5);
  defaults.Set(attack::SurfaceElement::kRpcEndpoint, 3);
  defaults.Set(attack::SurfaceElement::kDefaultService, 4);
  defaults.Set(attack::SurfaceElement::kEnabledAccount, 6);
  defaults.Set(attack::SurfaceElement::kGuestAccessPath, 1);
  defaults.Set(attack::SurfaceElement::kWeakAcl, 2);

  std::printf("RASQ(%s) = %.2f\n", hardened.name().c_str(), hardened.Rasq());
  std::printf("RASQ(%s) = %.2f\n", defaults.name().c_str(), defaults.Rasq());
  std::printf("relative attack surface (default/hardened) = %.2fx\n\n",
              attack::RelativeRasq(defaults, hardened));

  // --- Attack graph (Sheyner et al.) ----------------------------------------
  attack::NetworkModel model;
  const int internet = model.AddHost("internet", {});
  const int dmz = model.AddHost("dmz-web", {"httpd", "sshd"});
  const int app = model.AddHost("app-server", {"appd"});
  const int db = model.AddHost("db-server", {"sqld", "cron"});
  model.Connect(internet, dmz);
  model.ConnectBoth(dmz, app);
  model.ConnectBoth(app, db);

  model.AddExploit({"CVE-httpd-rce", "httpd", attack::Privilege::kUser,
                    attack::Privilege::kUser, /*remote=*/true, 1.0});
  model.AddExploit({"CVE-sshd-bypass", "sshd", attack::Privilege::kUser,
                    attack::Privilege::kUser, /*remote=*/true, 3.0});
  model.AddExploit({"CVE-appd-deserial", "appd", attack::Privilege::kUser,
                    attack::Privilege::kUser, /*remote=*/true, 1.5});
  model.AddExploit({"CVE-sqld-auth", "sqld", attack::Privilege::kUser,
                    attack::Privilege::kUser, /*remote=*/true, 2.0});
  model.AddExploit({"CVE-cron-lpe", "cron", attack::Privilege::kUser,
                    attack::Privilege::kRoot, /*remote=*/false, 1.0});

  const attack::AttackGraph graph(model, {internet, attack::Privilege::kRoot});
  std::printf("attack graph: %zu states, %zu edges\n", graph.states().size(),
              graph.edges().size());

  const attack::AttackState goal{db, attack::Privilege::kRoot};
  std::printf("goal (root on db-server) reachable: %s\n",
              graph.CanReach(goal) ? "YES" : "no");

  const auto path = graph.ShortestPath(goal);
  std::printf("cheapest attack path (%zu steps):\n", path.size());
  double total_cost = 0.0;
  for (const auto& edge : path) {
    const auto& exploit = model.exploits()[edge.exploit];
    std::printf("  %-18s %s@%s -> %s@%s (cost %.1f)\n", exploit.id.c_str(),
                attack::PrivilegeName(edge.from.privilege),
                model.hosts()[edge.from.host].name.c_str(),
                attack::PrivilegeName(edge.to.privilege),
                model.hosts()[edge.to.host].name.c_str(), edge.cost);
    total_cost += edge.cost;
  }
  std::printf("total attacker effort: %.1f\n", total_cost);

  const auto cut = graph.MinimalCut(model, goal);
  std::printf("minimal patch set blocking the goal (%zu exploit(s)):\n", cut.size());
  for (const auto& id : cut) {
    std::printf("  patch %s\n", id.c_str());
  }
  return 0;
}
