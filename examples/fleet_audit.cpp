// Whole-system evaluation (§5.3 future work): assess a deployment made of
// several components — a network-facing frontend, an internal worker, and a
// privileged updater — and identify the weakest link.
//
// The corpus sweep here runs as a supervised worker fleet: the app corpus
// is sharded by content hash, each shard is swept by a real forked
// subprocess (this binary re-exec'd through ShardWorkerMain), heartbeats
// renew per-shard leases, and the coordinator merges the shard checkpoints
// into one dataset that is byte-identical to a single-process
// Testbed::Collect — then trains from the merged rows, the
// train-once/ship-the-rows workflow.
#include <sys/stat.h>

#include <cstdio>

#include "src/clair/serialize.h"
#include "src/clair/shard.h"
#include "src/clair/shard_worker.h"
#include "src/clair/system.h"
#include "src/corpus/codegen.h"
#include "src/corpus/ecosystem.h"
#include "src/support/thread_pool.h"

namespace {

// Shared between coordinator and re-exec'd workers: a fork/exec worker
// rebuilds the exact ecosystem + testbed config from this code instead of
// deserializing it.
corpus::CorpusOptions FleetCorpus() {
  corpus::CorpusOptions options;
  options.mature_apps = 48;
  options.immature_apps = 8;
  options.size_scale = 0.01;
  return options;
}

clair::TestbedOptions FleetTestbed() {
  clair::TestbedOptions options;
  options.deep_analysis_max_files = 1;
  return options;
}

std::vector<metrics::SourceFile> MakeComponent(const char* name, uint64_t seed,
                                               double unsafety, double taintiness) {
  support::Rng rng(seed);
  corpus::AppStyle style;
  style.unsafety = unsafety;
  style.taintiness = taintiness;
  metrics::SourceFile file;
  file.path = std::string(name) + "/main.c";
  file.language = metrics::Language::kMiniC;
  file.text = corpus::GenerateMiniCFile(rng, style, 500);
  return {file};
}

}  // namespace

int main(int argc, char** argv) {
  const corpus::EcosystemGenerator ecosystem(FleetCorpus());
  // Worker mode: when the coordinator below forks+execs this binary with
  // --clair-shard-worker=<task>, it becomes a shard worker and exits here.
  if (const int worker_exit =
          clair::ShardWorkerMain(argc, argv, ecosystem, FleetTestbed());
      worker_exit >= 0) {
    return worker_exit;
  }

  clair::ShardSweepOptions sweep;
  sweep.num_shards = 8;
  sweep.num_workers = 3;
  sweep.work_dir = "fleet_audit_work";
  sweep.collect_function_rows = false;  // This audit trains on app rows only.
  sweep.testbed = FleetTestbed();
  // Real subprocesses heartbeat once per app in wall time; size the lease
  // so only a genuinely dead or wedged worker gets its shard stolen.
  sweep.lease_ttl_ticks = 2000;
  ::mkdir(sweep.work_dir.c_str(), 0755);
  std::printf("sweeping %d shards with %d forked workers (lease TTL %d ticks)\n",
              sweep.num_shards, sweep.num_workers, sweep.lease_ttl_ticks);
  clair::ShardCoordinator coordinator(
      ecosystem, sweep,
      std::make_unique<clair::ForkWorkerTransport>("/proc/self/exe",
                                                   sweep.num_workers));
  auto swept = coordinator.Run();
  if (!swept.ok()) {
    std::printf("fleet sweep failed: %s\n", swept.error().ToString().c_str());
    return 1;
  }
  const auto& stats = swept.value().stats;
  std::printf("fleet sweep: %zu apps, %llu generations, %llu crashes, "
              "%llu leases revoked, %llu records healed\n",
              swept.value().records.size(),
              static_cast<unsigned long long>(stats.generations_launched),
              static_cast<unsigned long long>(stats.worker_crashes),
              static_cast<unsigned long long>(stats.leases_revoked),
              static_cast<unsigned long long>(stats.healed_records));

  // Serialize + reload the merged rows — the artefact a team would check in
  // next to its model configs. The merge is deterministic, so these bytes
  // match a 1-process sweep exactly.
  const std::string saved = clair::SaveRecords(swept.value().records);
  std::printf("serialized testbed: %zu apps, %zu bytes\n",
              swept.value().records.size(), saved.size());
  auto reloaded = clair::LoadRecords(saved);
  if (!reloaded.ok()) {
    std::printf("reload failed: %s\n", reloaded.error().ToString().c_str());
    return 1;
  }

  clair::PipelineOptions pipeline_options;
  pipeline_options.cv_folds = 5;
  const clair::TrainingPipeline pipeline(reloaded.value(), pipeline_options);
  const clair::TrainedModel model = pipeline.TrainFinal();
  const clair::Testbed testbed(ecosystem, FleetTestbed());
  const clair::SecurityEvaluator evaluator(model, testbed);
  const clair::SystemEvaluator system(evaluator);

  const clair::SystemReport report = system.Evaluate({
      {"edge-frontend", MakeComponent("edge-frontend", 11, 0.9, 0.9),
       /*network_facing=*/true, /*privileged=*/false},
      {"batch-worker", MakeComponent("batch-worker", 12, 0.4, 0.2),
       /*network_facing=*/false, /*privileged=*/false},
      {"priv-updater", MakeComponent("priv-updater", 13, 0.6, 0.4),
       /*network_facing=*/false, /*privileged=*/true},
  });

  std::printf("\n%s\n", report.ToString().c_str());
  std::printf("=> harden '%s' first: it dominates total system risk.\n",
              report.weakest_link.c_str());
  return 0;
}
