// Whole-system evaluation (§5.3 future work): assess a deployment made of
// several components — a network-facing frontend, an internal worker, and a
// privileged updater — and identify the weakest link. Also demonstrates
// record serialization: the testbed rows are saved and reloaded before
// training, the train-once/ship-the-rows workflow.
#include <cstdio>

#include "src/clair/serialize.h"
#include "src/clair/system.h"
#include "src/corpus/codegen.h"
#include "src/corpus/ecosystem.h"
#include "src/support/thread_pool.h"

namespace {

std::vector<metrics::SourceFile> MakeComponent(const char* name, uint64_t seed,
                                               double unsafety, double taintiness) {
  support::Rng rng(seed);
  corpus::AppStyle style;
  style.unsafety = unsafety;
  style.taintiness = taintiness;
  metrics::SourceFile file;
  file.path = std::string(name) + "/main.c";
  file.language = metrics::Language::kMiniC;
  file.text = corpus::GenerateMiniCFile(rng, style, 500);
  return {file};
}

}  // namespace

int main() {
  corpus::CorpusOptions corpus_options;
  corpus_options.mature_apps = 48;
  corpus_options.immature_apps = 8;
  corpus_options.size_scale = 0.01;
  const corpus::EcosystemGenerator ecosystem(corpus_options);
  clair::TestbedOptions testbed_options;
  testbed_options.deep_analysis_max_files = 1;
  const clair::Testbed testbed(ecosystem, testbed_options);

  // Collect once, serialize, and train from the reloaded rows — the
  // artefact a team would check in next to its model configs. Collection
  // fans out one task per app (worker count from CLAIR_THREADS); the rows
  // are bit-identical at any worker count.
  std::printf("collecting with %d worker(s)\n", support::ThreadPool::Global().size());
  const auto records = testbed.Collect();
  const auto cache = testbed.cache_stats();
  const std::string saved = clair::SaveRecords(records);
  std::printf("serialized testbed: %zu apps, %zu bytes\n", records.size(), saved.size());
  std::printf("feature cache: %llu hits / %llu misses (rows keyed on content)\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses));
  auto reloaded = clair::LoadRecords(saved);
  if (!reloaded.ok()) {
    std::printf("reload failed: %s\n", reloaded.error().ToString().c_str());
    return 1;
  }

  clair::PipelineOptions pipeline_options;
  pipeline_options.cv_folds = 5;
  const clair::TrainingPipeline pipeline(reloaded.value(), pipeline_options);
  const clair::TrainedModel model = pipeline.TrainFinal();
  const clair::SecurityEvaluator evaluator(model, testbed);
  const clair::SystemEvaluator system(evaluator);

  const clair::SystemReport report = system.Evaluate({
      {"edge-frontend", MakeComponent("edge-frontend", 11, 0.9, 0.9),
       /*network_facing=*/true, /*privileged=*/false},
      {"batch-worker", MakeComponent("batch-worker", 12, 0.4, 0.2),
       /*network_facing=*/false, /*privileged=*/false},
      {"priv-updater", MakeComponent("priv-updater", 13, 0.6, 0.4),
       /*network_facing=*/false, /*privileged=*/true},
  });

  std::printf("\n%s\n", report.ToString().c_str());
  std::printf("=> harden '%s' first: it dominates total system risk.\n",
              report.weakest_link.c_str());
  return 0;
}
