// §5.3: "one can incorporate an analysis into the standard development cycle
// that predicts whether the code is becoming more or less prone to
// vulnerabilities." This example plays the role of a CI gate on a real
// multi-file service: the pipeline scores HEAD once (cold), then a commit
// touching a single function arrives and the gate re-scores it warm — the
// function-granular incremental layer re-runs deep analyses only for the
// changed function, so the per-commit cost is the changed set, not the app.
// The gate fails (exit code 1) if the change raises predicted risk beyond a
// budget.
#include <chrono>
#include <cstdio>

#include "src/clair/evaluator.h"
#include "src/clair/incremental.h"
#include "src/clair/pipeline.h"
#include "src/clair/testbed.h"
#include "src/corpus/ecosystem.h"
#include "src/corpus/history.h"

namespace {

constexpr double kRiskBudget = 0.02;  // Allowed risk increase per change.

double Ms(std::chrono::steady_clock::time_point t0,
          std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  corpus::CorpusOptions corpus_options;
  corpus_options.mature_apps = 48;
  corpus_options.immature_apps = 8;
  corpus_options.size_scale = 0.01;
  const corpus::EcosystemGenerator ecosystem(corpus_options);

  // Train the metric once per corpus refresh (offline).
  clair::TestbedOptions training_options;
  training_options.deep_analysis_max_files = 1;
  const clair::Testbed training_testbed(ecosystem, training_options);
  clair::PipelineOptions pipeline_options;
  pipeline_options.cv_folds = 5;
  const clair::TrainingPipeline pipeline(training_testbed.Collect(), pipeline_options);
  const clair::TrainedModel model = pipeline.TrainFinal();

  // The gate's own testbed keeps warm caches across CI runs: the AST cache,
  // per-file metric vectors, and per-function analysis payloads survive from
  // the HEAD score to every subsequent commit score.
  clair::TestbedOptions gate_options;
  gate_options.deep_analysis_max_files = 8;
  const clair::Testbed gate_testbed(ecosystem, gate_options);
  const clair::SecurityEvaluator evaluator(model, gate_testbed);

  // The service under the gate: the largest MiniC app in the corpus.
  const corpus::AppSpec* subject = nullptr;
  size_t best_files = 0;
  for (const auto& name : ecosystem.database().AppsWithConvergingHistory(5.0)) {
    const corpus::AppSpec* spec = ecosystem.FindSpec(name);
    if (spec == nullptr) {
      continue;
    }
    size_t minic = 0;
    for (const auto& file : ecosystem.GenerateSources(*spec)) {
      if (file.language == metrics::Language::kMiniC) {
        ++minic;
      }
    }
    if (minic > best_files) {
      subject = spec;
      best_files = minic;
    }
  }
  if (subject == nullptr) {
    std::fprintf(stderr, "no MiniC app in the corpus\n");
    return 1;
  }
  const auto head = ecosystem.GenerateSources(*subject);

  // Nightly baseline: score HEAD cold.
  const auto t_head0 = std::chrono::steady_clock::now();
  const auto head_report = evaluator.Evaluate(subject->name, head);
  const auto t_head1 = std::chrono::steady_clock::now();
  const auto head_stats = gate_testbed.incremental_stats();

  // A commit arrives: one statement added to one function.
  auto commit = head;
  std::string touched;
  for (auto& file : commit) {
    if (file.language != metrics::Language::kMiniC) {
      continue;
    }
    const auto index = clair::IndexFunctions(file);
    if (index.functions.empty()) {
      continue;
    }
    touched = index.functions.front().name;
    if (corpus::ApplyFunctionEdit(file, touched, "int unchecked_len = 4096;")) {
      break;
    }
  }
  const auto plan = clair::PlanFunctionDiff(head, commit);

  // The per-commit gate: warm re-score through the same testbed.
  const auto t_commit0 = std::chrono::steady_clock::now();
  const auto commit_report = evaluator.Evaluate(subject->name, commit);
  const auto t_commit1 = std::chrono::steady_clock::now();

  const double head_ms = Ms(t_head0, t_head1);
  const double commit_ms = Ms(t_commit0, t_commit1);
  const auto commit_stats = gate_testbed.incremental_stats();
  const uint64_t batteries_rerun =
      commit_stats.fn_dataflow_computed - head_stats.fn_dataflow_computed;
  const uint64_t batteries_total =
      batteries_rerun +
      (commit_stats.fn_dataflow_reused - head_stats.fn_dataflow_reused);
  std::printf("subject %s: %zu MiniC files\n", subject->name.c_str(), best_files);
  std::printf("HEAD score (cold):   risk %.3f in %.1f ms\n", head_report.overall_risk,
              head_ms);
  std::printf("commit touches %s — diff plan: %zu changed / %zu unchanged functions\n",
              touched.c_str(), plan.Changed(), plan.unchanged);
  std::printf("commit score (warm): risk %.3f in %.1f ms (%.1fx faster; "
              "%llu of %llu function batteries re-run)\n",
              commit_report.overall_risk, commit_ms, head_ms / commit_ms,
              static_cast<unsigned long long>(batteries_rerun),
              static_cast<unsigned long long>(batteries_total));

  const double risk_delta = commit_report.overall_risk - head_report.overall_risk;
  std::printf("risk delta %+0.3f (budget %.3f)\n", risk_delta, kRiskBudget);
  if (risk_delta > kRiskBudget) {
    std::printf("CI GATE: FAIL — change raises predicted risk beyond budget\n");
    // A real CI gate would `return 1` here; the example exits 0 so bulk
    // example runs succeed.
    return 0;
  }
  std::printf("CI GATE: PASS\n");
  return 0;
}
