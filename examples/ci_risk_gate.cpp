// §5.3: "one can incorporate an analysis into the standard development cycle
// that predicts whether the code is becoming more or less prone to
// vulnerabilities." This example plays the role of a CI gate: it compares
// two versions of a module and fails (exit code 1) if the change raises the
// predicted risk beyond a threshold.
#include <cstdio>

#include "src/clair/evaluator.h"
#include "src/clair/pipeline.h"
#include "src/clair/testbed.h"
#include "src/corpus/codegen.h"
#include "src/corpus/ecosystem.h"

namespace {

constexpr double kRiskBudget = 0.02;  // Allowed risk increase per change.

// Two versions of the same ~500-line module. Version 1 is written
// defensively (bounds checks and divisor guards everywhere); version 2 is
// the same module after a "performance refactor" that stripped most guards
// and wired more raw external input into the hot paths — the style shift
// the trained metric is meant to catch before it ships.
std::vector<metrics::SourceFile> MakeVersion(double unsafety, double taintiness) {
  support::Rng rng(4242);  // Same stream: v2 differs only through the knobs.
  corpus::AppStyle style;
  style.complexity = 0.5;
  style.unsafety = unsafety;
  style.taintiness = taintiness;
  metrics::SourceFile file;
  file.path = "lookup.c";
  file.language = metrics::Language::kMiniC;
  file.text = corpus::GenerateMiniCFile(rng, style, 500);
  return {file};
}

}  // namespace

int main() {
  corpus::CorpusOptions corpus_options;
  corpus_options.mature_apps = 48;
  corpus_options.immature_apps = 8;
  corpus_options.size_scale = 0.01;
  const corpus::EcosystemGenerator ecosystem(corpus_options);
  clair::TestbedOptions testbed_options;
  testbed_options.deep_analysis_max_files = 1;
  const clair::Testbed testbed(ecosystem, testbed_options);
  clair::PipelineOptions pipeline_options;
  pipeline_options.cv_folds = 5;
  const clair::TrainingPipeline pipeline(testbed.Collect(), pipeline_options);
  const clair::TrainedModel model = pipeline.TrainFinal();
  const clair::SecurityEvaluator evaluator(model, testbed);

  const auto version1 = MakeVersion(/*unsafety=*/0.10, /*taintiness=*/0.40);
  const auto version2 = MakeVersion(/*unsafety=*/0.90, /*taintiness=*/0.85);
  const clair::VersionDelta delta = evaluator.CompareVersions(version1, version2);
  std::printf("%s\n", delta.ToString().c_str());

  if (delta.risk_delta > kRiskBudget) {
    std::printf("CI GATE: FAIL — change raises predicted risk by %+0.3f (budget %.3f)\n",
                delta.risk_delta, kRiskBudget);
    std::printf("Top contributing hypotheses:\n");
    for (size_t i = 0; i < delta.by_hypothesis.size() && i < 3; ++i) {
      std::printf("  %s (%+0.3f)\n", delta.by_hypothesis[i].first.c_str(),
                  delta.by_hypothesis[i].second);
    }
    // A real CI gate would `return 1` here; the example exits 0 so bulk
    // example runs succeed.
    return 0;
  }
  std::printf("CI GATE: PASS\n");
  return 0;
}
