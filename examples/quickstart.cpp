// Quickstart: train the clairvoyant security metric on a synthetic CVE
// ecosystem, then evaluate a small piece of code.
//
//   $ ./quickstart
//
// Walks the paper's full loop: testbed -> training -> developer-facing
// prediction with mitigation hints.
#include <cstdio>

#include "src/clair/evaluator.h"
#include "src/clair/pipeline.h"
#include "src/clair/testbed.h"
#include "src/corpus/ecosystem.h"

int main() {
  // 1. A small synthetic CVE ecosystem (stand-in for the NVD feed).
  corpus::CorpusOptions corpus_options;
  corpus_options.mature_apps = 48;
  corpus_options.immature_apps = 8;
  corpus_options.size_scale = 0.01;
  const corpus::EcosystemGenerator ecosystem(corpus_options);
  std::printf("ecosystem: %d apps, %zu CVE records\n",
              corpus_options.mature_apps + corpus_options.immature_apps,
              ecosystem.database().size());

  // 2. The testbed: select converging-history apps, extract code properties.
  clair::TestbedOptions testbed_options;
  testbed_options.deep_analysis_max_files = 1;
  const clair::Testbed testbed(ecosystem, testbed_options);
  const auto records = testbed.Collect();
  std::printf("testbed: %zu applications selected (>= 5-year history)\n", records.size());

  // 3. Training: cross-validate learners per hypothesis, keep the best.
  clair::PipelineOptions pipeline_options;
  pipeline_options.cv_folds = 5;
  const clair::TrainingPipeline pipeline(records, pipeline_options);
  const clair::TrainedModel model = pipeline.TrainFinal();
  std::printf("trained %zu hypothesis models\n\n", model.models().size());

  // 4. Evaluate developer code.
  const clair::SecurityEvaluator evaluator(model, testbed);
  metrics::SourceFile file;
  file.path = "request_handler.c";
  file.language = metrics::Language::kMiniC;
  file.text = R"(
    // Parses a framed request from the network.
    int table[64];
    int handle_request() {
      int length = input();
      int offset = input();
      table[offset] = length;        // Unchecked external index!
      int checksum = length / offset; // Unguarded division!
      sink(checksum);
      return table[offset];
    }
  )";
  const clair::SecurityReport report = evaluator.Evaluate("request_handler", {file});
  std::printf("%s", report.ToString().c_str());
  return 0;
}
