// Analysis-as-a-service: the clair::Scheduler serving a stream of score
// requests — the "clairvoyant oracle as a daemon" deployment the paper's
// §5.3 development-cycle integration implies. A CI fleet submits subjects
// asynchronously with priorities; the scheduler coalesces duplicate
// submissions, batches model inference across concurrent requests, and
// guarantees each answer is bit-identical to a standalone synchronous
// evaluation. This example trains a small model, then plays three roles:
// a release gate (high priority), a nightly fleet audit (low priority,
// heavily duplicated), and a fickle developer who cancels a request.
#include <cstdio>

#include "src/clair/pipeline.h"
#include "src/clair/scheduler.h"
#include "src/clair/testbed.h"
#include "src/corpus/codegen.h"
#include "src/corpus/ecosystem.h"
#include "src/support/rng.h"
#include "src/support/strings.h"

namespace {

std::vector<metrics::SourceFile> Component(uint64_t seed, double unsafety) {
  support::Rng rng(seed);
  corpus::AppStyle style;
  style.unsafety = unsafety;
  metrics::SourceFile file;
  file.path = support::Format("component_%llu.c",
                              static_cast<unsigned long long>(seed));
  file.language = metrics::Language::kMiniC;
  file.text = corpus::GenerateMiniCFile(rng, style, 120);
  return {file};
}

}  // namespace

int main() {
  // --- Train the oracle once (as quickstart does). --------------------------
  corpus::CorpusOptions corpus_options;
  corpus_options.mature_apps = 32;
  corpus_options.immature_apps = 4;
  corpus_options.size_scale = 0.01;
  const corpus::EcosystemGenerator ecosystem(corpus_options);
  clair::TestbedOptions testbed_options;
  testbed_options.deep_analysis_max_files = 1;
  const clair::Testbed testbed(ecosystem, testbed_options);
  clair::PipelineOptions pipeline_options;
  pipeline_options.cv_folds = 4;
  const clair::TrainingPipeline pipeline(testbed.Collect(), pipeline_options);
  const clair::TrainedModel model = pipeline.TrainFinal();
  std::printf("oracle trained on %d apps; serving...\n\n",
              corpus_options.mature_apps + corpus_options.immature_apps);

  // --- Serve a mixed request stream. ----------------------------------------
  clair::Scheduler scheduler(testbed, model);

  // The release gate scores one candidate at high priority.
  clair::ScoreRequest gate;
  gate.subject = "release-candidate";
  gate.files = Component(1, 0.8);
  gate.priority = 10;
  const uint64_t gate_id = scheduler.Submit(gate);

  // A nightly audit floods the queue at low priority — every CI shard
  // submits the same three components, so most of these coalesce.
  std::vector<uint64_t> audit_ids;
  for (int shard = 0; shard < 4; ++shard) {
    for (uint64_t component = 0; component < 3; ++component) {
      clair::ScoreRequest audit;
      audit.subject = support::Format(
          "audit/component-%llu", static_cast<unsigned long long>(component));
      audit.files = Component(10 + component, 0.2 + 0.2 * component);
      audit.priority = -1;
      audit_ids.push_back(scheduler.Submit(audit));
    }
  }

  // A developer asks, then changes their mind before the result lands.
  clair::ScoreRequest scratch;
  scratch.subject = "scratch-branch";
  scratch.files = Component(99, 0.5);
  const uint64_t scratch_id = scheduler.Submit(scratch);
  scheduler.Cancel(scratch_id);

  // --- Collect. --------------------------------------------------------------
  const clair::ScoreResult gate_result = scheduler.Wait(gate_id);
  std::printf("[%s] %-20s overall risk %.3f (wave %llu)\n",
              clair::RequestStateName(gate_result.state),
              gate_result.subject.c_str(), gate_result.overall_risk,
              static_cast<unsigned long long>(gate_result.wave));
  for (size_t i = 0; i < gate_result.hypothesis_ids.size(); ++i) {
    std::printf("    %-16s %.3f\n", gate_result.hypothesis_ids[i].c_str(),
                gate_result.hypothesis_risks[i]);
  }

  for (const uint64_t id : audit_ids) {
    const clair::ScoreResult result = scheduler.Wait(id);
    std::printf("[%s] %-20s overall risk %.3f%s\n",
                clair::RequestStateName(result.state), result.subject.c_str(),
                result.overall_risk, result.coalesced ? "  (coalesced)" : "");
  }

  const clair::ScoreResult cancelled = scheduler.Wait(scratch_id);
  std::printf("[%s] %-20s %d stages unwound\n",
              clair::RequestStateName(cancelled.state),
              cancelled.subject.c_str(), cancelled.stages_unwound);

  const clair::SchedulerStats stats = scheduler.stats();
  std::printf("\nserved %llu requests in %llu waves: %llu coalesced, "
              "%llu rows through %llu batched forest calls, %llu cancelled\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.waves),
              static_cast<unsigned long long>(stats.coalesced),
              static_cast<unsigned long long>(stats.predict_rows),
              static_cast<unsigned long long>(stats.predict_batches),
              static_cast<unsigned long long>(stats.cancelled));
  return 0;
}
